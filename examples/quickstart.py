"""Quickstart: partition the paper's DCT task graph and compare sequencing strategies.

Run with::

    python examples/quickstart.py

The script walks the complete flow of the paper on the case-study board:

1. build the behaviour specification (the 32-task DCT graph of Figure 8);
2. run the design flow: ILP temporal partitioning, loop fission, memory
   mapping and host-code generation;
3. compare the resulting RTR design against the static design under the FDH
   and IDH sequencing strategies for the largest workload of Tables 1-2.
"""

from __future__ import annotations

from repro.arch import paper_case_study_system
from repro.fission import SequencingStrategy, compare_static_vs_rtr
from repro.jpeg import build_dct_task_graph, static_design_delay
from repro.synth import DesignFlow, static_design_from_parameters
from repro.units import format_time, ns


def main() -> None:
    # 1. Target architecture and behaviour specification.
    system = paper_case_study_system()
    graph = build_dct_task_graph()
    print("Target system")
    print(system.describe())
    print()
    print(f"Behaviour spec: {len(graph)} tasks, {graph.edge_count()} edges, "
          f"{graph.total_resources()['clb']} CLBs if synthesised flat")
    print()

    # 2. The automated flow: estimation -> ILP partitioning -> loop fission.
    design = DesignFlow(system).build(graph)
    print(design.describe())
    print()
    print("Generated host sequencing code (IDH):")
    print(design.host_code_for(SequencingStrategy.IDH))

    # 3. Compare against the paper's static design for the largest image.
    static = static_design_from_parameters(
        "static-dct", clbs=1600, cycles_per_block=160, clock_period=ns(100),
        env_input_words=16, env_output_words=16,
    )
    print(f"Static design:  {format_time(static.block_delay)} per 4x4 block")
    print(f"RTR design:     {format_time(design.block_delay)} per 4x4 block "
          f"(ignoring reconfiguration)")
    print()

    blocks = 245_760
    for strategy in (SequencingStrategy.FDH, SequencingStrategy.IDH):
        comparison = compare_static_vs_rtr(
            strategy, static.timing_spec(), design.timing_spec, blocks, system
        )
        verdict = "RTR wins" if comparison.rtr_wins else "static wins"
        print(
            f"{strategy.value.upper():>3} on {blocks} blocks: "
            f"static {comparison.static.total:7.2f} s, "
            f"RTR {comparison.rtr.total:7.2f} s  "
            f"({comparison.improvement * 100:+.1f}%, {verdict})"
        )

    delta = static_design_delay() - design.block_delay
    print()
    print(f"Per-block latency advantage of the RTR design: {format_time(delta)} "
          "(the paper's 7560 ns)")


if __name__ == "__main__":
    main()
