"""The full JPEG case study: functional co-design plus Tables 1 and 2.

Run with::

    python examples/jpeg_rtr_codesign.py

This example reproduces Section 4 end to end:

* the DCT runs on the (modelled) reconfigurable hardware, partitioned by the
  ILP partitioner, and its results are checked against the direct transform;
* the remaining JPEG stages (quantisation, zig-zag, Huffman) run in software
  through the library's codec;
* the execution-time tables for the FDH and IDH strategies are regenerated,
  together with the XC6000 conjecture.
"""

from __future__ import annotations

import numpy as np

from repro.experiments import (
    build_case_study,
    reproduce_table1,
    reproduce_table2,
)
from repro.experiments.table2 import xc6000_conjecture
from repro.jpeg import JpegCodesign, JpegLikeCodec, synthetic_image


def main() -> None:
    print("Building the case study (ILP partitioning of the 32-task DCT graph)...")
    study = build_case_study(use_ilp=True)
    print(study.partitioning.describe())
    print(study.fission.describe())
    print(f"ILP solve time: {study.partitioner_solve_time:.2f} s "
          "(the paper reports 3.5 s with CPLEX)")
    print()

    # ------------------------------------------------------------------
    # Functional verification: the partitioned hardware DCT is exact.
    # ------------------------------------------------------------------
    codesign = JpegCodesign(study.partitioning)
    rng = np.random.default_rng(0)
    blocks = rng.uniform(-128, 127, size=(64, 4, 4))
    error = codesign.max_error_against_reference(blocks)
    print(f"Partitioned hardware DCT vs. direct transform on {len(blocks)} blocks: "
          f"max |error| = {error:.2e}")

    # ------------------------------------------------------------------
    # Software side: compress an image with the full codec.
    # ------------------------------------------------------------------
    image = synthetic_image(256, 256, seed=7)
    codec = JpegLikeCodec(block_size=4, quality=75)
    encoded = codec.encode(image)
    decoded = codec.decode(encoded)
    print(f"JPEG-style codec on a 256x256 image: compression ratio "
          f"{encoded.compression_ratio:.2f}:1, PSNR {codec.psnr(image, decoded):.1f} dB "
          f"({encoded.block_count} DCT blocks)")
    print()

    # ------------------------------------------------------------------
    # Tables 1 and 2.
    # ------------------------------------------------------------------
    table1 = reproduce_table1(study)
    print(table1.formatted())
    print(f"-> FDH ever beats the static design: {table1.fdh_ever_improves} "
          "(paper: never)")
    print()

    table2 = reproduce_table2(study)
    print(table2.formatted())
    print(f"-> IDH improvement at 245,760 blocks: "
          f"{table2.improvement_at_largest * 100:.1f}% (paper: 42%)")
    print(f"-> XC6000 conjecture (CT = 500 us): "
          f"{xc6000_conjecture(study) * 100:.1f}% (paper: 47%)")


if __name__ == "__main__":
    main()
