"""Design-space exploration: Pareto search with a resumable run store.

Run with::

    python examples/explore_pareto.py

The exploration subsystem searches the joint (workload, system, CT,
partitioner, sequencing) space for Pareto-optimal designs.  This example:

1. explores the JPEG-DCT space with simulated annealing against a
   persistent JSONL run store,
2. re-runs the identical exploration to show that a resumed run is served
   entirely from the store (zero new flow evaluations), and
3. compares strategies on the same space — every strategy shares the same
   store, so later strategies ride on the earlier ones' evaluations.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro.explore import ExploreConfig, Explorer, RunStore, SearchSpace
from repro.units import ms


def build_space() -> SearchSpace:
    return SearchSpace.for_workloads(
        ["jpeg_dct"],
        ct_values=(ms(0.5), ms(1), ms(5), ms(10), ms(50), ms(100)),
        partitioners=("ilp", "list", "level"),
        sequencings=("fdh", "idh"),
    )


def run(space: SearchSpace, store: RunStore, strategy: str, seed: int = 0):
    config = ExploreConfig(
        strategy=strategy,
        budget=24,
        batch_size=6,
        seed=seed,
        objectives=("latency", "area", "throughput"),
    )
    return Explorer(space, config=config, store=store).run()


def main() -> None:
    space = build_space()
    print(space.describe())
    print()

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "explore.jsonl"

        # 1. Anneal against a fresh persistent store.
        with RunStore(store_path, space.fingerprint()) as store:
            result = run(space, store, "anneal")
        print(f"anneal (cold):    {result.describe()}")

        # 2. The identical run again: everything is served from the store.
        with RunStore(store_path, space.fingerprint()) as store:
            resumed = run(space, store, "anneal")
        print(f"anneal (resumed): {resumed.describe()}")
        assert resumed.flow_evaluated == 0, "a resumed run must not re-evaluate"

        # 3. Other strategies share the same store.
        for strategy in ("random", "greedy", "grid"):
            with RunStore(store_path, space.fingerprint()) as store:
                result = run(space, store, strategy)
            print(f"{strategy:<7} (shared): {result.describe()}")

        print()
        print("Pareto front (anneal, latency/area/throughput):")
        for row in resumed.front.rows():
            print(
                f"  {row['design']:<46} latency {row['latency'] * 1e3:7.3f} ms   "
                f"area {row['area'] * 100:5.1f}%   "
                f"throughput {row['throughput']:,.0f} blocks/s"
            )


if __name__ == "__main__":
    main()
