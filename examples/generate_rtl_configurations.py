"""Generate the per-configuration RTL and host code for the DCT RTR design.

Run with::

    python examples/generate_rtl_configurations.py [output_dir]

This is the hand-off point of the paper's flow: after temporal partitioning
and loop fission, each temporal partition is synthesised to RTL (datapath plus
the augmented Figure-7 controller) and the host sequencing code is emitted.
The original flow would pass the RTL to Synplify / Xilinx M1 for logic and
layout synthesis; here the VHDL-flavoured structural text, the memory layouts
and the host loops are written to files for inspection.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.arch import paper_case_study_system
from repro.fission import SequencingStrategy
from repro.hls import emit_vhdl_like
from repro.jpeg import build_dct_task_graph
from repro.synth import DesignFlow, FlowOptions


def main(output_dir: str = "build/dct_rtr") -> None:
    output = Path(output_dir)
    output.mkdir(parents=True, exist_ok=True)

    system = paper_case_study_system()
    graph = build_dct_task_graph(attach_dfgs=True)
    # Use the library's own estimator end to end (generate_rtl needs the DFGs).
    flow = DesignFlow(system, FlowOptions(generate_rtl=True))
    design = flow.build(graph, name="dct4x4-rtr")

    print(design.describe())
    print()

    written = []
    for index in range(1, design.partition_count + 1):
        configuration = design.configuration(index)
        rtl_path = output / f"configuration{index}.vhd"
        rtl_path.write_text(emit_vhdl_like(configuration), encoding="utf-8")
        written.append(rtl_path)
        layout_path = output / f"configuration{index}_memory_layout.txt"
        layout_lines = [
            f"{segment:<40} offset {offset} words"
            for segment, offset in sorted(
                configuration.memory_layout.items(), key=lambda kv: kv[1]
            )
        ]
        layout_path.write_text("\n".join(layout_lines) + "\n", encoding="utf-8")
        written.append(layout_path)

    for strategy in SequencingStrategy:
        host_path = output / f"host_sequencer_{strategy.value}.c"
        host_path.write_text(design.host_code_for(strategy), encoding="utf-8")
        written.append(host_path)

    print("Wrote:")
    for path in written:
        print(f"  {path} ({path.stat().st_size} bytes)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "build/dct_rtr")
