"""Partitioning a custom DSP application with the library's own estimator.

Run with::

    python examples/fir_filterbank_partitioning.py

The paper's technique is not DCT-specific: any loop-enclosed DSP task graph
can be temporally partitioned and loop-fissioned.  This example builds a
four-channel FIR filter bank followed by an energy detector — a typical
front-end for a software-radio style application — describes each task by its
operation-level data-flow graph, lets the library's HLS estimator derive
``R(t)``/``D(t)`` for a mid-size FPGA, and then runs the complete flow on a
board whose reconfiguration overhead is 10 ms.
"""

from __future__ import annotations

from repro.arch import generic_system
from repro.dfg import fir_tap_dfg, sum_of_products_dfg, vector_product_dfg
from repro.fission import SequencingStrategy, compare_static_vs_rtr, static_timing_spec
from repro.partition import compute_metrics
from repro.synth import DesignFlow, FlowOptions
from repro.taskgraph import Task, TaskGraph
from repro.units import format_time, ms, ns


def build_filterbank_graph(channels: int = 4, taps: int = 8) -> TaskGraph:
    """A *channels*-channel FIR filter bank with per-channel energy detectors.

    Every task carries its operation-level DFG; costs are filled in by the
    HLS estimator inside the design flow.
    """
    graph = TaskGraph("fir_filterbank")
    graph.add_task(
        Task("window", dfg=vector_product_dfg(8, input_width=12, coefficient_width=12,
                                              name="window"), task_type="window"),
        env_input_words=taps,
    )
    for channel in range(channels):
        fir_name = f"fir{channel}"
        graph.add_task(
            Task(fir_name, dfg=fir_tap_dfg(taps, input_width=12, coefficient_width=12,
                                           name=fir_name), task_type="fir"),
        )
        graph.add_edge("window", fir_name, words=taps)
        energy_name = f"energy{channel}"
        graph.add_task(
            Task(energy_name, dfg=sum_of_products_dfg(4, width=16, name=energy_name),
                 task_type="energy"),
            env_output_words=1,
        )
        graph.add_edge(fir_name, energy_name, words=4)
    return graph


def main() -> None:
    graph = build_filterbank_graph()
    system = generic_system(
        clb_capacity=900,
        memory_words=16384,
        reconfiguration_time=ms(10),
    )
    print("Target system")
    print(system.describe())
    print()

    flow = DesignFlow(system, FlowOptions(max_clock_period=ns(80)))
    design = flow.build(graph)
    print(design.describe())
    print()

    metrics = compute_metrics(design.partitioning, system.resource_capacity)
    print(f"Mean device utilisation across partitions: {metrics.mean_utilisation * 100:.0f}%")
    print(f"Largest inter-partition transfer: {metrics.max_boundary_words} words")
    print()

    # A hypothetical static design: the whole bank shares one datapath, so it
    # is slower per sample window but needs no reconfiguration.  Here we use
    # the estimator's composite estimate via the flow's estimated costs.
    static_delay = sum(design.partitioning.partition_delays) * 1.9
    static = static_timing_spec(
        block_delay=static_delay,
        env_input_words=graph.total_env_input_words(),
        env_output_words=graph.total_env_output_words(),
    )
    print(f"Assumed static design delay per window: {format_time(static_delay)}")
    for windows in (1_000, 100_000, 1_000_000):
        comparison = compare_static_vs_rtr(
            SequencingStrategy.IDH, static, design.timing_spec, windows, system
        )
        verdict = "RTR wins" if comparison.rtr_wins else "static wins"
        print(
            f"  {windows:>9} windows: static {comparison.static.total:8.3f} s, "
            f"RTR(IDH) {comparison.rtr.total:8.3f} s ({comparison.improvement * 100:+.1f}%, {verdict})"
        )


if __name__ == "__main__":
    main()
