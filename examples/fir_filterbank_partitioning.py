"""Partitioning a custom DSP application with the library's own estimator.

Run with::

    python examples/fir_filterbank_partitioning.py

The paper's technique is not DCT-specific: any loop-enclosed DSP task graph
can be temporally partitioned and loop-fissioned.  This example uses the
``fir_filterbank`` entry of the workload catalog — a four-channel FIR filter
bank followed by an energy detector, a typical front-end for a
software-radio style application.  Each task is described by its
operation-level data-flow graph, the library's HLS estimator derives
``R(t)``/``D(t)`` for a mid-size FPGA, and the complete flow runs on a board
whose reconfiguration overhead is 10 ms.  (The graph builder itself lives in
:mod:`repro.workloads.library`; ``repro flow --workload fir_filterbank``
runs the same scenario from the shell.)
"""

from __future__ import annotations

from repro.fission import SequencingStrategy, compare_static_vs_rtr, static_timing_spec
from repro.partition import compute_metrics
from repro.synth import DesignFlow
from repro.units import format_time
from repro.workloads import get_workload


def main() -> None:
    workload = get_workload("fir_filterbank")
    graph = workload.build_graph()
    system = workload.default_system()
    print("Target system")
    print(system.describe())
    print()

    flow = DesignFlow(system, workload.flow_options())
    design = flow.build(graph)
    print(design.describe())
    print()

    metrics = compute_metrics(design.partitioning, system.resource_capacity)
    print(f"Mean device utilisation across partitions: {metrics.mean_utilisation * 100:.0f}%")
    print(f"Largest inter-partition transfer: {metrics.max_boundary_words} words")
    print()

    # A hypothetical static design: the whole bank shares one datapath, so it
    # is slower per sample window but needs no reconfiguration.  Here we use
    # the estimator's composite estimate via the flow's estimated costs.
    static_delay = sum(design.partitioning.partition_delays) * 1.9
    static = static_timing_spec(
        block_delay=static_delay,
        env_input_words=graph.total_env_input_words(),
        env_output_words=graph.total_env_output_words(),
    )
    print(f"Assumed static design delay per window: {format_time(static_delay)}")
    for windows in (1_000, 100_000, 1_000_000):
        comparison = compare_static_vs_rtr(
            SequencingStrategy.IDH, static, design.timing_spec, windows, system
        )
        verdict = "RTR wins" if comparison.rtr_wins else "static wins"
        print(
            f"  {windows:>9} windows: static {comparison.static.total:8.3f} s, "
            f"RTR(IDH) {comparison.rtr.total:8.3f} s ({comparison.improvement * 100:+.1f}%, {verdict})"
        )


if __name__ == "__main__":
    main()
