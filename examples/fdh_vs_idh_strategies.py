"""Loop fission in depth: FDH vs. IDH sequencing, controllers, and sweeps.

Run with::

    python examples/fdh_vs_idh_strategies.py

Shows what the loop-fission step actually produces for the DCT design:

* the per-partition memory blocks and the computations-per-run analysis;
* the two generated host sequencing loops (the pseudo-C of Section 2.2);
* the augmented controller of Figure 7 iterating k times per invocation;
* event-level simulations of both strategies and their timing breakdowns;
* the breakeven workload and a reconfiguration-time sweep.
"""

from __future__ import annotations

from repro.experiments import build_case_study, reconfiguration_sweep
from repro.fission import (
    SequencingStrategy,
    breakeven_computations,
    generate_host_code,
)
from repro.hls import controller_for_schedule
from repro.simulate import RtrExecutionSimulator, StaticExecutionSimulator, breakdown_table
from repro.units import format_time, ms, us


def main() -> None:
    study = build_case_study(use_ilp=False)
    print("Per-partition memory blocks (one loop iteration):")
    print(study.memory_map.describe())
    print()
    print(study.fission.describe())
    print()

    # ------------------------------------------------------------------
    # Host sequencing code for both strategies.
    # ------------------------------------------------------------------
    for strategy in SequencingStrategy:
        plan = study_plan(study, strategy)
        print(f"--- host code, {strategy.value.upper()} ---")
        print(generate_host_code(plan))

    # ------------------------------------------------------------------
    # The augmented controller (Figure 7) for partition 1.
    # ------------------------------------------------------------------
    controller = controller_for_schedule(
        "partition1", schedule_cycles=68, iteration_bound=study.computations_per_run
    )
    controller.send_start()
    cycles = controller.run_to_finish()
    print(f"Augmented controller of partition 1: {cycles} cycles to process "
          f"k = {study.computations_per_run} blocks before raising 'finish' "
          f"({controller.spec.datapath_states} datapath states per block)")
    print()

    # ------------------------------------------------------------------
    # Event-level simulation of both strategies on the largest workload.
    # ------------------------------------------------------------------
    blocks = 245_760
    static_result = StaticExecutionSimulator(study.system).simulate(study.static_spec, blocks)
    simulator = RtrExecutionSimulator(study.system)
    fdh = simulator.simulate(study.rtr_spec, SequencingStrategy.FDH, blocks)
    idh = simulator.simulate(study.rtr_spec, SequencingStrategy.IDH, blocks)
    print(f"Simulated execution of {blocks} DCT blocks:")
    print(breakdown_table({
        "static": static_result.breakdown,
        "rtr-fdh": fdh.breakdown,
        "rtr-idh": idh.breakdown,
    }))
    print()
    print(f"FDH loads {fdh.configuration_loads} configurations, "
          f"IDH loads {idh.configuration_loads}.")
    print()

    # ------------------------------------------------------------------
    # Breakeven and reconfiguration-time sweep.
    # ------------------------------------------------------------------
    idh_breakeven = breakeven_computations(
        SequencingStrategy.IDH, study.static_spec, study.rtr_spec, study.system
    )
    print(f"IDH starts beating the static design at {idh_breakeven} blocks "
          f"(~{idh_breakeven / study.computations_per_run:.0f} board runs).")
    print()
    print("Reconfiguration-time sweep (IDH, 245,760 blocks):")
    for row in reconfiguration_sweep(study, [ms(100), ms(10), ms(1), us(500), us(50)]):
        print(f"  CT = {format_time(row['reconfiguration_time']):>9}: "
              f"improvement {row['improvement'] * 100:5.1f}%")


def study_plan(study, strategy):
    """Sequencer plan for the study's design under *strategy*."""
    from repro.fission import SequencerPlan

    return SequencerPlan(
        strategy=strategy,
        partition_count=study.partitioning.partition_count,
        computations_per_run=study.computations_per_run,
        design_name="dct4x4",
    )


if __name__ == "__main__":
    main()
