"""Running the whole workload catalog through one batched flow.

Run with::

    python examples/workload_batch_flows.py

PR 1 batched the *partition* step; the flow engine batches the *whole
design flow*.  This example expands every registered workload into flow
jobs, runs them as one batch (the dominant ILP solves dedup and cache
inside the partition engine), prints the cross-workload summary table, and
then re-runs the batch to show the warm-cache behaviour.
"""

from __future__ import annotations

import time

from repro.experiments import format_cross_workload_table
from repro.synth import FlowEngine, workload_flow_jobs
from repro.workloads import workload_names


def main() -> None:
    names = workload_names()
    print(f"Workload catalog: {', '.join(names)}")
    print()

    engine = FlowEngine()
    jobs = workload_flow_jobs(names=names)

    start = time.perf_counter()
    cold = engine.run_batch(jobs)
    cold_time = time.perf_counter() - start
    rows = []
    for report in cold:
        row = report.row()
        row["source"] = report.partition_source
        row.update(
            tasks=len(report.job.graph),
            edges=report.job.graph.edge_count(),
            ct_ms=report.job.system.reconfiguration_time * 1e3,
            workload=report.job.name,
        )
        rows.append(row)
    print(format_cross_workload_table(rows))
    print()
    print(f"cold: {cold.describe()}")

    start = time.perf_counter()
    warm = engine.run_batch(jobs)
    warm_time = time.perf_counter() - start
    cached = sum(1 for report in warm if report.cached_partition)
    print(f"warm: {warm.describe()}")
    print(
        f"warm batch re-used {cached}/{len(warm)} partitionings and took "
        f"{warm_time / max(cold_time, 1e-9) * 100:.1f}% of the cold time"
    )


if __name__ == "__main__":
    main()
