"""Chaos demo: a scheduled exploration survives a SIGKILLed worker.

Run with::

    python examples/scheduled_chaos.py

The script drives the full two-machine CLI workflow on one machine:

1. start a scheduler daemon (``repro schedule``) that partitions a small
   grid exploration into 8 fingerprint ranges with 2 s lease timeouts;
2. start a worker stuck in the ``REPRO_SCHED_DELAY_S`` delay hook, wait
   until it holds a lease, and SIGKILL it — the canonical lost machine;
3. start two healthy workers (``repro explore --scheduler``) that drain
   the schedule, re-running the dead worker's range after its lease is
   reclaimed;
4. compare the daemon's merged frontier byte-for-byte against a plain
   unsharded ``repro explore`` of the same space.

Byte equality is the whole point: a shard range's store is a pure function
of (space, config, range index, range count), so worker death can only
ever cost re-evaluation, never correctness.  CI runs this script as its
scheduler chaos smoke.
"""

from __future__ import annotations

import filecmp
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import FlowServiceClient, ServeClientError

PORT = int(os.environ.get("REPRO_CHAOS_PORT", "8790"))

SPACE_ARGV = [
    "--workload", "matmul_pipeline", "--strategy", "grid", "--budget", "12",
    "--partitioners", "list,level", "--ct-sweep", "1,5,20",
]


def _repro(*argv: str, **kwargs) -> subprocess.Popen:
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli", *argv], **kwargs
    )


def main() -> int:
    url = f"http://127.0.0.1:{PORT}"
    client = FlowServiceClient(url)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as tmp:
        base = Path(tmp)
        sched_out = base / "sched.json"
        solo_out = base / "solo.json"

        print(f"starting scheduler daemon on {url} (8 ranges, 2 s leases)")
        daemon = _repro(
            "schedule", *SPACE_ARGV, "--ranges", "8", "--lease-timeout", "2",
            "--port", str(PORT), "--store", str(base / "run.jsonl"),
            "--timeout", "300", "--format", "json", "--output",
            str(sched_out),
        )
        try:
            client.wait_until_healthy()

            # A worker wedged in the delay hook: it leases one range, then
            # sleeps far past its lease.  SIGKILL it mid-lease.
            victim_env = dict(os.environ, REPRO_SCHED_DELAY_S="600")
            victim = _repro(
                "explore", "--scheduler", url, "--worker-id", "victim",
                env=victim_env, cwd=tmp,
            )
            deadline = time.monotonic() + 60.0
            while True:
                status = client.scheduler_status()
                if status["leased"] >= 1 and "victim" in status["workers_seen"]:
                    break
                if time.monotonic() > deadline:
                    raise SystemExit("victim never acquired a lease")
                time.sleep(0.1)
            victim.kill()  # SIGKILL: no goodbye, no lease release
            victim.wait(timeout=30)
            print("victim worker SIGKILLed while holding a lease")

            workers = [
                _repro(
                    "explore", "--scheduler", url, "--worker-id", f"healthy{i}",
                    cwd=tmp,
                )
                for i in range(2)
            ]
            for worker in workers:
                if worker.wait(timeout=300) != 0:
                    raise SystemExit("a healthy worker failed")
            daemon_code = daemon.wait(timeout=300)
            if daemon_code != 0:
                raise SystemExit(f"scheduler daemon exited {daemon_code}")
            print("healthy workers drained the schedule "
                  "(dead worker's range re-issued)")
        finally:
            for proc in (daemon,):
                if proc.poll() is None:
                    proc.send_signal(signal.SIGINT)
                    proc.wait(timeout=30)

        solo = _repro(
            "explore", *SPACE_ARGV, "--store", str(base / "solo.jsonl"),
            "--format", "json", "--output", str(solo_out), cwd=tmp,
        )
        if solo.wait(timeout=300) != 0:
            raise SystemExit("the unsharded reference run failed")

        if not filecmp.cmp(sched_out, solo_out, shallow=False):
            raise SystemExit(
                "merged scheduled frontier differs from the unsharded run"
            )
        print(f"chaos run survived: {sched_out.name} is byte-identical "
              "to the unsharded frontier")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except ServeClientError as error:
        raise SystemExit(f"scheduler daemon unreachable: {error}")
