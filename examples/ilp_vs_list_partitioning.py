"""ILP vs. heuristic temporal partitioning, on the DCT and on synthetic graphs.

Run with::

    python examples/ilp_vs_list_partitioning.py

Reproduces the paper's argument against list-based temporal partitioning (the
heuristic tops partition 1 up with T2 tasks because CLBs are free, lengthening
the critical path) and then quantifies the same effect over a population of
random DSP-style task graphs.
"""

from __future__ import annotations

from repro.arch import generic_system, paper_case_study_system
from repro.experiments import format_table
from repro.jpeg import build_dct_task_graph
from repro.partition import (
    IlpTemporalPartitioner,
    LevelClusteringPartitioner,
    ListTemporalPartitioner,
    PartitionProblem,
    compare_partitionings,
    partition_summary_rows,
)
from repro.taskgraph import random_dsp_task_graph
from repro.units import ms


def dct_comparison() -> None:
    print("=== Case study: the 32-task DCT graph on the XC4044 ===")
    system = paper_case_study_system()
    problem = PartitionProblem.from_system(build_dct_task_graph(), system)

    ilp = IlpTemporalPartitioner().partition(problem)
    heuristic = ListTemporalPartitioner().partition(problem)

    print("\nILP partitioning (optimal):")
    print(format_table(partition_summary_rows(ilp)))
    print("\nList-based partitioning (latency-blind packing):")
    print(format_table(partition_summary_rows(heuristic)))

    comparison = compare_partitionings(heuristic, ilp)
    print(
        f"\nComputation latency: ILP {ilp.computation_latency * 1e9:.0f} ns vs. "
        f"list {heuristic.computation_latency * 1e9:.0f} ns "
        f"({comparison.computation_latency_improvement * 100:.1f}% lower with the ILP)"
    )


def synthetic_comparison(graph_count: int = 10, tasks: int = 16) -> None:
    print("\n=== Synthetic DSP task graphs ===")
    system = generic_system(clb_capacity=900, memory_words=8192, reconfiguration_time=ms(10))
    rows = []
    wins = 0
    for seed in range(graph_count):
        graph = random_dsp_task_graph(task_count=tasks, seed=seed, max_level_width=4)
        problem = PartitionProblem.from_system(graph, system)
        ilp = IlpTemporalPartitioner().partition(problem)
        greedy_list = ListTemporalPartitioner().partition(problem)
        level = LevelClusteringPartitioner().partition(problem)
        best_heuristic = min(greedy_list, level, key=lambda r: r.total_latency)
        if ilp.total_latency < best_heuristic.total_latency - 1e-12:
            wins += 1
        rows.append(
            {
                "seed": seed,
                "ilp_us": ilp.total_latency * 1e6,
                "list_us": greedy_list.total_latency * 1e6,
                "level_us": level.total_latency * 1e6,
                "ilp_N": ilp.partition_count,
                "list_N": greedy_list.partition_count,
            }
        )
    print(format_table(rows))
    print(f"\nILP strictly better than the best heuristic on {wins}/{graph_count} graphs "
          "(never worse on any).")


def main() -> None:
    dct_comparison()
    synthetic_comparison()


if __name__ == "__main__":
    main()
