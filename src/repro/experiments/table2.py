"""Table 2 — DCT execution time under the IDH strategy, plus the XC6000 conjecture.

For each image of the workload ladder the driver reports the static and RTR
(IDH) totals and the improvement.  The paper's findings reproduced here:

* the improvement grows with the image size (the ``N*CT`` term is amortised
  over more and more blocks);
* at 245 760 blocks the improvement is about 42 %;
* with a 500 us reconfiguration time (XC6000-class device) the improvement for
  the same workload rises to about 47 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fission.strategies import SequencingStrategy
from ..fission.throughput import compare_static_vs_rtr, reconfiguration_time_sweep
from ..jpeg.workload import table_workloads
from . import paper_constants as paper
from .case_study import CaseStudy, build_case_study
from .report import format_table, percentage


@dataclass
class Table2Result:
    """Rows of the reproduced Table 2 plus the headline findings."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    improvement_at_largest: float = 0.0
    improvements_monotonic: bool = True
    xc6000_improvement: float = 0.0
    study: Optional[CaseStudy] = None

    def formatted(self) -> str:
        """The table as aligned text."""
        return format_table(
            self.rows,
            columns=[
                "image",
                "blocks",
                "I_sw",
                "static_seconds",
                "rtr_idh_seconds",
                "improvement",
            ],
            title="Table 2: DCT execution time, IDH strategy (static vs. RTR)",
        )


def reproduce_table2(study: Optional[CaseStudy] = None, use_ilp: bool = True) -> Table2Result:
    """Regenerate Table 2 (and the XC6000 conjecture) from the case study."""
    study = study or build_case_study(use_ilp=use_ilp)
    result = Table2Result(study=study)
    improvements: List[float] = []
    for workload in table_workloads():
        comparison = compare_static_vs_rtr(
            SequencingStrategy.IDH,
            study.static_spec,
            study.rtr_spec,
            workload.block_count,
            study.system,
        )
        improvements.append(comparison.improvement)
        result.rows.append(
            {
                "image": workload.name,
                "blocks": workload.block_count,
                "I_sw": comparison.software_loop_count,
                "static_seconds": comparison.static.total,
                "rtr_idh_seconds": comparison.rtr.total,
                "improvement": percentage(comparison.improvement),
                "improvement_fraction": comparison.improvement,
            }
        )
    if improvements:
        result.improvement_at_largest = improvements[0]
        # The workload ladder is in decreasing size order, so improvements
        # should be non-increasing down the table.
        result.improvements_monotonic = all(
            earlier >= later - 1e-9 for earlier, later in zip(improvements, improvements[1:])
        )
    result.xc6000_improvement = xc6000_conjecture(study)
    return result


def xc6000_conjecture(study: CaseStudy, reconfiguration_time: Optional[float] = None) -> float:
    """Improvement for the largest workload with a microsecond-class device."""
    ct = reconfiguration_time if reconfiguration_time is not None else paper.XC6000_RECONFIGURATION_TIME
    rows = reconfiguration_time_sweep(
        SequencingStrategy.IDH,
        study.static_spec,
        study.rtr_spec,
        paper.LARGEST_WORKLOAD_BLOCKS,
        study.system,
        reconfiguration_times=[ct],
    )
    return rows[0]["improvement"]


def reconfiguration_sweep(
    study: CaseStudy, reconfiguration_times: List[float]
) -> List[Dict[str, float]]:
    """Improvement of IDH over static as the reconfiguration time varies."""
    return reconfiguration_time_sweep(
        SequencingStrategy.IDH,
        study.static_spec,
        study.rtr_spec,
        paper.LARGEST_WORKLOAD_BLOCKS,
        study.system,
        reconfiguration_times=reconfiguration_times,
    )


def paper_comparison(result: Table2Result) -> List[Dict[str, object]]:
    """Paper-vs-measured summary rows for EXPERIMENTS.md."""
    return [
        {
            "quantity": "IDH improvement at 245,760 blocks",
            "paper": percentage(paper.IDH_IMPROVEMENT_AT_LARGEST),
            "measured": percentage(result.improvement_at_largest),
        },
        {
            "quantity": "improvement grows with image size",
            "paper": True,
            "measured": result.improvements_monotonic,
        },
        {
            "quantity": "XC6000 (CT=500us) improvement",
            "paper": percentage(paper.XC6000_IMPROVEMENT),
            "measured": percentage(result.xc6000_improvement),
        },
    ]
