"""The JPEG-DCT Pareto frontier vs. the paper's chosen design point.

The paper settles on one design for the case study: the 3-partition ILP
solution on the 100 ms XC4044 board, sequenced IDH.  This driver runs the
design-space exploration subsystem over the joint (CT, partitioner,
sequencing) space of the same workload and reports the multi-objective
Pareto front — latency, area utilisation, reconfiguration overhead and
throughput — alongside where the paper's own point lands on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..explore.engine import ExplorationResult, ExploreConfig, Explorer
from ..explore.objectives import objective_vector, resolve_objectives
from ..explore.pareto import dominates
from ..explore.space import DesignPoint, SearchSpace
from ..explore.store import RunStore
from ..synth.flow_engine import FlowEngine
from ..units import ms
from .report import format_table

#: The objectives the frontier is computed over (all four built-ins).
FRONTIER_OBJECTIVES: Tuple[str, ...] = ("latency", "area", "overhead", "throughput")

#: Reconfiguration times the frontier sweeps, in seconds: the paper's own
#: 100 ms WildForce regime down through the XC6200 conjecture (500 us).
FRONTIER_CT_VALUES: Tuple[float, ...] = (
    ms(0.5), ms(1), ms(5), ms(10), ms(50), ms(100),
)


def jpeg_dct_space(
    ct_values: Sequence[float] = FRONTIER_CT_VALUES,
    partitioners: Sequence[str] = ("ilp", "list", "level"),
) -> SearchSpace:
    """The JPEG-DCT frontier search space (CT x partitioner x sequencing)."""
    return SearchSpace.for_workloads(
        ["jpeg_dct"],
        ct_values=tuple(ct_values),
        partitioners=tuple(partitioners),
        sequencings=("fdh", "idh"),
    )


def paper_design_point() -> DesignPoint:
    """The paper's chosen design: ILP on the 100 ms board, sequenced IDH."""
    from ..workloads import get_workload

    return DesignPoint.create(
        "jpeg_dct",
        params=get_workload("jpeg_dct").default_params,
        ct=ms(100),
        partitioner="ilp",
        sequencing="idh",
    )


@dataclass
class FrontierReport:
    """The exploration result plus the paper-point comparison."""

    result: ExplorationResult
    paper_point: DesignPoint
    paper_metrics: Dict[str, float]
    paper_on_front: bool
    dominators: List[DesignPoint]

    def rows(self) -> List[Dict[str, object]]:
        """Front rows with the paper's point flagged."""
        paper_fingerprint = self.paper_point.fingerprint()
        rows = []
        for entry in self.result.front.entries():
            row: Dict[str, object] = {"design": entry.point.label}
            for objective in self.result.front.objectives:
                row[objective.name] = entry.metrics[objective.name]
            row["paper"] = "<-- paper" if entry.fingerprint == paper_fingerprint else ""
            rows.append(row)
        return rows

    def describe(self) -> str:
        """Multi-line human readable summary."""
        lines = [self.result.describe()]
        if self.paper_on_front:
            lines.append(
                "the paper's chosen design (ILP, CT=100ms, IDH) is ON the "
                "Pareto front"
            )
        else:
            names = ", ".join(point.label for point in self.dominators) or "none"
            lines.append(
                "the paper's chosen design (ILP, CT=100ms, IDH) is dominated "
                f"by: {names}"
            )
        return "\n".join(lines)


def jpeg_dct_frontier(
    flow_engine: Optional[FlowEngine] = None,
    store: Optional[RunStore] = None,
    ct_values: Sequence[float] = FRONTIER_CT_VALUES,
    partitioners: Sequence[str] = ("ilp", "list", "level"),
) -> FrontierReport:
    """Exhaustively explore the JPEG-DCT space and compare with the paper.

    The space is small enough (tens of points) that the ``grid`` strategy
    covers it exactly; the per-point flows are served by the partition
    engine's caches after the first sweep.
    """
    space = jpeg_dct_space(ct_values=ct_values, partitioners=partitioners)
    config = ExploreConfig(
        strategy="grid",
        budget=space.size,
        batch_size=min(16, space.size),
        objectives=FRONTIER_OBJECTIVES,
    )
    explorer = Explorer(space, config=config, flow_engine=flow_engine, store=store)
    result = explorer.run()

    paper_point = paper_design_point()
    paper_fingerprint = paper_point.fingerprint()
    paper_record = explorer.store.get(paper_fingerprint)
    if paper_record is None:
        # A reduced space (custom CT values / partitioners) may exclude the
        # paper's point; evaluate it out-of-band so the comparison always
        # has its metrics.
        evaluated, _jobs_run = explorer._evaluate([(paper_point, paper_fingerprint)])
        paper_record = evaluated[paper_fingerprint]
        explorer.store.record(paper_record)
    if not paper_record.ok:
        from ..errors import ExperimentError

        raise ExperimentError(
            f"the paper's design point did not evaluate: {paper_record.error}"
        )
    objectives = resolve_objectives(FRONTIER_OBJECTIVES)
    paper_vector = objective_vector(paper_record.metrics, objectives)
    dominators = [
        entry.point
        for entry in result.front.entries()
        if dominates(entry.vector(objectives), paper_vector, objectives)
    ]
    return FrontierReport(
        result=result,
        paper_point=paper_point,
        paper_metrics=paper_record.metrics,
        paper_on_front=paper_fingerprint in result.front,
        dominators=dominators,
    )


def format_frontier_table(report: FrontierReport) -> str:
    """Render the frontier rows as an aligned table."""
    return format_table(
        report.rows(),
        columns=["design", *FRONTIER_OBJECTIVES, "paper"],
        title="JPEG-DCT design-space Pareto front",
    )
