"""Executable reproductions of the paper's worked figures.

* **Figure 4** — per-partition delay estimation: the partition delay is the
  maximum path delay among the root-to-leaf paths mapped into the partition
  (350/400/150 ns -> 400 ns; 300 ns for partition 2).
* **Figure 5** — the FDH vs. IDH sequencing strategies, compared through
  their reconfiguration/transfer overhead formulas and their configuration
  load counts.
* **Figure 8** — the DCT task-graph structure: 32 vector-product tasks, two
  types, four collections of eight tasks per output row.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..fission.sequencer import SequencerPlan, count_configuration_loads
from ..fission.strategies import (
    SequencingStrategy,
    fdh_reconfiguration_overhead,
    idh_overhead,
)
from ..partition.result import TemporalPartitioning
from ..taskgraph.analysis import count_root_to_leaf_paths
from ..taskgraph.builders import figure4_example, figure4_partition_assignment
from ..taskgraph.kpaths import k_longest_path_delays
from ..units import ceil_div, to_ns
from . import paper_constants as paper
from .case_study import CaseStudy, build_case_study


# ---------------------------------------------------------------------------
# Figure 4
# ---------------------------------------------------------------------------

@dataclass
class Figure4Result:
    """Measured path and partition delays of the Figure-4 example."""

    partition1_path_delays_ns: List[float]
    partition_delays_ns: List[float]

    def matches_paper(self) -> bool:
        """Whether the measured delays equal the figure's annotations."""
        return (
            sorted(round(d) for d in self.partition1_path_delays_ns)
            == sorted(paper.FIGURE4_PARTITION1_PATH_DELAYS_NS)
            and [round(d) for d in self.partition_delays_ns]
            == list(paper.FIGURE4_PARTITION_DELAYS_NS)
        )


def reproduce_figure4() -> Figure4Result:
    """Recompute the Figure-4 delay estimation from the reconstructed graph."""
    graph = figure4_example()
    assignment = figure4_partition_assignment(graph)
    partitioning = TemporalPartitioning(
        graph=graph,
        assignment=assignment,
        partition_count=max(assignment.values()),
        reconfiguration_time=0.0,
        method="figure4",
    )
    # Path delays restricted to partition 1: paths of the induced subgraph.
    # Partition 1 is downward closed (every predecessor of a partition-1
    # task is also in partition 1), so its induced subgraph's root-to-leaf
    # paths are exactly the partition-1 prefixes of the full paths.  The
    # delays come from the nonenumerative k-paths tables with k set to the
    # (DP-counted) path count, so nothing is ever enumerated.
    partition1 = graph.subgraph_copy(
        partitioning.tasks_in_partition(1), name="figure4-p1"
    )
    path_delays = [
        to_ns(delay)
        for delay in k_longest_path_delays(
            partition1, count_root_to_leaf_paths(partition1)
        )
    ]
    # Deduplicate identical prefixes (several full paths share a partition-1 prefix).
    unique_delays = sorted(set(round(d, 6) for d in path_delays), reverse=True)
    return Figure4Result(
        partition1_path_delays_ns=unique_delays,
        partition_delays_ns=[to_ns(d) for d in partitioning.partition_delays],
    )


# ---------------------------------------------------------------------------
# Figure 5
# ---------------------------------------------------------------------------

@dataclass
class Figure5Result:
    """Strategy-level comparison for one workload size."""

    total_computations: int
    software_loop_count: int
    fdh_configuration_loads: int
    idh_configuration_loads: int
    fdh_reconfiguration_overhead: float
    idh_overhead: float


def reproduce_figure5(
    study: CaseStudy = None, total_computations: int = None
) -> Figure5Result:
    """Compare the FDH and IDH sequencing strategies (Figure 5's message)."""
    study = study or build_case_study(use_ilp=False)
    total = total_computations or paper.LARGEST_WORKLOAD_BLOCKS
    k = study.computations_per_run
    runs = ceil_div(total, k)
    n = study.partitioning.partition_count
    fdh_plan = SequencerPlan(SequencingStrategy.FDH, n, k)
    idh_plan = SequencerPlan(SequencingStrategy.IDH, n, k)
    return Figure5Result(
        total_computations=total,
        software_loop_count=runs,
        fdh_configuration_loads=count_configuration_loads(fdh_plan, total),
        idh_configuration_loads=count_configuration_loads(idh_plan, total),
        fdh_reconfiguration_overhead=fdh_reconfiguration_overhead(
            n, study.system.reconfiguration_time, runs
        ),
        idh_overhead=idh_overhead(
            n,
            study.system.reconfiguration_time,
            k,
            runs,
            study.system.word_transfer_time,
            study.rtr_spec.max_block_words,
        ),
    )


# ---------------------------------------------------------------------------
# Figure 8
# ---------------------------------------------------------------------------

@dataclass
class Figure8Result:
    """Structural statistics of the DCT task graph."""

    task_count: int
    t1_count: int
    t2_count: int
    edge_count: int
    collections: int
    tasks_per_collection: int
    fan_in_per_t2: int


def reproduce_figure8(study: CaseStudy = None) -> Figure8Result:
    """Measure the DCT task graph's structure against Figure 8's description."""
    study = study or build_case_study(use_ilp=False)
    graph = study.graph
    t1 = [t for t in graph.tasks() if t.task_type == "T1"]
    t2 = [t for t in graph.tasks() if t.task_type == "T2"]
    rows: Dict[int, int] = {}
    for task in graph.tasks():
        rows[task.metadata["row"]] = rows.get(task.metadata["row"], 0) + 1
    fan_ins = {name: len(graph.predecessors(name)) for name in graph.task_names()
               if graph.task(name).task_type == "T2"}
    return Figure8Result(
        task_count=len(graph),
        t1_count=len(t1),
        t2_count=len(t2),
        edge_count=graph.edge_count(),
        collections=len(rows),
        tasks_per_collection=max(rows.values()) if rows else 0,
        fan_in_per_t2=max(fan_ins.values()) if fan_ins else 0,
    )
