"""Cross-workload flow summary — every registered scenario in one batch.

The paper evaluates one benchmark; the workload catalog opens the same flow
to many.  This driver runs every registered workload (or a chosen subset,
optionally with its deterministic parameter sweep expanded) through one
:class:`~repro.synth.flow_engine.FlowEngine` batch and reports, per
scenario: graph size, partition count, loop-fission factor ``k``, per-block
delay, total latency and how the result compares with the workload's
registered reference expectations.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..runtime.engine import PartitionEngine, shared_engine
from ..synth.flow_engine import FlowEngine, workload_flow_jobs
from .report import format_table


def cross_workload_summary(
    names: Optional[Sequence[str]] = None,
    engine: Optional[PartitionEngine] = None,
    variants: bool = False,
    ct_values: Optional[Sequence[float]] = None,
) -> List[Dict[str, object]]:
    """One row per (workload, variant, CT) flow job, in a single batch.

    ILP solves route through *engine* (default: the process-wide shared
    partition engine), so repeated summaries — and any other driver that
    already solved a workload's instance — share one solve per problem.
    """
    from ..workloads import get_workload

    flow_engine = FlowEngine(engine=engine or shared_engine())
    jobs = workload_flow_jobs(names=names, variants=variants, ct_values=ct_values)
    batch = flow_engine.run_batch(jobs)
    rows: List[Dict[str, object]] = []
    for report in batch:
        # Start from the engine's own row so the two stay in sync; the
        # summary adds graph/system context and the expectation check.
        row = report.row()
        row["workload"] = row.pop("tag")
        row["source"] = row.pop("partition_source")
        row["tasks"] = len(report.job.graph)
        row["edges"] = report.job.graph.edge_count()
        row["ct_ms"] = report.job.system.reconfiguration_time * 1e3
        if report.ok:
            expected = get_workload(report.job.workload).expectations.get("partitions")
            if expected is not None and not variants and ct_values is None:
                row["matches_expected"] = report.design.partition_count == expected
        rows.append(row)
    return rows


def format_cross_workload_table(rows: Sequence[Dict[str, object]]) -> str:
    """Render :func:`cross_workload_summary` rows as an aligned table."""
    return format_table(
        rows,
        columns=[
            "workload", "tasks", "edges", "ct_ms", "status", "source",
            "partitions", "k", "block_delay_ns", "total_latency_s",
            "matches_expected", "stage_sources", "error",
        ],
        title="Cross-workload design-flow summary",
    )
