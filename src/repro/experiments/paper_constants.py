"""Every quantitative claim of the paper's evaluation, in one place.

These constants are what the benches compare their measured values against and
what EXPERIMENTS.md reports.  They come from Section 4 (the case study) and
the closing remarks of Section 2.2.
"""

from __future__ import annotations

from ..jpeg.taskgraph_builder import (
    PARTITION1_CLOCK,
    PARTITION1_CYCLES,
    PARTITION23_CLOCK,
    PARTITION23_CYCLES,
    STATIC_CLOCK,
    STATIC_CYCLES,
    T1_CLBS,
    T2_CLBS,
)
from ..units import ms, ns, us

# ---------------------------------------------------------------------------
# Target architecture (Section 4)
# ---------------------------------------------------------------------------

#: CLB capacity of the Xilinx XC4044 used in the case study.
XC4044_CLBS = 1600
#: On-board memory: a single 64K bank of 32-bit words.
MEMORY_WORDS = 64 * 1024
MEMORY_WORD_BITS = 32
#: Reconfiguration time of the board.
RECONFIGURATION_TIME = ms(100)
#: PCI bus frequency between host and board.
PCI_FREQUENCY_HZ = 33_000_000
#: Host processor clock.
HOST_CLOCK_HZ = 200_000_000

# ---------------------------------------------------------------------------
# Task estimates and partitioning result (Section 4, re-exported)
# ---------------------------------------------------------------------------

#: CLBs of the two task types as estimated by the authors' DSS tool.
T1_TASK_CLBS = T1_CLBS
T2_TASK_CLBS = T2_CLBS
#: Number of temporal partitions the ILP produced.
EXPECTED_PARTITIONS = 3
#: Task counts per partition (16 T1, 8 T2, 8 T2).
EXPECTED_PARTITION_TASKS = (16, 8, 8)
#: CPLEX solve time reported by the paper, in seconds.
PAPER_ILP_SOLVE_TIME = 3.5

#: Post-synthesis schedules.
STATIC_DESIGN_CYCLES = STATIC_CYCLES
STATIC_DESIGN_CLOCK = STATIC_CLOCK
RTR_PARTITION1_CYCLES = PARTITION1_CYCLES
RTR_PARTITION1_CLOCK = PARTITION1_CLOCK
RTR_PARTITION23_CYCLES = PARTITION23_CYCLES
RTR_PARTITION23_CLOCK = PARTITION23_CLOCK

#: Latency of the static design per 4x4 block (160 cycles @ 100 ns).
STATIC_BLOCK_LATENCY = STATIC_CYCLES * STATIC_CLOCK
#: Latency of the RTR design per 4x4 block, ignoring reconfiguration.
RTR_BLOCK_LATENCY = (
    PARTITION1_CYCLES * PARTITION1_CLOCK + 2 * PARTITION23_CYCLES * PARTITION23_CLOCK
)
#: The in-text claim: the RTR design is 7 560 ns faster per block.
LATENCY_GAP = ns(7560)

# ---------------------------------------------------------------------------
# Loop-fission analysis (Section 4)
# ---------------------------------------------------------------------------

#: Words stored per block computation in each partition (paper counts inputs
#: plus outputs; pass-through data is not counted by the paper).
PAPER_PARTITION_BLOCK_WORDS = (32, 16, 16)
#: k = 64K / max(32, 16, 16).
EXPECTED_COMPUTATIONS_PER_RUN = 2048
#: Environment I/O of one 4x4 DCT block: 16 input words, 16 output words.
BLOCK_INPUT_WORDS = 16
BLOCK_OUTPUT_WORDS = 16

# ---------------------------------------------------------------------------
# Tables 1 and 2
# ---------------------------------------------------------------------------

#: Largest workload in the tables (stated in the text): 245 760 DCT blocks.
LARGEST_WORKLOAD_BLOCKS = 245_760
#: I_sw for the largest workload (245 760 / 2 048).
LARGEST_WORKLOAD_SOFTWARE_LOOPS = 120
#: The paper's FDH finding: no improvement for any image size tried.
FDH_EVER_IMPROVES = False
#: The paper's IDH finding for the largest image: 42 % improvement.
IDH_IMPROVEMENT_AT_LARGEST = 0.42
#: Tolerance band we accept when reproducing the 42 % figure (the paper's
#: host/driver overheads are not published, so a few points of slack is fair).
IDH_IMPROVEMENT_TOLERANCE = 0.06

#: Breakeven figure quoted for FDH: roughly 42 553 blocks per partition run
#: would be needed for the reconfiguration overhead to be absorbed.
FDH_BREAKEVEN_BLOCKS = 42_553

#: The closing conjecture: on an XC6000-class device with a 500 us
#: reconfiguration overhead the improvement for the large file becomes ~47 %.
XC6000_RECONFIGURATION_TIME = us(500)
XC6000_IMPROVEMENT = 0.47
XC6000_IMPROVEMENT_TOLERANCE = 0.05

# ---------------------------------------------------------------------------
# Figure 4 (delay-estimation example)
# ---------------------------------------------------------------------------

#: Path delays of partition 1 in Figure 4 and the resulting partition delays.
FIGURE4_PARTITION1_PATH_DELAYS_NS = (350, 400, 150)
FIGURE4_PARTITION_DELAYS_NS = (400, 300)
