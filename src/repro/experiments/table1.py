"""Table 1 — DCT execution time under the FDH strategy.

For each image of the workload ladder the driver reports the static design's
total time, the RTR design's total time under FDH, the host loop count
``I_sw`` and the improvement (negative throughout: the paper's finding is
that FDH never beats the static design on this board because every batch of
k = 2048 blocks pays the full ``N * CT`` reconfiguration cost).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..fission.strategies import SequencingStrategy
from ..fission.throughput import breakeven_computations, compare_static_vs_rtr
from ..jpeg.workload import table_workloads
from . import paper_constants as paper
from .case_study import CaseStudy, build_case_study
from .report import format_table, percentage


@dataclass
class Table1Result:
    """Rows of the reproduced Table 1 plus the summary findings."""

    rows: List[Dict[str, object]] = field(default_factory=list)
    fdh_ever_improves: bool = False
    breakeven_blocks: Optional[int] = None
    study: Optional[CaseStudy] = None

    def formatted(self) -> str:
        """The table as aligned text."""
        return format_table(
            self.rows,
            columns=[
                "image",
                "blocks",
                "I_sw",
                "static_seconds",
                "rtr_fdh_seconds",
                "improvement",
            ],
            title="Table 1: DCT execution time, FDH strategy (static vs. RTR)",
        )


def reproduce_table1(study: Optional[CaseStudy] = None, use_ilp: bool = True) -> Table1Result:
    """Regenerate Table 1 from the case-study artefacts."""
    study = study or build_case_study(use_ilp=use_ilp)
    result = Table1Result(study=study)
    for workload in table_workloads():
        comparison = compare_static_vs_rtr(
            SequencingStrategy.FDH,
            study.static_spec,
            study.rtr_spec,
            workload.block_count,
            study.system,
        )
        result.rows.append(
            {
                "image": workload.name,
                "blocks": workload.block_count,
                "I_sw": comparison.software_loop_count,
                "static_seconds": comparison.static.total,
                "rtr_fdh_seconds": comparison.rtr.total,
                "improvement": percentage(comparison.improvement),
                "rtr_wins": comparison.rtr_wins,
            }
        )
        result.fdh_ever_improves = result.fdh_ever_improves or comparison.rtr_wins
    # The paper's breakeven remark: how many blocks would have to fit in one
    # partition run for the reconfiguration overhead to be absorbed.
    result.breakeven_blocks = breakeven_fdh_blocks(study)
    return result


def breakeven_fdh_blocks(study: CaseStudy) -> int:
    """Blocks per partition run at which ``N*CT`` equals the run's execution time.

    This is the quantity behind the paper's "roughly 42,553 blocks" remark
    (our per-block RTR delay differs slightly from theirs, so the measured
    value lands near, not exactly on, the paper's figure).
    """
    from ..fission.throughput import reconfiguration_absorption_point

    return reconfiguration_absorption_point(study.rtr_spec, study.system)


def fdh_breakeven_workload(study: CaseStudy) -> Optional[int]:
    """Smallest total workload at which FDH would beat the static design.

    With the case-study board this is ``None`` — FDH never wins, because the
    memory limit of k = 2048 blocks caps how much execution time each
    reconfiguration round can amortise.  (An ablation bench re-runs this with
    larger memories to show where FDH would start winning.)
    """
    return breakeven_computations(
        SequencingStrategy.FDH,
        study.static_spec,
        study.rtr_spec,
        study.system,
        upper_bound=1 << 32,
    )


def paper_comparison(result: Table1Result) -> List[Dict[str, object]]:
    """Paper-vs-measured summary rows for EXPERIMENTS.md."""
    return [
        {
            "quantity": "FDH ever beats static",
            "paper": paper.FDH_EVER_IMPROVES,
            "measured": result.fdh_ever_improves,
        },
        {
            "quantity": "I_sw at 245,760 blocks",
            "paper": paper.LARGEST_WORKLOAD_SOFTWARE_LOOPS,
            "measured": result.rows[0]["I_sw"] if result.rows else None,
        },
        {
            "quantity": "FDH reconfiguration-absorption blocks",
            "paper": paper.FDH_BREAKEVEN_BLOCKS,
            "measured": result.breakeven_blocks,
        },
    ]
