"""Plain-text table formatting for experiment drivers and benches."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..units import format_time


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render a list of dictionaries as an aligned plain-text table.

    Column order follows *columns* when given, otherwise the key order of the
    first row.  Floats are rendered with four significant decimals; everything
    else uses ``str``.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    columns = list(columns) if columns else list(rows[0].keys())

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.4g}"
        return str(value)

    table: List[List[str]] = [list(columns)]
    for row in rows:
        table.append([render(row.get(column, "")) for column in columns])
    widths = [max(len(line[index]) for line in table) for index in range(len(columns))]
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(col.ljust(widths[i]) for i, col in enumerate(table[0])))
    lines.append("  ".join("-" * widths[i] for i in range(len(columns))))
    for line in table[1:]:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def seconds_column(rows: Sequence[Dict[str, object]], keys: Sequence[str]) -> List[Dict[str, object]]:
    """Copy *rows* with the named float columns formatted as readable times."""
    formatted: List[Dict[str, object]] = []
    for row in rows:
        clone = dict(row)
        for key in keys:
            if key in clone and isinstance(clone[key], (int, float)):
                clone[key] = format_time(float(clone[key]))
        formatted.append(clone)
    return formatted


def comparison_row(
    paper_value: object,
    measured_value: object,
    label: str,
    note: str = "",
) -> Dict[str, object]:
    """A single paper-vs-measured row for EXPERIMENTS.md style summaries."""
    return {
        "quantity": label,
        "paper": paper_value,
        "measured": measured_value,
        "note": note,
    }


def percentage(value: float, digits: int = 1) -> str:
    """Format a fraction as a percentage string (0.42 -> '42.0%')."""
    return f"{100.0 * value:.{digits}f}%"
