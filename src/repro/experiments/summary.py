"""One-shot reproduction report: every paper claim vs. the measured value.

:func:`reproduction_report` runs the whole evaluation (Tables 1-2, the in-text
claims E3-E7 and the figure checks) and returns a list of comparison rows;
:func:`format_reproduction_report` renders them as the text report printed by
``repro report`` and checked by the reporting tests.  This is the programmatic
counterpart of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..units import to_ns
from . import paper_constants as paper
from .case_study import CaseStudy, build_case_study
from .figures import reproduce_figure4, reproduce_figure5, reproduce_figure8
from .report import format_table, percentage
from .table1 import breakeven_fdh_blocks, reproduce_table1
from .table2 import reproduce_table2, xc6000_conjecture


@dataclass
class ClaimCheck:
    """One paper claim compared against the reproduction."""

    experiment: str
    quantity: str
    paper_value: object
    measured_value: object
    within_expectation: bool
    note: str = ""

    def as_row(self) -> Dict[str, object]:
        """Row for :func:`repro.experiments.report.format_table`."""
        return {
            "experiment": self.experiment,
            "quantity": self.quantity,
            "paper": self.paper_value,
            "measured": self.measured_value,
            "ok": "yes" if self.within_expectation else "NO",
            "note": self.note,
        }


@dataclass
class ReproductionReport:
    """All claim checks plus the case study they were computed from."""

    checks: List[ClaimCheck] = field(default_factory=list)
    study: Optional[CaseStudy] = None

    @property
    def all_ok(self) -> bool:
        """Whether every claim lands within its expectation band."""
        return all(check.within_expectation for check in self.checks)

    def failed(self) -> List[ClaimCheck]:
        """Claims that fell outside their expectation bands."""
        return [check for check in self.checks if not check.within_expectation]


def reproduction_report(study: Optional[CaseStudy] = None, use_ilp: bool = True) -> ReproductionReport:
    """Run every experiment and compare against the paper's reported values."""
    study = study or build_case_study(use_ilp=use_ilp)
    report = ReproductionReport(study=study)
    checks = report.checks

    # --- E3: partitioning structure -------------------------------------
    sizes = tuple(sorted((i.task_count for i in study.partitioning.partitions), reverse=True))
    checks.append(ClaimCheck(
        "E3", "temporal partitions", paper.EXPECTED_PARTITIONS,
        study.partitioning.partition_count,
        study.partitioning.partition_count == paper.EXPECTED_PARTITIONS,
    ))
    checks.append(ClaimCheck(
        "E3", "tasks per partition (sorted)",
        tuple(sorted(paper.EXPECTED_PARTITION_TASKS, reverse=True)), sizes,
        sizes == tuple(sorted(paper.EXPECTED_PARTITION_TASKS, reverse=True)),
    ))

    # --- E4: per-block latencies -----------------------------------------
    checks.append(ClaimCheck(
        "E4", "RTR latency per block [ns]",
        round(to_ns(paper.RTR_BLOCK_LATENCY)), round(to_ns(study.rtr_spec.block_delay)),
        abs(study.rtr_spec.block_delay - paper.RTR_BLOCK_LATENCY) < 1e-12,
    ))
    checks.append(ClaimCheck(
        "E4", "latency gap vs static [ns]",
        round(to_ns(paper.LATENCY_GAP)),
        round(to_ns(study.static_spec.block_delay - study.rtr_spec.block_delay)),
        abs(
            (study.static_spec.block_delay - study.rtr_spec.block_delay)
            - paper.LATENCY_GAP
        ) < 1e-12,
    ))

    # --- E5: fission analysis ---------------------------------------------
    checks.append(ClaimCheck(
        "E5", "computations per run k",
        paper.EXPECTED_COMPUTATIONS_PER_RUN, study.computations_per_run,
        study.computations_per_run == paper.EXPECTED_COMPUTATIONS_PER_RUN,
    ))
    i_sw = study.fission.software_loop_count(paper.LARGEST_WORKLOAD_BLOCKS)
    checks.append(ClaimCheck(
        "E5", "I_sw at 245,760 blocks",
        paper.LARGEST_WORKLOAD_SOFTWARE_LOOPS, i_sw,
        i_sw == paper.LARGEST_WORKLOAD_SOFTWARE_LOOPS,
    ))

    # --- Table 1 ------------------------------------------------------------
    table1 = reproduce_table1(study)
    checks.append(ClaimCheck(
        "Table 1", "FDH ever beats static", False, table1.fdh_ever_improves,
        table1.fdh_ever_improves is False,
    ))

    # --- E6: breakeven remark ------------------------------------------------
    absorption = breakeven_fdh_blocks(study)
    checks.append(ClaimCheck(
        "E6", "FDH reconfiguration-absorption blocks",
        paper.FDH_BREAKEVEN_BLOCKS, absorption,
        0.5 * paper.FDH_BREAKEVEN_BLOCKS < absorption < 1.5 * paper.FDH_BREAKEVEN_BLOCKS,
        note="same order of magnitude expected",
    ))

    # --- Table 2 ---------------------------------------------------------------
    table2 = reproduce_table2(study)
    checks.append(ClaimCheck(
        "Table 2", "IDH improvement at 245,760 blocks",
        percentage(paper.IDH_IMPROVEMENT_AT_LARGEST),
        percentage(table2.improvement_at_largest),
        abs(table2.improvement_at_largest - paper.IDH_IMPROVEMENT_AT_LARGEST)
        <= paper.IDH_IMPROVEMENT_TOLERANCE,
    ))
    checks.append(ClaimCheck(
        "Table 2", "improvement grows with image size", True, table2.improvements_monotonic,
        table2.improvements_monotonic,
    ))

    # --- E7: XC6000 conjecture ---------------------------------------------------
    xc6000 = xc6000_conjecture(study)
    checks.append(ClaimCheck(
        "E7", "IDH improvement at CT=500us",
        percentage(paper.XC6000_IMPROVEMENT), percentage(xc6000),
        abs(xc6000 - paper.XC6000_IMPROVEMENT) <= paper.XC6000_IMPROVEMENT_TOLERANCE,
    ))

    # --- Figures -------------------------------------------------------------------
    figure4 = reproduce_figure4()
    checks.append(ClaimCheck(
        "Figure 4", "partition delays [ns]",
        list(paper.FIGURE4_PARTITION_DELAYS_NS),
        [round(d) for d in figure4.partition_delays_ns],
        figure4.matches_paper(),
    ))
    figure5 = reproduce_figure5(study)
    checks.append(ClaimCheck(
        "Figure 5", "configuration loads FDH vs IDH",
        (3 * paper.LARGEST_WORKLOAD_SOFTWARE_LOOPS, 3),
        (figure5.fdh_configuration_loads, figure5.idh_configuration_loads),
        figure5.fdh_configuration_loads == 3 * paper.LARGEST_WORKLOAD_SOFTWARE_LOOPS
        and figure5.idh_configuration_loads == 3,
    ))
    figure8 = reproduce_figure8(study)
    checks.append(ClaimCheck(
        "Figure 8", "task graph structure (tasks, T1, T2, collections)",
        (32, 16, 16, 4),
        (figure8.task_count, figure8.t1_count, figure8.t2_count, figure8.collections),
        (figure8.task_count, figure8.t1_count, figure8.t2_count, figure8.collections)
        == (32, 16, 16, 4),
    ))
    return report


def format_reproduction_report(report: ReproductionReport) -> str:
    """Render a :class:`ReproductionReport` as an aligned text table."""
    rows = [check.as_row() for check in report.checks]
    table = format_table(
        rows,
        columns=["experiment", "quantity", "paper", "measured", "ok", "note"],
        title="Reproduction report: paper-reported vs. measured",
    )
    verdict = (
        "All claims reproduced within their expectation bands."
        if report.all_ok
        else f"{len(report.failed())} claim(s) OUTSIDE their expectation bands."
    )
    return table + "\n\n" + verdict
