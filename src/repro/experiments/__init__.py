"""Experiment drivers that regenerate the paper's tables, figures and claims."""

from . import paper_constants
from .case_study import CaseStudy, build_case_study
from .cross_workload import cross_workload_summary, format_cross_workload_table
from .figures import (
    Figure4Result,
    Figure5Result,
    Figure8Result,
    reproduce_figure4,
    reproduce_figure5,
    reproduce_figure8,
)
from .frontier import (
    FrontierReport,
    format_frontier_table,
    jpeg_dct_frontier,
    jpeg_dct_space,
    paper_design_point,
)
from .report import comparison_row, format_table, percentage, seconds_column
from .summary import (
    ClaimCheck,
    ReproductionReport,
    format_reproduction_report,
    reproduction_report,
)
from .sweeps import partitioning_ct_sweep
from .table1 import Table1Result, breakeven_fdh_blocks, fdh_breakeven_workload, reproduce_table1
from .table2 import Table2Result, reconfiguration_sweep, reproduce_table2, xc6000_conjecture

__all__ = [
    "CaseStudy",
    "ClaimCheck",
    "ReproductionReport",
    "format_reproduction_report",
    "reproduction_report",
    "Figure4Result",
    "Figure5Result",
    "Figure8Result",
    "Table1Result",
    "Table2Result",
    "breakeven_fdh_blocks",
    "build_case_study",
    "comparison_row",
    "cross_workload_summary",
    "format_cross_workload_table",
    "fdh_breakeven_workload",
    "format_table",
    "FrontierReport",
    "format_frontier_table",
    "jpeg_dct_frontier",
    "jpeg_dct_space",
    "paper_design_point",
    "paper_constants",
    "partitioning_ct_sweep",
    "percentage",
    "reconfiguration_sweep",
    "reproduce_figure4",
    "reproduce_figure5",
    "reproduce_figure8",
    "reproduce_table1",
    "reproduce_table2",
    "seconds_column",
    "xc6000_conjecture",
]
