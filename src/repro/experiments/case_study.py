"""Shared setup for the JPEG/DCT case-study experiments.

Builds the complete case study once — task graph, ILP temporal partitioning,
memory map, loop-fission analysis, timing specs for the static and RTR
designs — so the Table-1/Table-2/figure drivers and the benches all run from
exactly the same artefacts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.board import RtrSystem
from ..arch.catalog import paper_case_study_system
from ..errors import ExperimentError
from ..fission.analysis import FissionAnalysis, analyse_fission
from ..fission.strategies import RtrTimingSpec, StaticTimingSpec
from ..fission.throughput import rtr_timing_spec, static_timing_spec
from ..jpeg.taskgraph_builder import (
    build_dct_task_graph,
    expected_paper_partitioning,
    static_design_delay,
)
from ..memmap.mapper import MemoryMap, build_memory_map
from ..partition.result import TemporalPartitioning
from ..partition.spec import PartitionProblem
from ..partition.validate import assert_valid
from ..runtime.engine import PartitionEngine, shared_engine
from ..taskgraph.graph import TaskGraph
from . import paper_constants as paper


@dataclass
class CaseStudy:
    """Everything the case-study experiments need, built once."""

    system: RtrSystem
    graph: TaskGraph
    partitioning: TemporalPartitioning
    memory_map: MemoryMap
    fission: FissionAnalysis
    rtr_spec: RtrTimingSpec
    static_spec: StaticTimingSpec
    partitioner_solve_time: float = 0.0

    @property
    def computations_per_run(self) -> int:
        """The paper's ``k``."""
        return self.fission.computations_per_run


def build_case_study(
    use_ilp: bool = True,
    system: Optional[RtrSystem] = None,
    backend: str = "scipy",
    engine: Optional[PartitionEngine] = None,
) -> CaseStudy:
    """Construct the case study.

    With *use_ilp* (the default) the temporal partitioning is produced by the
    library's ILP partitioner, exactly as the paper's flow would; setting it
    to ``False`` uses the paper's reported assignment directly, which is
    useful for benches that should not pay the solve time.

    ILP solves go through *engine* (default: the process-wide
    :func:`~repro.runtime.engine.shared_engine`), so Table 1, Table 2 and the
    summary report built in one process pay for a single solve of the
    case-study instance and every later build is a cache hit.
    """
    system = system or paper_case_study_system()
    graph = build_dct_task_graph()
    problem = PartitionProblem.from_system(graph, system)
    solve_time = 0.0
    if use_ilp:
        engine = engine or shared_engine()
        partitioning = engine.solve(
            problem, tag="case-study", partitioner="ilp", backend=backend
        )
        solve_time = partitioning.solve_time
    else:
        assignment = expected_paper_partitioning(graph)
        partitioning = TemporalPartitioning(
            graph=graph,
            assignment=assignment,
            partition_count=max(assignment.values()),
            reconfiguration_time=system.reconfiguration_time,
            method="paper-reference",
        )
    assert_valid(problem, partitioning)
    memory_map = build_memory_map(partitioning)
    fission = analyse_fission(
        partitioning, system.memory_capacity_words, memory_map=memory_map
    )
    rtr = rtr_timing_spec(partitioning, fission, memory_map)
    static = static_timing_spec(
        block_delay=static_design_delay(),
        env_input_words=paper.BLOCK_INPUT_WORDS,
        env_output_words=paper.BLOCK_OUTPUT_WORDS,
        blocks_per_invocation=1,
    )
    study = CaseStudy(
        system=system,
        graph=graph,
        partitioning=partitioning,
        memory_map=memory_map,
        fission=fission,
        rtr_spec=rtr,
        static_spec=static,
        partitioner_solve_time=solve_time,
    )
    _sanity_check(study)
    return study


def _sanity_check(study: CaseStudy) -> None:
    """Fail fast if the constructed case study does not match the paper's shape."""
    if study.partitioning.partition_count != paper.EXPECTED_PARTITIONS:
        raise ExperimentError(
            f"case study produced {study.partitioning.partition_count} partitions, "
            f"expected {paper.EXPECTED_PARTITIONS}"
        )
    sizes = tuple(
        sorted((info.task_count for info in study.partitioning.partitions), reverse=True)
    )
    if sizes != tuple(sorted(paper.EXPECTED_PARTITION_TASKS, reverse=True)):
        raise ExperimentError(
            f"case study partition sizes {sizes} do not match the paper's "
            f"{paper.EXPECTED_PARTITION_TASKS}"
        )
    if study.computations_per_run != paper.EXPECTED_COMPUTATIONS_PER_RUN:
        raise ExperimentError(
            f"loop fission produced k={study.computations_per_run}, expected "
            f"{paper.EXPECTED_COMPUTATIONS_PER_RUN}"
        )
