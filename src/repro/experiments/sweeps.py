"""Engine-backed ILP sweeps over the case-study instance.

Unlike the Table-1/Table-2 sweeps — which vary only the *analytic* timing
model — these re-solve the temporal-partitioning ILP itself as the target
parameters change: a slower device (larger ``CT``) tilts the objective
``N*CT + sum_p d_p`` towards fewer partitions, and a larger device changes
the resource lower bound.  The :class:`~repro.runtime.engine.PartitionEngine`
does the heavy lifting (batching, caching, worker fan-out), so re-running a
sweep is nearly free once warm.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..arch.catalog import paper_case_study_system
from ..jpeg.taskgraph_builder import build_dct_task_graph
from ..runtime.engine import PartitionEngine, ct_sweep_jobs, shared_engine


def partitioning_ct_sweep(
    ct_values: Sequence[float],
    engine: Optional[PartitionEngine] = None,
    backend: str = "scipy",
) -> List[Dict[str, object]]:
    """Optimal DCT partitionings as the reconfiguration time varies.

    Returns one row per ``CT`` value (seconds) with the optimal partition
    count, total latency and cache provenance; the whole sweep is submitted
    to the engine as a single batch.
    """
    engine = engine or shared_engine()
    graph = build_dct_task_graph()
    system = paper_case_study_system()
    jobs = ct_sweep_jobs(engine, graph, system, ct_values, backend=backend)
    batch = engine.solve_batch(jobs)
    rows: List[Dict[str, object]] = []
    for ct, report in zip(ct_values, batch):
        row: Dict[str, object] = {
            "ct_ms": ct * 1e3,
            "status": report.outcome.status.value,
            "source": report.source.value,
        }
        if report.ok:
            row.update(
                {
                    "partitions": report.outcome.partition_count,
                    "total_latency_s": report.outcome.total_latency,
                    "compute_latency_ns": report.outcome.computation_latency * 1e9,
                }
            )
        else:
            row["error"] = report.outcome.error
        rows.append(row)
    return rows
