"""End-to-end synthesis flow (Figure 2) and design artefacts."""

from .flow import PARTITIONERS, DesignFlow, FlowOptions
from .rtr_design import RtrDesign
from .static_design import (
    StaticDesign,
    static_design_from_estimator,
    static_design_from_parameters,
)

__all__ = [
    "DesignFlow",
    "FlowOptions",
    "PARTITIONERS",
    "RtrDesign",
    "StaticDesign",
    "static_design_from_estimator",
    "static_design_from_parameters",
]
