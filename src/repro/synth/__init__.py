"""End-to-end synthesis flow (Figure 2), stage pipeline and batch service."""

from .flow import PARTITIONERS, DesignFlow, FlowOptions
from .flow_engine import (
    FlowBatchReport,
    FlowEngine,
    FlowJob,
    FlowReport,
    FlowStage,
    workload_flow_jobs,
)
from .pipeline import StagePipeline
from .rtr_design import RtrDesign
from .stages import (
    PIPELINE_STAGES,
    STAGE_VERSIONS,
    StageKey,
    StagePlan,
    build_stage_plan,
    ct_invariant_solver,
)
from .static_design import (
    StaticDesign,
    static_design_from_estimator,
    static_design_from_parameters,
)

__all__ = [
    "DesignFlow",
    "FlowBatchReport",
    "FlowEngine",
    "FlowJob",
    "FlowOptions",
    "FlowReport",
    "FlowStage",
    "PARTITIONERS",
    "PIPELINE_STAGES",
    "RtrDesign",
    "STAGE_VERSIONS",
    "StageKey",
    "StagePipeline",
    "StagePlan",
    "StaticDesign",
    "build_stage_plan",
    "ct_invariant_solver",
    "static_design_from_estimator",
    "static_design_from_parameters",
    "workload_flow_jobs",
]
