"""End-to-end synthesis flow (Figure 2), batch flow service and artefacts."""

from .flow import PARTITIONERS, DesignFlow, FlowOptions
from .flow_engine import (
    FlowBatchReport,
    FlowEngine,
    FlowJob,
    FlowReport,
    FlowStage,
    workload_flow_jobs,
)
from .rtr_design import RtrDesign
from .static_design import (
    StaticDesign,
    static_design_from_estimator,
    static_design_from_parameters,
)

__all__ = [
    "DesignFlow",
    "FlowBatchReport",
    "FlowEngine",
    "FlowJob",
    "FlowOptions",
    "FlowReport",
    "FlowStage",
    "PARTITIONERS",
    "RtrDesign",
    "StaticDesign",
    "static_design_from_estimator",
    "static_design_from_parameters",
    "workload_flow_jobs",
]
