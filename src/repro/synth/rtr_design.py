"""The run-time reconfigured design artefact.

An :class:`RtrDesign` bundles everything the flow of Figure 2 produces for a
loop-fissioned, temporally partitioned application:

* the temporal partitioning (task -> partition assignment, delays, areas),
* the per-partition memory maps (blocks, offsets, rounding),
* the loop-fission analysis (``k``, limiting partition),
* the per-partition RTL configurations (datapath + augmented controller),
* the host sequencing plans and generated host code for FDH and IDH, and
* the timing specs consumed by the analytic models and the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..arch.board import RtrSystem
from ..errors import SynthesisError
from ..fission.analysis import FissionAnalysis
from ..fission.sequencer import SequencerPlan, generate_host_code
from ..fission.strategies import RtrTimingSpec, SequencingStrategy
from ..hls.rtl import RtlDesign
from ..memmap.mapper import MemoryMap
from ..partition.result import TemporalPartitioning


@dataclass
class RtrDesign:
    """A complete run-time reconfigured design ready for sequencing."""

    name: str
    system: RtrSystem
    partitioning: TemporalPartitioning
    memory_map: MemoryMap
    fission: FissionAnalysis
    timing_spec: RtrTimingSpec
    configurations: List[RtlDesign] = field(default_factory=list)
    host_code: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.configurations and len(self.configurations) != self.partition_count:
            raise SynthesisError(
                f"expected {self.partition_count} RTL configurations, got "
                f"{len(self.configurations)}"
            )

    # ------------------------------------------------------------------
    # Convenience accessors
    # ------------------------------------------------------------------

    @property
    def partition_count(self) -> int:
        """Number of temporal partitions / configurations ``N``."""
        return self.partitioning.partition_count

    @property
    def computations_per_run(self) -> int:
        """The paper's ``k`` — loop iterations per board invocation."""
        return self.fission.computations_per_run

    @property
    def block_delay(self) -> float:
        """Datapath seconds one loop iteration spends across all partitions."""
        return self.timing_spec.block_delay

    def configuration(self, partition_index: int) -> RtlDesign:
        """The RTL configuration of partition *partition_index* (1-based)."""
        if not self.configurations:
            raise SynthesisError(f"design {self.name!r} carries no RTL configurations")
        if not 1 <= partition_index <= len(self.configurations):
            raise SynthesisError(
                f"partition index {partition_index} outside 1..{len(self.configurations)}"
            )
        return self.configurations[partition_index - 1]

    def sequencer_plan(self, strategy: SequencingStrategy) -> SequencerPlan:
        """The host sequencing plan for *strategy*."""
        return SequencerPlan(
            strategy=strategy,
            partition_count=self.partition_count,
            computations_per_run=self.computations_per_run,
            design_name=self.name,
        )

    def host_code_for(self, strategy: SequencingStrategy) -> str:
        """The generated host sequencing code for *strategy*."""
        key = strategy.value
        if key not in self.host_code:
            self.host_code[key] = generate_host_code(self.sequencer_plan(strategy))
        return self.host_code[key]

    def total_configuration_clbs(self) -> int:
        """Sum of the per-configuration CLB estimates (for reports)."""
        if self.configurations:
            return sum(c.estimated_clbs for c in self.configurations)
        return sum(info.clbs for info in self.partitioning.partitions)

    def describe(self) -> str:
        """Multi-line human readable summary."""
        lines = [
            f"RTR design {self.name}: {self.partition_count} configurations, "
            f"k={self.computations_per_run}, block delay "
            f"{self.block_delay * 1e9:.0f} ns",
            self.partitioning.describe(),
            self.fission.describe(),
        ]
        return "\n".join(lines)
