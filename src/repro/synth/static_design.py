"""The static (configure-once) baseline design.

The paper's first experiment synthesises the whole DCT onto the FPGA once and
streams every block through it.  A :class:`StaticDesign` carries the handful
of numbers that matter for the comparison — the per-block delay, the area, and
the environment I/O per block — and can be built either from the paper's
reported figures or from the library's own estimator run on the merged task
DFGs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.device import FpgaDevice
from ..errors import SynthesisError
from ..fission.strategies import StaticTimingSpec
from ..hls.estimator import TaskEstimator
from ..taskgraph.graph import TaskGraph


@dataclass
class StaticDesign:
    """A statically configured design processing one loop iteration per pass."""

    name: str
    clbs: int
    cycles_per_block: int
    clock_period: float
    env_input_words: int
    env_output_words: int
    blocks_per_invocation: int = 1

    def __post_init__(self) -> None:
        if self.cycles_per_block < 1:
            raise SynthesisError("cycles_per_block must be at least 1")
        if self.clock_period <= 0:
            raise SynthesisError("clock_period must be positive")
        if self.clbs < 0:
            raise SynthesisError("clbs must be non-negative")

    @property
    def block_delay(self) -> float:
        """Datapath seconds per loop iteration."""
        return self.cycles_per_block * self.clock_period

    def timing_spec(self) -> StaticTimingSpec:
        """The :class:`StaticTimingSpec` the throughput models consume."""
        return StaticTimingSpec(
            block_delay=self.block_delay,
            env_input_words=self.env_input_words,
            env_output_words=self.env_output_words,
            blocks_per_invocation=self.blocks_per_invocation,
        )

    def fits(self, device: FpgaDevice) -> bool:
        """Whether the design fits the device's CLB capacity."""
        return self.clbs <= device.clb_count

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"static design {self.name}: {self.clbs} CLBs, "
            f"{self.cycles_per_block} cycles @ {self.clock_period * 1e9:.0f} ns "
            f"= {self.block_delay * 1e6:.2f} us/block"
        )


def static_design_from_estimator(
    graph: TaskGraph,
    device: FpgaDevice,
    max_clock_period: float,
    name: Optional[str] = None,
    blocks_per_invocation: int = 1,
) -> StaticDesign:
    """Synthesise the whole task graph as one static datapath (estimated).

    Every task must carry a DFG.  The merged datapath shares functional units
    across all tasks, which is how the paper's static DCT fits a 1600-CLB
    device even though the 32 tasks' individual estimates sum to 4000 CLBs.
    """
    dfgs = []
    for task in graph.tasks():
        if task.dfg is None:
            raise SynthesisError(
                f"task {task.name!r} has no DFG; static estimation needs the "
                "operation-level behaviour"
            )
        dfgs.append(task.dfg)
    estimator = TaskEstimator(device, max_clock_period=max_clock_period, goal="area")
    env_in = graph.total_env_input_words()
    env_out = graph.total_env_output_words()
    estimate = estimator.estimate_composite(
        dfgs, env_io_words=env_in + env_out, name=f"{graph.name}-static"
    )
    return StaticDesign(
        name=name or f"{graph.name}-static",
        clbs=estimate.clbs,
        cycles_per_block=estimate.cycles,
        clock_period=estimate.clock_period,
        env_input_words=env_in,
        env_output_words=env_out,
        blocks_per_invocation=blocks_per_invocation,
    )


def static_design_from_parameters(
    name: str,
    clbs: int,
    cycles_per_block: int,
    clock_period: float,
    env_input_words: int,
    env_output_words: int,
    blocks_per_invocation: int = 1,
) -> StaticDesign:
    """Build a :class:`StaticDesign` directly from known figures.

    Used with the paper's reported static DCT (160 cycles @ 100 ns on the
    XC4044 with 16 input and 16 output words per block).
    """
    return StaticDesign(
        name=name,
        clbs=clbs,
        cycles_per_block=cycles_per_block,
        clock_period=clock_period,
        env_input_words=env_input_words,
        env_output_words=env_output_words,
        blocks_per_invocation=blocks_per_invocation,
    )
