"""The declarative stage transforms of the Figure-2 design flow.

Every stage of the flow — estimate, partition, memory map, fission, timing —
is expressed here as a *pure, versioned transform* with canonically hashed
inputs:

* the **transform** is a plain function from input artifacts to an output
  artifact, shared verbatim by the one-call :class:`~repro.synth.flow.DesignFlow`
  and the cached batch :class:`~repro.synth.flow_engine.FlowEngine` — the two
  paths run exactly the same code;
* the **stage key** is a content digest of everything the transform can
  observe, chained Merkle-style through the stage DAG (the partition key
  hashes the estimate key, the memory-map key hashes the partition key, and
  so on), so a flow job reduces to a DAG of stage keys and two jobs that
  share a prefix of the DAG share the cached artifacts for that prefix;
* the **version tag** is baked into every digest; bumping a stage's entry in
  :data:`STAGE_VERSIONS` invalidates that stage's (and its dependents')
  cached entries without touching the rest of the cache.

Reconfiguration time is the interesting axis: ``CT`` enters the ILP
objective only as the constant ``N * CT`` per fixed bound, and the default
relax-N loop stops at the first feasible bound, so the solved *assignment*
is provably independent of ``CT`` (the constant never reaches the solver —
it is carried in ``objective_constant`` outside the matrices).  The
heuristic partitioners never read ``CT`` at all.  For such *CT-invariant*
solver configurations the partition stage therefore solves a CT-normalised
problem (``CT = 0``) and re-attaches the job's true ``CT`` on rehydration —
which is what lets a CT-only explore neighbour reuse the cached estimate
*and* partition artifacts and re-run nothing but the cheap downstream
stages.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from ..arch.board import RtrSystem
from ..arch.device import ResourceVector
from ..errors import SynthesisError
from ..fission.analysis import FissionAnalysis, analyse_fission
from ..fission.throughput import rtr_timing_spec
from ..hls.estimator import TaskEstimator
from ..memmap.mapper import MemoryMap, build_memory_map
from ..partition.result import TemporalPartitioning
from ..partition.spec import PartitionProblem
from ..runtime.canonical import (
    canonical_device_dict,
    canonical_fingerprint,
    canonical_graph_dict,
)
from ..runtime.jobs import JobOutcome
from ..taskgraph.graph import TaskGraph
from ..taskgraph.task import TaskCost

#: Stage names, in flow order (the values of
#: :class:`~repro.synth.flow_engine.FlowStage` for the cached stages).
ESTIMATE = "estimate"
PARTITION = "partition"
MEMORY_MAP = "memory-map"
FISSION = "fission"
TIMING = "timing"

#: The cached pipeline stages in dependency order.
PIPELINE_STAGES: Tuple[str, ...] = (ESTIMATE, PARTITION, MEMORY_MAP, FISSION, TIMING)

#: Per-stage version tags.  A bump invalidates every cached entry of that
#: stage (and, through key chaining, of its downstream dependents) while
#: leaving the rest of the disk cache valid.
STAGE_VERSIONS: Dict[str, int] = {
    ESTIMATE: 1,
    # v2: stronger preprocessing lower bound (cardinality), symmetry breaking
    # and cardinality cuts for the built-in backend, and the anneal/portfolio
    # partitioners — cached v1 partition results may differ in assignment.
    # v3: the multilevel pre-partitioner family and the nonenumerative Eq. 7
    # path generation (path constraints now enter the ILP in delay order, so
    # solver traces — though not optima — can differ from v2).
    PARTITION: 3,
    MEMORY_MAP: 1,
    FISSION: 1,
    TIMING: 1,
}


@dataclass(frozen=True)
class StageKey:
    """Content address of one stage invocation: name, version tag, digest."""

    stage: str
    version: int
    digest: str
    parents: Tuple[str, ...] = ()

    @property
    def short(self) -> str:
        """Compact display form (``stage@v1:digest12``)."""
        return f"{self.stage}@v{self.version}:{self.digest[:12]}"


@dataclass(frozen=True)
class StagePlan:
    """The DAG of stage keys one flow job reduces to.

    Keys are chained: each stage's digest hashes its parents' digests plus
    its own direct inputs, so equality of a stage key implies equality of
    the whole upstream computation.
    """

    keys: Tuple[StageKey, ...]

    def key(self, stage: str) -> StageKey:
        """The :class:`StageKey` of *stage* (raising on unknown stages)."""
        for key in self.keys:
            if key.stage == stage:
                return key
        raise SynthesisError(f"stage {stage!r} is not part of this plan")

    def digest(self, stage: str) -> str:
        """The content digest of *stage*."""
        return self.key(stage).digest

    def describe(self) -> str:
        """One-line human readable summary of the key chain."""
        return " -> ".join(key.short for key in self.keys)


def _stage_digest(stage: str, version: int, payload: Dict[str, object]) -> str:
    return canonical_fingerprint(
        {"stage": stage, "version": version, "inputs": payload}
    )


def ct_invariant_solver(partitioner: str, explore_extra_partitions: int = 0) -> bool:
    """Whether the partition assignment is independent of ``CT``.

    True for the greedy heuristics (they never read ``CT``) and for the
    default ILP relax-N loop (it stops at the first feasible bound;
    ``N*CT`` is a constant per bound).  False for ``explore_extra_partitions
    > 0`` (the bound *selection* compares ``N*CT + sum_p d_p`` across
    bounds), for ``anneal`` (move acceptance scores include ``N*CT`` with
    the partition count varying as partitions empty), and for ``portfolio``
    (the certificate compares latencies against a CT-dependent bound and
    one arm is the annealer).
    """
    if partitioner in ("anneal", "portfolio"):
        return False
    if partitioner.startswith("multilevel"):
        # The coarse solve runs a CT-reading inner engine (portfolio by
        # default) and refinement accepts moves on latency deltas.
        return False
    if partitioner != "ilp":
        return True
    return explore_extra_partitions == 0


# ---------------------------------------------------------------------------
# Stage keys
# ---------------------------------------------------------------------------

def graph_content_digest(graph: TaskGraph) -> str:
    """Content digest of a task graph (hashes the canonical form).

    Canonicalising walks every task's DFG, so batch drivers that submit one
    graph object under many jobs (CT sweeps, explore neighbourhoods) pass
    the digest down through *graph_digest* rather than re-hashing per job.
    Any such memoisation must be scoped to a window in which the graph is
    provably not mutated — :meth:`FlowEngine.run_batch` memoises per batch
    (the engine never mutates a submitted graph; estimation works on a
    copy), never across caller turns, because no cheap salt can detect
    every in-place content mutation.
    """
    return canonical_fingerprint(canonical_graph_dict(graph))


def estimate_stage_key(
    graph: TaskGraph,
    system: RtrSystem,
    options,
    graph_digest: Optional[str] = None,
) -> StageKey:
    """Key of the estimation stage: graph content, device, clock constraint.

    *graph_digest* short-circuits the graph hashing when the caller already
    holds :func:`graph_content_digest` for this graph's current content.
    """
    version = STAGE_VERSIONS[ESTIMATE]
    digest = _stage_digest(
        ESTIMATE,
        version,
        {
            "graph": graph_digest or graph_content_digest(graph),
            "device": canonical_device_dict(system.fpga),
            "max_clock_period": float(options.max_clock_period),
            "estimate_missing_costs": bool(options.estimate_missing_costs),
        },
    )
    return StageKey(ESTIMATE, version, digest)


def _solver_key_fields(options, explore_extra_partitions: int) -> Dict[str, object]:
    """Solver fields of the partition-stage digest.

    Mirrors :meth:`repro.runtime.jobs.SolverSpec.cache_key_fields`: the seed
    enters the key only for the partitioners whose result depends on it.
    """
    fields: Dict[str, object] = {
        "partitioner": options.partitioner,
        "backend": options.ilp_backend,
        "explore_extra_partitions": int(explore_extra_partitions),
    }
    if options.partitioner in ("anneal", "portfolio") or options.partitioner.startswith(
        "multilevel"
    ):
        fields["seed"] = int(getattr(options, "partitioner_seed", 0))
    return fields


def partition_stage_key(
    estimate_key: StageKey,
    system: RtrSystem,
    options,
    explore_extra_partitions: int = 0,
) -> StageKey:
    """Key of the partition stage: estimate key, capacity, memory, solver.

    ``CT`` is part of the key only for CT-dependent solver configurations;
    CT-invariant configurations (the default) share one key across the whole
    reconfiguration-time axis.
    """
    version = STAGE_VERSIONS[PARTITION]
    invariant = ct_invariant_solver(options.partitioner, explore_extra_partitions)
    digest = _stage_digest(
        PARTITION,
        version,
        {
            "estimate": estimate_key.digest,
            "capacity": {
                kind: int(amount)
                for kind, amount in sorted(system.resource_capacity.as_dict().items())
            },
            "memory_words": int(system.memory_capacity_words),
            "solver": _solver_key_fields(options, explore_extra_partitions),
            "ct": None if invariant else float(system.reconfiguration_time),
        },
    )
    return StageKey(PARTITION, version, digest, parents=(ESTIMATE,))


def memory_map_stage_key(partition_key: StageKey, options) -> StageKey:
    """Key of the memory-map stage: partition key plus the rounding switch."""
    version = STAGE_VERSIONS[MEMORY_MAP]
    digest = _stage_digest(
        MEMORY_MAP,
        version,
        {
            "partition": partition_key.digest,
            "round_memory_blocks": bool(options.round_memory_blocks),
        },
    )
    return StageKey(MEMORY_MAP, version, digest, parents=(PARTITION,))


def fission_stage_key(memory_map_key: StageKey, system: RtrSystem) -> StageKey:
    """Key of the fission stage: memory-map key plus the memory capacity."""
    version = STAGE_VERSIONS[FISSION]
    digest = _stage_digest(
        FISSION,
        version,
        {
            "memory_map": memory_map_key.digest,
            "memory_words": int(system.memory_capacity_words),
        },
    )
    return StageKey(FISSION, version, digest, parents=(MEMORY_MAP,))


def timing_stage_key(fission_key: StageKey) -> StageKey:
    """Key of the timing stage (fully determined by the fission key)."""
    version = STAGE_VERSIONS[TIMING]
    digest = _stage_digest(TIMING, version, {"fission": fission_key.digest})
    return StageKey(TIMING, version, digest, parents=(FISSION,))


def build_stage_plan(
    graph: TaskGraph,
    system: RtrSystem,
    options,
    explore_extra_partitions: int = 0,
    graph_digest: Optional[str] = None,
) -> StagePlan:
    """The full DAG of stage keys for one (graph, system, options) flow job."""
    estimate = estimate_stage_key(graph, system, options, graph_digest=graph_digest)
    partition = partition_stage_key(
        estimate, system, options, explore_extra_partitions
    )
    memory_map = memory_map_stage_key(partition, options)
    fission = fission_stage_key(memory_map, system)
    timing = timing_stage_key(fission)
    return StagePlan(keys=(estimate, partition, memory_map, fission, timing))


# ---------------------------------------------------------------------------
# Estimate: transform + artifact codec
# ---------------------------------------------------------------------------

def run_estimate(graph: TaskGraph, system: RtrSystem, options) -> TaskGraph:
    """The estimation transform: fill in missing ``R(t)``/``D(t)`` values.

    Fully-estimated graphs pass through untouched; otherwise the estimation
    runs on a copy, so a graph shared by several jobs never inherits the
    first job's costs.
    """
    if graph.all_estimated():
        return graph
    if not options.estimate_missing_costs:
        raise SynthesisError(
            "the task graph has unestimated tasks and estimate_missing_costs "
            "is disabled"
        )
    estimator = TaskEstimator(
        system.fpga, max_clock_period=options.max_clock_period
    )
    return estimator.estimate_task_graph(graph.copy())


def estimate_artifact(graph: TaskGraph) -> Dict[str, object]:
    """The JSON-able artifact of an estimated graph: every task's cost.

    Floats are stored bit-exactly (``float.hex``) so a rehydrated cost is
    byte-identical to the freshly estimated one.
    """
    payload: Dict[str, object] = {}
    for name in graph.task_names():
        task = graph.task(name)
        cost = task.cost
        payload[name] = {
            "resources": {
                kind: int(amount)
                for kind, amount in sorted(cost.resources.as_dict().items())
            },
            "delay": float(cost.delay).hex(),
            "cycles": cost.cycles,
            "clock_period": (
                None if cost.clock_period is None else float(cost.clock_period).hex()
            ),
        }
    return payload


def apply_estimate_artifact(
    graph: TaskGraph, payload: Dict[str, object]
) -> TaskGraph:
    """Rehydrate an estimated graph from a cached estimate artifact.

    The costs are applied to a copy of *graph* (never mutating the caller's
    object), reproducing exactly what :func:`run_estimate` would have
    attached.
    """
    estimated = graph.copy()
    for name, entry in payload.items():
        if name not in estimated:
            raise SynthesisError(
                f"estimate artifact names unknown task {name!r}; the stage key "
                "should have prevented this"
            )
        estimated.set_cost(
            name,
            TaskCost(
                resources=ResourceVector(
                    {kind: int(amount) for kind, amount in entry["resources"].items()}
                ),
                delay=float.fromhex(entry["delay"]),
                cycles=entry["cycles"],
                clock_period=(
                    None
                    if entry["clock_period"] is None
                    else float.fromhex(entry["clock_period"])
                ),
            ),
        )
    return estimated


# ---------------------------------------------------------------------------
# Partition: problem normalisation + rehydration
# ---------------------------------------------------------------------------

def normalised_partition_problem(
    problem: PartitionProblem, explore_extra_partitions: int, partitioner: str
) -> PartitionProblem:
    """The problem actually submitted to the partition engine.

    For CT-invariant solver configurations the reconfiguration time is
    normalised to zero, so the engine's content-addressed caches collapse
    the whole CT axis onto a single solve; CT-dependent configurations keep
    the true problem.
    """
    if not ct_invariant_solver(partitioner, explore_extra_partitions):
        return problem
    if problem.reconfiguration_time == 0.0:
        return problem
    return replace(problem, reconfiguration_time=0.0)


def rehydrate_partitioning(
    problem: PartitionProblem, outcome: JobOutcome, solved_ct: float
) -> TemporalPartitioning:
    """Build the job's true partitioning from a (possibly normalised) outcome.

    *problem* carries the job's true reconfiguration time; *solved_ct* is
    the reconfiguration time the outcome was solved under.  Per-partition
    delays are recomputed from the assignment, and the solver's objective
    value — whose only CT dependence is the additive constant ``N * CT`` —
    is shifted accordingly.

    The shift uses the *realised* partition count.  The solver's own
    objective charges ``N*CT`` for the relax-loop bound ``N``, which can
    exceed the realised count when an optimal solve leaves a partition
    empty (empty partitions are compressed away); in that rare case the
    rehydrated value is the meaningful total for the returned assignment
    (it matches :attr:`TemporalPartitioning.total_latency`) rather than the
    solver's bound-based number.  When *solved_ct* equals the job's CT the
    stored objective passes through bit-exactly.
    """
    from ..runtime.jobs import outcome_to_partitioning

    partitioning = outcome_to_partitioning(problem, outcome)
    if (
        partitioning.objective_value is not None
        and solved_ct != problem.reconfiguration_time
    ):
        shift = partitioning.partition_count * (
            problem.reconfiguration_time - solved_ct
        )
        partitioning.objective_value = partitioning.objective_value + shift
    return partitioning


# ---------------------------------------------------------------------------
# Downstream transforms (memory map, fission, timing)
# ---------------------------------------------------------------------------

def run_memory_map(partitioning: TemporalPartitioning, options) -> MemoryMap:
    """The memory-mapping transform."""
    return build_memory_map(
        partitioning, round_to_power_of_two=options.round_memory_blocks
    )


def run_fission(
    partitioning: TemporalPartitioning,
    memory_map: MemoryMap,
    system: RtrSystem,
    options,
) -> FissionAnalysis:
    """The loop-fission transform (``k`` and the limiting partition)."""
    return analyse_fission(
        partitioning,
        system.memory_capacity_words,
        memory_map=memory_map,
        round_blocks_to_power_of_two=options.round_memory_blocks,
    )


def run_timing(
    partitioning: TemporalPartitioning,
    fission: FissionAnalysis,
    memory_map: MemoryMap,
):
    """The timing transform: the RTR timing spec the analytic models use."""
    return rtr_timing_spec(partitioning, fission, memory_map)
