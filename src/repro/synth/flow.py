"""The end-to-end design flow of Figure 2.

``behaviour spec -> task estimation -> temporal partitioning -> loop fission ->
memory mapping -> controller/RTL synthesis -> host code``

:class:`DesignFlow` wires the library's pieces together with one call.  Every
stage is one of the pure, versioned transforms of :mod:`repro.synth.stages`,
exposed as its own method (:meth:`~DesignFlow.estimate`,
:meth:`~DesignFlow.partition`, :meth:`~DesignFlow.map_memory`,
:meth:`~DesignFlow.analyse`, :meth:`~DesignFlow.timing`,
:meth:`~DesignFlow.generate_rtl`, :meth:`~DesignFlow.assemble`) so drivers
that want per-stage control — most importantly the batched
:class:`~repro.synth.flow_engine.FlowEngine`, which runs the same transforms
through the content-addressed stage pipeline and the caching/parallel
partition engine — run exactly the same code as the one-call
:meth:`~DesignFlow.build` experience the SPARCS environment offered.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..arch.board import RtrSystem
from ..errors import SynthesisError
from ..fission.sequencer import generate_host_code
from ..fission.strategies import SequencingStrategy
from ..hls.allocation import minimal_allocation
from ..hls.controller import controller_for_schedule
from ..hls.datapath import build_datapath
from ..hls.estimator import TaskEstimator, merge_dfgs
from ..hls.library import library_for_family
from ..hls.rtl import RtlDesign
from ..memmap.mapper import build_memory_map
from ..partition.anneal_partitioner import AnnealTemporalPartitioner
from ..partition.greedy_partitioner import LevelClusteringPartitioner
from ..partition.hierarchy import MultilevelPartitioner, multilevel_inner
from ..partition.ilp_partitioner import IlpTemporalPartitioner
from ..partition.list_partitioner import ListTemporalPartitioner
from ..partition.portfolio import PortfolioPartitioner
from ..partition.result import TemporalPartitioning
from ..partition.spec import PartitionProblem
from ..partition.validate import assert_valid
from ..taskgraph.graph import TaskGraph
from ..units import ns
from . import stages
from .rtr_design import RtrDesign

#: Registered partitioner names.  ``"multilevel"`` additionally accepts a
#: ``multilevel:<inner>`` suffix selecting the coarse-graph engine.
PARTITIONERS = ("ilp", "list", "level", "anneal", "portfolio", "multilevel")


@dataclass
class FlowOptions:
    """Options controlling the end-to-end flow."""

    partitioner: str = "ilp"
    ilp_backend: str = "scipy"
    #: Seed for the stochastic partitioners ("anneal", and the anneal arm of
    #: "portfolio"); the deterministic partitioners ignore it.
    partitioner_seed: int = 0
    max_clock_period: float = ns(100)
    round_memory_blocks: bool = False
    generate_rtl: bool = False
    estimate_missing_costs: bool = True

    def __post_init__(self) -> None:
        if (
            self.partitioner not in PARTITIONERS
            and multilevel_inner(self.partitioner) is None
        ):
            raise SynthesisError(
                f"unknown partitioner {self.partitioner!r}; choose from {PARTITIONERS}"
            )
        if self.max_clock_period <= 0:
            raise SynthesisError("max_clock_period must be positive")


class DesignFlow:
    """Runs the Figure-2 flow on a task graph and an RTR system."""

    def __init__(self, system: RtrSystem, options: Optional[FlowOptions] = None) -> None:
        self.system = system
        self.options = options or FlowOptions()

    # ------------------------------------------------------------------
    # Stages
    # ------------------------------------------------------------------

    def estimate(self, graph: TaskGraph) -> TaskGraph:
        """Task-estimation stage: fill in missing ``R(t)``/``D(t)`` values.

        Fully-estimated graphs pass through untouched; otherwise estimation
        runs on a copy (the caller's graph is never mutated).
        """
        return stages.run_estimate(graph, self.system, self.options)

    def partition(self, graph: TaskGraph) -> TemporalPartitioning:
        """Temporal-partitioning stage (ILP or a heuristic baseline)."""
        problem = PartitionProblem.from_system(graph, self.system)
        inner = multilevel_inner(self.options.partitioner)
        if inner is not None:
            partitioner = MultilevelPartitioner(
                inner=inner,
                ilp_backend=self.options.ilp_backend,
                seed=self.options.partitioner_seed,
            )
        elif self.options.partitioner == "ilp":
            partitioner = IlpTemporalPartitioner(backend=self.options.ilp_backend)
        elif self.options.partitioner == "list":
            partitioner = ListTemporalPartitioner()
        elif self.options.partitioner == "anneal":
            partitioner = AnnealTemporalPartitioner(
                seed=self.options.partitioner_seed
            )
        elif self.options.partitioner == "portfolio":
            partitioner = PortfolioPartitioner(
                ilp_backend=self.options.ilp_backend,
                anneal_seed=self.options.partitioner_seed,
            )
        else:
            partitioner = LevelClusteringPartitioner()
        result = partitioner.partition(problem)
        assert_valid(problem, result)
        return result

    def map_memory(self, partitioning: TemporalPartitioning):
        """Memory-mapping stage: lay inter-partition data out in board memory."""
        return stages.run_memory_map(partitioning, self.options)

    def analyse(self, partitioning: TemporalPartitioning, memory_map):
        """Loop-fission stage: derive ``k`` and the limiting partition."""
        return stages.run_fission(partitioning, memory_map, self.system, self.options)

    def timing(self, partitioning: TemporalPartitioning, fission, memory_map):
        """Timing stage: the RTR timing spec the analytic models consume."""
        return stages.run_timing(partitioning, fission, memory_map)

    def stage_plan(self, graph: TaskGraph) -> stages.StagePlan:
        """The DAG of content-addressed stage keys this flow would execute.

        The plan is what the batched :class:`~repro.synth.flow_engine.FlowEngine`
        caches by; exposing it here lets callers inspect key derivation (and
        equality across jobs) without running anything.
        """
        return stages.build_stage_plan(graph, self.system, self.options)

    def assemble(
        self,
        graph: TaskGraph,
        partitioning: TemporalPartitioning,
        name: Optional[str] = None,
        memory_map=None,
        fission=None,
        timing=None,
        configurations: Optional[List[RtlDesign]] = None,
    ) -> RtrDesign:
        """Run every post-partitioning stage and return the :class:`RtrDesign`.

        *graph* must be the estimated graph the partitioning was produced
        from.  Splitting this from :meth:`build` lets batch drivers obtain
        the partitioning elsewhere (e.g. from the partition engine's cache)
        and still finish the flow through the exact same code path.  Stage
        artefacts already computed (memory map, fission analysis, timing
        spec, RTL configurations) can be passed in so drivers that time the
        stages individually do not pay for them twice.
        """
        if memory_map is None:
            memory_map = self.map_memory(partitioning)
        if fission is None:
            fission = self.analyse(partitioning, memory_map)
        if timing is None:
            timing = self.timing(partitioning, fission, memory_map)
        if configurations is None:
            configurations = []
            if self.options.generate_rtl:
                configurations = self.generate_rtl(graph, partitioning, fission)
        design = RtrDesign(
            name=name or f"{graph.name}-rtr",
            system=self.system,
            partitioning=partitioning,
            memory_map=memory_map,
            fission=fission,
            timing_spec=timing,
            configurations=configurations,
        )
        for strategy in (SequencingStrategy.FDH, SequencingStrategy.IDH):
            design.host_code[strategy.value] = generate_host_code(
                design.sequencer_plan(strategy)
            )
        return design

    def build(self, graph: TaskGraph, name: Optional[str] = None) -> RtrDesign:
        """Run every stage and return the finished :class:`RtrDesign`."""
        graph = self.estimate(graph)
        partitioning = self.partition(graph)
        return self.assemble(graph, partitioning, name=name)

    # ------------------------------------------------------------------
    # RTL generation per temporal partition
    # ------------------------------------------------------------------

    def generate_rtl(
        self,
        graph: TaskGraph,
        partitioning: TemporalPartitioning,
        fission,
    ) -> List[RtlDesign]:
        library = library_for_family(self.system.fpga.family)
        memory_map = build_memory_map(partitioning)
        configurations: List[RtlDesign] = []
        for index in range(1, partitioning.partition_count + 1):
            members = partitioning.tasks_in_partition(index)
            dfgs = []
            for task_name in members:
                task = graph.task(task_name)
                if task.dfg is None:
                    raise SynthesisError(
                        f"task {task_name!r} has no DFG; RTL generation needs the "
                        "operation-level behaviour (or disable generate_rtl)"
                    )
                dfgs.append(task.dfg)
            merged = merge_dfgs(dfgs, name=f"{graph.name}-p{index}")
            estimator = TaskEstimator(
                self.system.fpga, max_clock_period=self.options.max_clock_period
            )
            estimate = estimator.estimate_dfg(merged)
            allocation = estimate.allocation or minimal_allocation(merged, library)
            controller = controller_for_schedule(
                name=f"{graph.name}-p{index}",
                schedule_cycles=estimate.cycles,
                iteration_bound=max(1, fission.computations_per_run),
                counter_width=max(16, fission.computations_per_run.bit_length() + 1),
            )
            datapath = build_datapath(
                name=f"{graph.name}-p{index}",
                dfg=merged,
                allocation=allocation,
                schedule=estimate.schedule,
                library=library,
                needs_memory_port=True,
                memory_port_width=self.system.board.memory.word_bits,
            )
            configurations.append(
                RtlDesign(
                    name=f"{graph.name}-config{index}",
                    datapath=datapath,
                    controller=controller,
                    clock_period=estimate.clock_period,
                    estimated_clbs=estimate.clbs,
                    memory_layout=dict(memory_map.block(index).offsets),
                )
            )
        return configurations
