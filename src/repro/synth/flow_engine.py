"""The batch-capable design-flow service.

:class:`FlowEngine` turns :class:`~repro.synth.flow.DesignFlow` from a
one-problem-at-a-time call into a throughput-oriented service: a whole list
of (graph, system, options) flow jobs is accepted at once and every job is
reduced to a DAG of content-addressed stage keys
(:class:`~repro.synth.stages.StagePlan`) executed through the cached
:class:`~repro.synth.pipeline.StagePipeline`:

* the **estimate** stage is served from the stage artifact store (memory +
  optional disk) whenever any previous job shared the graph and device;
* the dominant **partition** stage is routed through the caching/parallel
  :class:`~repro.runtime.engine.PartitionEngine` (canonical-hash dedup,
  LRU + disk caches, process-pool fan-out), with CT-invariant solver
  configurations normalised so the whole reconfiguration-time axis shares
  one solve;
* the **memory-map / fission / timing** stages are shared through the
  in-memory artifact cache.

Stages run through the very transforms the single-call path uses —
individually timed, per-stage cache sources recorded on every report, with
structured per-stage failure reports so one broken scenario never takes a
batch down.

Workload-catalog integration lives in :func:`workload_flow_jobs`, which
expands registered workloads (optionally their deterministic parameter
sweeps and a reconfiguration-time sweep) into a flat job list.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from ..arch.board import RtrSystem
from ..errors import ReproError, SynthesisError
from ..partition.spec import PartitionProblem
from ..runtime.engine import EngineConfig, PartitionEngine
from ..runtime.jobs import JobReport, ResultSource
from ..taskgraph.graph import TaskGraph
from . import stages
from .flow import DesignFlow, FlowOptions
from .pipeline import StagePipeline
from .rtr_design import RtrDesign


class FlowStage(str, enum.Enum):
    """The stages a flow job passes through, in order."""

    ESTIMATE = "estimate"
    PARTITION = "partition"
    MEMORY_MAP = "memory-map"
    FISSION = "fission"
    TIMING = "timing"
    RTL = "rtl"
    ASSEMBLE = "assemble"


@dataclass
class FlowJob:
    """One unit of flow work: a task graph, a target system and options."""

    graph: TaskGraph
    system: RtrSystem
    options: FlowOptions = field(default_factory=FlowOptions)
    tag: str = ""
    workload: str = ""

    @property
    def name(self) -> str:
        """Display name (tag, falling back to the graph name)."""
        return self.tag or self.graph.name


#: The stages whose wall-times appear as columns in :meth:`FlowReport.row`.
ROW_STAGES: Tuple[str, ...] = tuple(stage.value for stage in FlowStage)

#: Stage sources meaning "served from a cache, nothing ran".
CACHED_SOURCES = (
    ResultSource.MEMORY_CACHE.value,
    ResultSource.DISK_CACHE.value,
    ResultSource.BATCH_DEDUP.value,
)


def canonical_metric(value: float) -> float:
    """Round a derived metric to its canonical shortest decimal form.

    Unit conversions (``block_delay * 1e9``) and latency sums accumulate
    binary-float artifacts (``8439.999999999998`` for an exact 8440 ns),
    which leak into JSON rows and break byte-identity between runs that
    computed the same design along different cache paths.  12 significant
    digits is far beyond the models' fidelity but well inside a double's
    15–16, so the rounding is lossless for every real metric.
    """
    return float(f"{value:.12g}")


@dataclass
class FlowReport:
    """Everything one flow job produced: the design or a structured failure."""

    job: FlowJob
    design: Optional[RtrDesign] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    stage_sources: Dict[str, str] = field(default_factory=dict)
    partition_source: str = ""
    failed_stage: str = ""
    error: str = ""
    error_kind: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a finished design."""
        return self.design is not None

    @property
    def cached_partition(self) -> bool:
        """Whether the partition stage was served without running a solver."""
        return self.partition_source not in ("", ResultSource.SOLVE.value)

    def cached_stage(self, stage: str) -> bool:
        """Whether *stage* was served from a cache (nothing recomputed)."""
        return self.stage_sources.get(stage, "") in CACHED_SOURCES

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular/JSON/CSV presentation.

        Carries one ``t_<stage>_s`` wall-time column per flow stage plus the
        compact ``stage_sources`` provenance string, so slow stages and cold
        caches are visible directly in batch output.
        """
        row: Dict[str, object] = {
            "tag": self.job.name,
            "workload": self.job.workload,
            "status": "ok" if self.ok else f"failed:{self.failed_stage or 'unknown'}",
            "partition_source": self.partition_source,
            "cached_partition": self.cached_partition,
            "cached_estimate": self.cached_stage(FlowStage.ESTIMATE.value),
            "partitions": self.design.partition_count if self.ok else 0,
            "k": self.design.computations_per_run if self.ok else 0,
            "block_delay_ns": (
                canonical_metric(self.design.block_delay * 1e9) if self.ok else 0.0
            ),
            "total_latency_s": (
                canonical_metric(self.design.partitioning.total_latency)
                if self.ok
                else 0.0
            ),
            "wall_time_s": self.wall_time,
        }
        for stage in ROW_STAGES:
            column = f"t_{stage.replace('-', '_')}_s"
            row[column] = self.stage_seconds.get(stage, 0.0)
        row["stage_sources"] = ",".join(
            f"{stage}={source}" for stage, source in self.stage_sources.items()
        )
        row["error"] = self.error
        return row


@dataclass
class FlowBatchReport:
    """Everything one :meth:`FlowEngine.run_batch` call produced."""

    reports: List[FlowReport]
    wall_time: float
    workers_used: int

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __getitem__(self, index: int) -> FlowReport:
        return self.reports[index]

    @property
    def ok(self) -> bool:
        """Whether every job produced a finished design."""
        return all(report.ok for report in self.reports)

    def failures(self) -> List[FlowReport]:
        """Jobs that did not finish."""
        return [report for report in self.reports if not report.ok]

    def designs(self) -> List[Optional[RtrDesign]]:
        """Per-job designs in submission order (``None`` for failures)."""
        return [report.design for report in self.reports]

    def rows(self) -> List[Dict[str, object]]:
        """Per-job rows for tabular/JSON/CSV output."""
        return [report.row() for report in self.reports]

    def describe(self, failures_only: bool = False) -> str:
        """One-line human readable summary.

        With *failures_only* the summary is compact and failure-focused:
        one ``tag [stage] error`` clause per failed job (or "all ok"), for
        logs and exploration output where the happy path is noise.
        """
        if failures_only:
            failures = self.failures()
            if not failures:
                return f"flow batch of {len(self.reports)} jobs: all ok"
            details = "; ".join(
                f"{report.job.name} [{report.failed_stage or 'unknown'}] "
                f"{report.error or 'no detail'}"
                for report in failures
            )
            return (
                f"flow batch of {len(self.reports)} jobs: "
                f"{len(failures)} failed — {details}"
            )
        cached = sum(1 for report in self.reports if report.cached_partition)
        status = "all ok" if self.ok else f"{len(self.failures())} failed"
        summary = (
            f"flow batch of {len(self.reports)} jobs in {self.wall_time:.2f} s "
            f"({self.workers_used} worker(s); {cached} cached partitionings; {status})"
        )
        stage_summary = self.describe_stage_cache()
        if stage_summary:
            summary += f"; {stage_summary}"
        return summary

    def describe_stage_cache(self) -> str:
        """Compact per-stage ``hits/lookups`` summary across the batch."""
        parts = []
        for stage in ROW_STAGES:
            lookups = sum(1 for r in self.reports if stage in r.stage_sources)
            if not lookups:
                continue
            hits = sum(1 for r in self.reports if r.cached_stage(stage))
            parts.append(f"{stage} {hits}/{lookups}")
        if not parts:
            return ""
        return "stage hits: " + ", ".join(parts)

    def stage_seconds_total(self) -> Dict[str, float]:
        """Summed wall-time per stage across the batch (slow stages pop out)."""
        totals: Dict[str, float] = {}
        for report in self.reports:
            for stage, seconds in report.stage_seconds.items():
                totals[stage] = totals.get(stage, 0.0) + seconds
        return totals


class FlowEngine:
    """Batched, cached, parallel end-to-end design flows.

    The engine reduces every job to a DAG of stage keys and executes it
    through the :class:`~repro.synth.pipeline.StagePipeline`: the
    temporal-partitioning stage — by far the most expensive — is submitted
    for the whole batch at once through the
    :class:`~repro.runtime.engine.PartitionEngine`, so identical (graph,
    system, solver) jobs dedup, repeats hit the LRU/disk caches, and misses
    fan out across the worker pool; estimation and the downstream stages are
    served from the content-addressed artifact store whenever any earlier
    job shared their stage keys.  When the partition engine has a disk cache
    directory, stage artifacts share the same root (under ``stages/``).
    """

    def __init__(
        self,
        engine: Optional[PartitionEngine] = None,
        config: Optional[EngineConfig] = None,
        pipeline: Optional[StagePipeline] = None,
        **overrides,
    ) -> None:
        if engine is not None and (config is not None or overrides):
            raise SynthesisError(
                "pass either a PartitionEngine or an EngineConfig/overrides, not both"
            )
        if engine is None:
            engine = PartitionEngine(config or EngineConfig(**overrides))
        self.engine = engine
        self.pipeline = pipeline or StagePipeline(
            cache_dir=engine.config.cache_dir
        )

    @property
    def stats(self):
        """Cumulative partition-engine statistics (jobs, caches, workers)."""
        return self.engine.stats

    @property
    def stage_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage artifact-cache counters (hits/misses/stores/runs)."""
        return self.pipeline.stats_snapshot()

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def run_batch(self, jobs: Sequence[FlowJob]) -> FlowBatchReport:
        """Run a whole batch of flow jobs; the report preserves order."""
        start = time.perf_counter()
        reports = [FlowReport(job=job) for job in jobs]

        # Stage 1: plan + estimation.  Each job reduces to its DAG of stage
        # keys, then the estimate artifact (every task's cost) is served
        # from the stage store or computed once; rehydration applies costs
        # to a copy, so a graph shared by jobs targeting different systems
        # never inherits the first job's costs (or mutates the caller's).
        # Graph content digests are memoised per graph object for THIS
        # batch only — the engine never mutates a submitted graph, so the
        # memo cannot go stale within the batch, and it dies with it.
        plans: Dict[int, stages.StagePlan] = {}
        estimated: Dict[int, TaskGraph] = {}
        graph_digests: Dict[int, str] = {}
        for index, job in enumerate(jobs):

            def plan_and_estimate(job=job, index=index):
                graph_key = id(job.graph)
                if graph_key not in graph_digests:
                    graph_digests[graph_key] = stages.graph_content_digest(job.graph)
                plan = self.pipeline.plan(
                    job.graph,
                    job.system,
                    job.options,
                    graph_digest=graph_digests[graph_key],
                )
                plans[index] = plan
                graph, source = self.pipeline.estimate(
                    plan, job.graph, job.system, job.options
                )
                reports[index].stage_sources[FlowStage.ESTIMATE.value] = source
                return graph

            graph = self._run_stage(
                reports[index], FlowStage.ESTIMATE, plan_and_estimate
            )
            if graph is not None:
                estimated[index] = graph

        # Stage 2: temporal partitioning, one engine batch for all survivors
        # (dedup + caches + worker pool live inside the partition engine).
        # CT-invariant solver configurations are normalised to CT = 0, so
        # the whole reconfiguration-time axis shares one solve.
        partition_reports, problems = self._partition_batch(jobs, reports, estimated)

        # Stage 3: the remaining stages, per job, individually timed.
        for index, partition_report in partition_reports.items():
            report = reports[index]
            report.partition_source = partition_report.source.value
            report.stage_sources[FlowStage.PARTITION.value] = (
                partition_report.source.value
            )
            report.stage_seconds[FlowStage.PARTITION.value] = (
                partition_report.wall_time
            )
            if not partition_report.ok:
                report.failed_stage = FlowStage.PARTITION.value
                report.error = partition_report.outcome.error
                report.error_kind = partition_report.outcome.error_kind
                continue
            self._finish_job(
                report,
                estimated[index],
                partition_report,
                plans[index],
                problems[index],
            )

        for report in reports:
            report.wall_time = sum(report.stage_seconds.values())

        batch = FlowBatchReport(
            reports=reports,
            wall_time=time.perf_counter() - start,
            workers_used=self.engine.config.workers,
        )
        return batch

    def run(self, job: FlowJob) -> RtrDesign:
        """Run one flow job and return the design (raising on failure)."""
        report = self.run_batch([job])[0]
        if report.design is None:
            raise SynthesisError(
                f"flow job {report.job.name!r} failed at stage "
                f"{report.failed_stage or 'unknown'}: {report.error or 'no detail'}"
            )
        return report.design

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _partition_batch(
        self,
        jobs: Sequence[FlowJob],
        reports: List[FlowReport],
        estimated: Dict[int, TaskGraph],
    ) -> Tuple[Dict[int, JobReport], Dict[int, PartitionProblem]]:
        """Submit every estimable job's partition problem as one batch.

        Returns the engine reports plus each job's *true* problem (the one
        carrying the job's own reconfiguration time) for rehydration; the
        engine itself sees the CT-normalised problem, so CT-only variants
        collapse onto one fingerprint.
        """
        engine_jobs = []
        indices: List[int] = []
        problems: Dict[int, PartitionProblem] = {}
        for index in sorted(estimated):
            job = jobs[index]
            try:
                problem = PartitionProblem.from_system(estimated[index], job.system)
            except ReproError as error:
                report = reports[index]
                report.failed_stage = FlowStage.PARTITION.value
                report.error = str(error)
                report.error_kind = type(error).__name__
                continue
            problems[index] = problem
            engine_jobs.append(
                self.engine.make_job(
                    stages.normalised_partition_problem(
                        problem, 0, job.options.partitioner
                    ),
                    tag=job.name,
                    partitioner=job.options.partitioner,
                    backend=job.options.ilp_backend,
                    seed=job.options.partitioner_seed,
                )
            )
            indices.append(index)
        if not engine_jobs:
            return {}, problems
        batch = self.engine.solve_batch(engine_jobs)
        return dict(zip(indices, batch)), problems

    def _finish_job(
        self,
        report: FlowReport,
        graph: TaskGraph,
        partition_report: JobReport,
        plan: stages.StagePlan,
        problem: PartitionProblem,
    ) -> None:
        """Run memory map, fission, timing, RTL and assembly for one job."""
        job = report.job
        flow = DesignFlow(job.system, job.options)
        partitioning = self._run_stage(
            report,
            FlowStage.PARTITION,
            lambda: stages.rehydrate_partitioning(
                problem,
                partition_report.outcome,
                partition_report.job.problem.reconfiguration_time,
            ),
            accumulate=True,
        )
        if partitioning is None:
            return
        memory_map = self._run_pipeline_stage(
            report,
            FlowStage.MEMORY_MAP,
            lambda: self.pipeline.memory_map(plan, partitioning, job.options),
        )
        if memory_map is None:
            return
        fission = self._run_pipeline_stage(
            report,
            FlowStage.FISSION,
            lambda: self.pipeline.fission(
                plan, partitioning, memory_map, job.system, job.options
            ),
        )
        if fission is None:
            return
        timing = self._run_pipeline_stage(
            report,
            FlowStage.TIMING,
            lambda: self.pipeline.timing(plan, partitioning, fission, memory_map),
        )
        if timing is None:
            return
        configurations: Optional[List] = []
        if job.options.generate_rtl:
            configurations = self._run_stage(
                report,
                FlowStage.RTL,
                lambda: flow.generate_rtl(graph, partitioning, fission),
            )
            if configurations is None:
                return
        design = self._run_stage(
            report,
            FlowStage.ASSEMBLE,
            lambda: flow.assemble(
                graph,
                partitioning,
                name=f"{job.name}-rtr",
                memory_map=memory_map,
                fission=fission,
                timing=timing,
                configurations=configurations,
            ),
        )
        report.design = design

    def _run_pipeline_stage(self, report, stage, fn):
        """Run one pipeline-cached stage, recording its source on the report."""

        def unpack():
            value, source = fn()
            report.stage_sources[stage.value] = source
            return value

        return self._run_stage(report, stage, unpack)

    def _run_stage(self, report, stage, fn, accumulate: bool = False):
        """Run one stage, timing it; ``None`` plus a structured failure on error."""
        start = time.perf_counter()
        try:
            return fn()
        except ReproError as error:
            report.failed_stage = stage.value
            report.error = str(error)
            report.error_kind = type(error).__name__
            return None
        finally:
            elapsed = time.perf_counter() - start
            key = stage.value
            if accumulate:
                report.stage_seconds[key] = report.stage_seconds.get(key, 0.0) + elapsed
            else:
                report.stage_seconds[key] = elapsed


# ---------------------------------------------------------------------------
# Workload-catalog integration
# ---------------------------------------------------------------------------

def workload_flow_jobs(
    names: Optional[Sequence[str]] = None,
    ct_values: Optional[Sequence[float]] = None,
    system: Optional[RtrSystem] = None,
    variants: bool = False,
    partitioner: Optional[str] = None,
) -> List[FlowJob]:
    """Expand registered workloads into a flat :class:`FlowJob` list.

    Parameters
    ----------
    names:
        Workload names to expand (default: every registered workload except
        those tagged ``"huge"`` — the 10k-100k-node tiers run only when
        named explicitly).
    ct_values:
        Optional reconfiguration times (seconds); each workload/variant is
        swept across them (default: the workload system's own ``CT``).
    system:
        Optional target system overriding every workload's default.
    variants:
        Expand each workload's deterministic parameter sweep instead of
        just its default parameterisation.
    partitioner:
        Optional partitioner-name override applied to every job's options.
    """
    # Imported lazily: the workload catalog itself imports FlowOptions from
    # this package, so a module-level import would be circular.
    from ..workloads import WorkloadVariant, get_workload, workload_names

    jobs: List[FlowJob] = []
    for name in (
        names if names is not None else workload_names(exclude_tags=("huge",))
    ):
        workload = get_workload(name)
        expansion = (
            workload.variants()
            if variants
            else [WorkloadVariant(workload.name, dict(workload.default_params))]
        )
        for variant in expansion:
            graph = workload.build_graph(**variant.params)
            base_system = system or workload.default_system()
            options = workload.flow_options()
            if partitioner is not None:
                options = replace(options, partitioner=partitioner)
            cts = list(ct_values) if ct_values else [base_system.reconfiguration_time]
            for ct in cts:
                target = (
                    base_system
                    if ct == base_system.reconfiguration_time
                    else base_system.with_reconfiguration_time(ct)
                )
                tag = variant.name
                if len(cts) > 1:
                    tag = f"{tag}@ct={ct * 1e3:g}ms"
                jobs.append(
                    FlowJob(
                        graph=graph,
                        system=target,
                        options=options,
                        tag=tag,
                        workload=workload.name,
                    )
                )
    return jobs
