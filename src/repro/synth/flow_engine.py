"""The batch-capable design-flow service.

:class:`FlowEngine` turns :class:`~repro.synth.flow.DesignFlow` from a
one-problem-at-a-time call into a throughput-oriented service: a whole list
of (graph, system, options) flow jobs is accepted at once, the dominant
partition stage is routed through the caching/parallel
:class:`~repro.runtime.engine.PartitionEngine` (canonical-hash dedup,
LRU + disk caches, process-pool fan-out), and every other stage runs through
the same :class:`DesignFlow` stage methods the single-call path uses —
individually timed, with structured per-stage failure reports so one broken
scenario never takes a batch down.

Workload-catalog integration lives in :func:`workload_flow_jobs`, which
expands registered workloads (optionally their deterministic parameter
sweeps and a reconfiguration-time sweep) into a flat job list.
"""

from __future__ import annotations

import enum
import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

from ..arch.board import RtrSystem
from ..errors import ReproError, SynthesisError
from ..partition.spec import PartitionProblem
from ..runtime.engine import EngineConfig, PartitionEngine
from ..runtime.jobs import JobReport, ResultSource
from ..taskgraph.graph import TaskGraph
from .flow import DesignFlow, FlowOptions
from .rtr_design import RtrDesign


class FlowStage(str, enum.Enum):
    """The stages a flow job passes through, in order."""

    ESTIMATE = "estimate"
    PARTITION = "partition"
    MEMORY_MAP = "memory-map"
    FISSION = "fission"
    TIMING = "timing"
    RTL = "rtl"
    ASSEMBLE = "assemble"


@dataclass
class FlowJob:
    """One unit of flow work: a task graph, a target system and options."""

    graph: TaskGraph
    system: RtrSystem
    options: FlowOptions = field(default_factory=FlowOptions)
    tag: str = ""
    workload: str = ""

    @property
    def name(self) -> str:
        """Display name (tag, falling back to the graph name)."""
        return self.tag or self.graph.name


@dataclass
class FlowReport:
    """Everything one flow job produced: the design or a structured failure."""

    job: FlowJob
    design: Optional[RtrDesign] = None
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    partition_source: str = ""
    failed_stage: str = ""
    error: str = ""
    error_kind: str = ""
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether the job produced a finished design."""
        return self.design is not None

    @property
    def cached_partition(self) -> bool:
        """Whether the partition stage was served without running a solver."""
        return self.partition_source not in ("", ResultSource.SOLVE.value)

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular/JSON/CSV presentation."""
        row: Dict[str, object] = {
            "tag": self.job.name,
            "workload": self.job.workload,
            "status": "ok" if self.ok else f"failed:{self.failed_stage or 'unknown'}",
            "partition_source": self.partition_source,
            "cached_partition": self.cached_partition,
            "partitions": self.design.partition_count if self.ok else 0,
            "k": self.design.computations_per_run if self.ok else 0,
            "block_delay_ns": self.design.block_delay * 1e9 if self.ok else 0.0,
            "total_latency_s": (
                self.design.partitioning.total_latency if self.ok else 0.0
            ),
            "wall_time_s": self.wall_time,
            "error": self.error,
        }
        return row


@dataclass
class FlowBatchReport:
    """Everything one :meth:`FlowEngine.run_batch` call produced."""

    reports: List[FlowReport]
    wall_time: float
    workers_used: int

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __getitem__(self, index: int) -> FlowReport:
        return self.reports[index]

    @property
    def ok(self) -> bool:
        """Whether every job produced a finished design."""
        return all(report.ok for report in self.reports)

    def failures(self) -> List[FlowReport]:
        """Jobs that did not finish."""
        return [report for report in self.reports if not report.ok]

    def designs(self) -> List[Optional[RtrDesign]]:
        """Per-job designs in submission order (``None`` for failures)."""
        return [report.design for report in self.reports]

    def rows(self) -> List[Dict[str, object]]:
        """Per-job rows for tabular/JSON/CSV output."""
        return [report.row() for report in self.reports]

    def describe(self, failures_only: bool = False) -> str:
        """One-line human readable summary.

        With *failures_only* the summary is compact and failure-focused:
        one ``tag [stage] error`` clause per failed job (or "all ok"), for
        logs and exploration output where the happy path is noise.
        """
        if failures_only:
            failures = self.failures()
            if not failures:
                return f"flow batch of {len(self.reports)} jobs: all ok"
            details = "; ".join(
                f"{report.job.name} [{report.failed_stage or 'unknown'}] "
                f"{report.error or 'no detail'}"
                for report in failures
            )
            return (
                f"flow batch of {len(self.reports)} jobs: "
                f"{len(failures)} failed — {details}"
            )
        cached = sum(1 for report in self.reports if report.cached_partition)
        status = "all ok" if self.ok else f"{len(self.failures())} failed"
        return (
            f"flow batch of {len(self.reports)} jobs in {self.wall_time:.2f} s "
            f"({self.workers_used} worker(s); {cached} cached partitionings; {status})"
        )


class FlowEngine:
    """Batched, cached, parallel end-to-end design flows.

    The engine layers on a :class:`~repro.runtime.engine.PartitionEngine`:
    the temporal-partitioning stage — by far the most expensive — is
    submitted for the whole batch at once, so identical (graph, system,
    solver) jobs dedup, repeats hit the LRU/disk caches, and misses fan out
    across the partition engine's worker pool.  Every other stage runs
    in-process through :class:`DesignFlow`'s stage methods.
    """

    def __init__(
        self,
        engine: Optional[PartitionEngine] = None,
        config: Optional[EngineConfig] = None,
        **overrides,
    ) -> None:
        if engine is not None and (config is not None or overrides):
            raise SynthesisError(
                "pass either a PartitionEngine or an EngineConfig/overrides, not both"
            )
        if engine is None:
            engine = PartitionEngine(config or EngineConfig(**overrides))
        self.engine = engine

    @property
    def stats(self):
        """Cumulative partition-engine statistics (jobs, caches, workers)."""
        return self.engine.stats

    # ------------------------------------------------------------------
    # Batch execution
    # ------------------------------------------------------------------

    def run_batch(self, jobs: Sequence[FlowJob]) -> FlowBatchReport:
        """Run a whole batch of flow jobs; the report preserves order."""
        start = time.perf_counter()
        reports = [FlowReport(job=job) for job in jobs]

        # Stage 1: estimation, in-process (cheap next to the ILP solve).
        # Estimation attaches costs to the graph, so an unestimated graph is
        # copied first: one graph shared by jobs targeting different systems
        # must not inherit the first job's costs (or mutate the caller's).
        estimated: Dict[int, TaskGraph] = {}
        for index, job in enumerate(jobs):
            graph = self._run_stage(
                reports[index],
                FlowStage.ESTIMATE,
                lambda job=job: DesignFlow(job.system, job.options).estimate(
                    job.graph if job.graph.all_estimated() else job.graph.copy()
                ),
            )
            if graph is not None:
                estimated[index] = graph

        # Stage 2: temporal partitioning, one engine batch for all survivors
        # (dedup + caches + worker pool live inside the partition engine).
        partition_reports = self._partition_batch(jobs, reports, estimated)

        # Stage 3: the remaining stages, per job, individually timed.
        for index, partition_report in partition_reports.items():
            report = reports[index]
            report.partition_source = partition_report.source.value
            report.stage_seconds[FlowStage.PARTITION.value] = (
                partition_report.wall_time
            )
            if not partition_report.ok:
                report.failed_stage = FlowStage.PARTITION.value
                report.error = partition_report.outcome.error
                report.error_kind = partition_report.outcome.error_kind
                continue
            self._finish_job(report, estimated[index], partition_report)

        for report in reports:
            report.wall_time = sum(report.stage_seconds.values())

        batch = FlowBatchReport(
            reports=reports,
            wall_time=time.perf_counter() - start,
            workers_used=self.engine.config.workers,
        )
        return batch

    def run(self, job: FlowJob) -> RtrDesign:
        """Run one flow job and return the design (raising on failure)."""
        report = self.run_batch([job])[0]
        if report.design is None:
            raise SynthesisError(
                f"flow job {report.job.name!r} failed at stage "
                f"{report.failed_stage or 'unknown'}: {report.error or 'no detail'}"
            )
        return report.design

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _partition_batch(
        self,
        jobs: Sequence[FlowJob],
        reports: List[FlowReport],
        estimated: Dict[int, TaskGraph],
    ) -> Dict[int, JobReport]:
        """Submit every estimable job's partition problem as one batch."""
        engine_jobs = []
        indices: List[int] = []
        for index in sorted(estimated):
            job = jobs[index]
            try:
                problem = PartitionProblem.from_system(estimated[index], job.system)
            except ReproError as error:
                report = reports[index]
                report.failed_stage = FlowStage.PARTITION.value
                report.error = str(error)
                report.error_kind = type(error).__name__
                continue
            engine_jobs.append(
                self.engine.make_job(
                    problem,
                    tag=job.name,
                    partitioner=job.options.partitioner,
                    backend=job.options.ilp_backend,
                )
            )
            indices.append(index)
        if not engine_jobs:
            return {}
        batch = self.engine.solve_batch(engine_jobs)
        return dict(zip(indices, batch))

    def _finish_job(
        self, report: FlowReport, graph: TaskGraph, partition_report: JobReport
    ) -> None:
        """Run memory map, fission, timing, RTL and assembly for one job."""
        job = report.job
        flow = DesignFlow(job.system, job.options)
        partitioning = self._run_stage(
            report, FlowStage.PARTITION, partition_report.partitioning, accumulate=True
        )
        if partitioning is None:
            return
        memory_map = self._run_stage(
            report, FlowStage.MEMORY_MAP, lambda: flow.map_memory(partitioning)
        )
        if memory_map is None:
            return
        fission = self._run_stage(
            report, FlowStage.FISSION, lambda: flow.analyse(partitioning, memory_map)
        )
        if fission is None:
            return
        timing = self._run_stage(
            report,
            FlowStage.TIMING,
            lambda: flow.timing(partitioning, fission, memory_map),
        )
        if timing is None:
            return
        configurations: Optional[List] = []
        if job.options.generate_rtl:
            configurations = self._run_stage(
                report,
                FlowStage.RTL,
                lambda: flow.generate_rtl(graph, partitioning, fission),
            )
            if configurations is None:
                return
        design = self._run_stage(
            report,
            FlowStage.ASSEMBLE,
            lambda: flow.assemble(
                graph,
                partitioning,
                name=f"{job.name}-rtr",
                memory_map=memory_map,
                fission=fission,
                timing=timing,
                configurations=configurations,
            ),
        )
        report.design = design

    def _run_stage(self, report, stage, fn, accumulate: bool = False):
        """Run one stage, timing it; ``None`` plus a structured failure on error."""
        start = time.perf_counter()
        try:
            return fn()
        except ReproError as error:
            report.failed_stage = stage.value
            report.error = str(error)
            report.error_kind = type(error).__name__
            return None
        finally:
            elapsed = time.perf_counter() - start
            key = stage.value
            if accumulate:
                report.stage_seconds[key] = report.stage_seconds.get(key, 0.0) + elapsed
            else:
                report.stage_seconds[key] = elapsed


# ---------------------------------------------------------------------------
# Workload-catalog integration
# ---------------------------------------------------------------------------

def workload_flow_jobs(
    names: Optional[Sequence[str]] = None,
    ct_values: Optional[Sequence[float]] = None,
    system: Optional[RtrSystem] = None,
    variants: bool = False,
    partitioner: Optional[str] = None,
) -> List[FlowJob]:
    """Expand registered workloads into a flat :class:`FlowJob` list.

    Parameters
    ----------
    names:
        Workload names to expand (default: every registered workload).
    ct_values:
        Optional reconfiguration times (seconds); each workload/variant is
        swept across them (default: the workload system's own ``CT``).
    system:
        Optional target system overriding every workload's default.
    variants:
        Expand each workload's deterministic parameter sweep instead of
        just its default parameterisation.
    partitioner:
        Optional partitioner-name override applied to every job's options.
    """
    # Imported lazily: the workload catalog itself imports FlowOptions from
    # this package, so a module-level import would be circular.
    from ..workloads import WorkloadVariant, get_workload, workload_names

    jobs: List[FlowJob] = []
    for name in names if names is not None else workload_names():
        workload = get_workload(name)
        expansion = (
            workload.variants()
            if variants
            else [WorkloadVariant(workload.name, dict(workload.default_params))]
        )
        for variant in expansion:
            graph = workload.build_graph(**variant.params)
            base_system = system or workload.default_system()
            options = workload.flow_options()
            if partitioner is not None:
                options = replace(options, partitioner=partitioner)
            cts = list(ct_values) if ct_values else [base_system.reconfiguration_time]
            for ct in cts:
                target = (
                    base_system
                    if ct == base_system.reconfiguration_time
                    else base_system.with_reconfiguration_time(ct)
                )
                tag = variant.name
                if len(cts) > 1:
                    tag = f"{tag}@ct={ct * 1e3:g}ms"
                jobs.append(
                    FlowJob(
                        graph=graph,
                        system=target,
                        options=options,
                        tag=tag,
                        workload=workload.name,
                    )
                )
    return jobs
