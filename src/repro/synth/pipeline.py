"""The cached, incrementally re-evaluable stage pipeline.

:class:`StagePipeline` executes the declarative stage transforms of
:mod:`repro.synth.stages` against a content-addressed
:class:`~repro.runtime.artifacts.ArtifactStore`:

* the **estimate** stage is cached in memory and on disk (its artifact —
  every task's cost — is plain JSON), so an explore neighbour that shares
  the graph and device pays zero HLS estimations;
* the **partition** stage keeps its cache in the
  :class:`~repro.runtime.engine.PartitionEngine` (dedup, LRU + disk,
  process-pool fan-out) — the pipeline contributes the CT-normalisation
  that collapses the reconfiguration-time axis onto one solve;
* the **memory-map / fission / timing** stages are cached in memory; their
  artifacts are cheap to compute but free to share, and sharing keeps a
  warm neighbourhood evaluation down to rehydration plus objectives.

Every lookup records a per-stage source (``memory-cache`` / ``disk-cache``
/ ``computed``) that flows into :class:`~repro.synth.flow_engine.FlowReport`
rows, run-store records and CLI summaries.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

from ..arch.board import RtrSystem
from ..runtime.artifacts import ArtifactStore
from ..taskgraph.graph import TaskGraph
from . import stages
from .stages import STAGE_VERSIONS, StagePlan

#: Source label for a stage that actually ran its transform.
COMPUTED = "computed"


class StagePipeline:
    """Runs stage transforms through the content-addressed artifact store."""

    def __init__(
        self,
        store: Optional[ArtifactStore] = None,
        cache_dir: Optional[Union[str, object]] = None,
    ) -> None:
        if store is not None and cache_dir is not None:
            raise ValueError("pass either an ArtifactStore or a cache_dir, not both")
        self.store = store if store is not None else ArtifactStore(cache_dir)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def stats_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-stage counter dicts (hits/misses/stores/runs), by stage name."""
        return self.store.snapshot()

    def describe_stats(self) -> str:
        """One-line ``stage hits/lookups`` summary for logs and CLI stderr."""
        parts = []
        for stage in stages.PIPELINE_STAGES:
            if stage == stages.PARTITION:
                continue  # the partition engine reports its own cache stats
            stats = self.store.stats_for(stage)
            if stats.lookups == 0:
                continue
            parts.append(f"{stage} {stats.hits}/{stats.lookups}")
        if not parts:
            return "stage cache: no lookups"
        return "stage cache hits: " + ", ".join(parts)

    # ------------------------------------------------------------------
    # Planning
    # ------------------------------------------------------------------

    def plan(
        self,
        graph: TaskGraph,
        system: RtrSystem,
        options,
        graph_digest: Optional[str] = None,
    ) -> StagePlan:
        """The DAG of stage keys for one flow job.

        *graph_digest* lets batch drivers that hashed the graph once (per
        batch, while the graph is provably unmutated) skip re-hashing it
        for every job sharing the object.
        """
        return stages.build_stage_plan(
            graph, system, options, graph_digest=graph_digest
        )

    # ------------------------------------------------------------------
    # Stage execution
    # ------------------------------------------------------------------

    def estimate(
        self, plan: StagePlan, graph: TaskGraph, system: RtrSystem, options
    ) -> Tuple[TaskGraph, str]:
        """Run (or rehydrate) the estimation stage; returns ``(graph, source)``.

        The cached artifact is the cost table, not the graph object, so one
        artifact rehydrates onto any content-equal graph instance.
        """
        key = plan.key(stages.ESTIMATE)
        stats = self.store.stats_for(stages.ESTIMATE)
        payload, source = self.store.get(
            key.stage, key.version, key.digest, decode=lambda value: value
        )
        if payload is not None:
            if graph.all_estimated():
                return graph, source
            return stages.apply_estimate_artifact(graph, payload), source
        stats.runs += 1
        estimated = stages.run_estimate(graph, system, options)
        self.store.put(
            key.stage,
            key.version,
            key.digest,
            stages.estimate_artifact(estimated),
            encode=lambda value: value,
        )
        return estimated, COMPUTED

    def memory_map(self, plan: StagePlan, partitioning, options):
        """Run (or share) the memory-map stage; returns ``(map, source)``."""
        return self._cached_stage(
            plan,
            stages.MEMORY_MAP,
            lambda: stages.run_memory_map(partitioning, options),
        )

    def fission(self, plan: StagePlan, partitioning, memory_map, system, options):
        """Run (or share) the fission stage; returns ``(analysis, source)``."""
        return self._cached_stage(
            plan,
            stages.FISSION,
            lambda: stages.run_fission(partitioning, memory_map, system, options),
        )

    def timing(self, plan: StagePlan, partitioning, fission, memory_map):
        """Run (or share) the timing stage; returns ``(spec, source)``."""
        return self._cached_stage(
            plan,
            stages.TIMING,
            lambda: stages.run_timing(partitioning, fission, memory_map),
        )

    def _cached_stage(self, plan: StagePlan, stage: str, compute):
        """Memory-cached execution of one downstream stage transform.

        The artifacts (memory maps, fission analyses, timing specs) are
        treated as immutable by every consumer, so one object is safely
        shared across the jobs whose stage keys coincide.
        """
        key = plan.key(stage)
        value, source = self.store.get(key.stage, key.version, key.digest)
        if value is not None:
            return value, source
        stats = self.store.stats_for(stage)
        stats.runs += 1
        value = compute()
        self.store.put(key.stage, key.version, key.digest, value)
        return value, COMPUTED


__all__ = ["COMPUTED", "STAGE_VERSIONS", "StagePipeline", "StagePlan"]
