"""Execution simulation of the static (configure-once) design.

For small workloads every board invocation is simulated individually; for the
multi-hundred-thousand-block workloads of Tables 1-2 the identical invocations
beyond a configurable detail threshold are folded into aggregate events so the
simulation stays fast while the totals remain exact.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..arch.board import RtrSystem
from ..errors import SimulationError
from ..fission.strategies import StaticTimingSpec
from ..units import ceil_div
from .engine import SimulationEngine
from .events import EventKind


@dataclass
class StaticSimulationResult:
    """Outcome of simulating the static design on a workload."""

    total_computations: int
    invocations: int
    total_time: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    event_count: int = 0

    @property
    def computation_time(self) -> float:
        """Total datapath execution time."""
        return self.breakdown.get(EventKind.EXECUTE.value, 0.0)

    @property
    def transfer_time(self) -> float:
        """Total host<->board transfer time."""
        return self.breakdown.get(EventKind.TRANSFER_IN.value, 0.0) + self.breakdown.get(
            EventKind.TRANSFER_OUT.value, 0.0
        )


class StaticExecutionSimulator:
    """Simulates the static baseline design block by block."""

    def __init__(self, system: RtrSystem, detailed_invocation_limit: int = 2000) -> None:
        if detailed_invocation_limit < 0:
            raise SimulationError("detailed_invocation_limit must be non-negative")
        self.system = system
        self.detailed_invocation_limit = detailed_invocation_limit

    def simulate(
        self, spec: StaticTimingSpec, total_computations: int
    ) -> StaticSimulationResult:
        """Simulate *total_computations* loop iterations on the static design."""
        if total_computations < 0:
            raise SimulationError("total_computations must be non-negative")
        engine = SimulationEngine(memory_capacity_words=None)
        invocations = (
            ceil_div(total_computations, spec.blocks_per_invocation)
            if total_computations
            else 0
        )
        if total_computations:
            for _ in range(spec.configurations):
                engine.advance(
                    EventKind.CONFIGURE,
                    self.system.reconfiguration_time,
                    label="initial configuration",
                )
            detailed = min(invocations, self.detailed_invocation_limit)
            remaining_invocations = invocations - detailed
            blocks_done = 0
            for invocation in range(detailed):
                blocks = min(
                    spec.blocks_per_invocation, total_computations - blocks_done
                )
                blocks_done += blocks
                self._simulate_invocation(engine, spec, invocation, blocks)
            if remaining_invocations:
                remaining_blocks = total_computations - blocks_done
                self._simulate_aggregate(
                    engine, spec, remaining_invocations, remaining_blocks
                )
        return StaticSimulationResult(
            total_computations=total_computations,
            invocations=invocations,
            total_time=engine.current_time,
            breakdown=engine.breakdown(),
            event_count=engine.event_count(),
        )

    # ------------------------------------------------------------------

    def _simulate_invocation(
        self, engine: SimulationEngine, spec: StaticTimingSpec, invocation: int, blocks: int
    ) -> None:
        system = self.system
        words_in = blocks * spec.env_input_words
        engine.advance(
            EventKind.TRANSFER_IN,
            words_in * system.word_transfer_time,
            run=invocation,
            words=words_in,
            label="write input",
        )
        engine.advance(
            EventKind.HANDSHAKE,
            system.handshake_time,
            run=invocation,
            label="start/finish handshake",
        )
        engine.advance(
            EventKind.EXECUTE,
            blocks * spec.block_delay,
            run=invocation,
            computations=blocks,
            label="datapath execution",
        )
        words_out = blocks * spec.env_output_words
        engine.advance(
            EventKind.TRANSFER_OUT,
            words_out * system.word_transfer_time,
            run=invocation,
            words=words_out,
            label="read output",
        )
        engine.advance(
            EventKind.HOST_LOOP,
            system.host.loop_iteration_overhead,
            run=invocation,
            label="host loop bookkeeping",
        )

    def _simulate_aggregate(
        self,
        engine: SimulationEngine,
        spec: StaticTimingSpec,
        invocations: int,
        blocks: int,
    ) -> None:
        """Fold *invocations* identical invocations into five aggregate events."""
        system = self.system
        words_in = blocks * spec.env_input_words
        words_out = blocks * spec.env_output_words
        engine.advance(
            EventKind.TRANSFER_IN,
            words_in * system.word_transfer_time,
            words=words_in,
            label=f"write input (x{invocations} invocations)",
        )
        engine.advance(
            EventKind.HANDSHAKE,
            invocations * system.handshake_time,
            label=f"handshakes (x{invocations})",
        )
        engine.advance(
            EventKind.EXECUTE,
            blocks * spec.block_delay,
            computations=blocks,
            label=f"datapath execution (x{invocations} invocations)",
        )
        engine.advance(
            EventKind.TRANSFER_OUT,
            words_out * system.word_transfer_time,
            words=words_out,
            label=f"read output (x{invocations} invocations)",
        )
        engine.advance(
            EventKind.HOST_LOOP,
            invocations * system.host.loop_iteration_overhead,
            label=f"host loop bookkeeping (x{invocations})",
        )
