"""Execution simulation of static and run-time reconfigured designs.

An independent, event-level implementation of the timing semantics described
in Section 2.2 (and modelled analytically in :mod:`repro.fission`): the host
drives configuration loads, data transfers and start/finish handshakes while
the FPGA executes; board-memory occupancy is tracked so inconsistent designs
fail loudly.
"""

from .engine import SimulationEngine
from .events import EventKind, SimulationEvent
from .rtr_simulator import RtrExecutionSimulator, RtrSimulationResult
from .static_simulator import StaticExecutionSimulator, StaticSimulationResult
from .trace import (
    breakdown_table,
    configuration_sequence,
    format_events,
    per_partition_execution_time,
)

__all__ = [
    "EventKind",
    "RtrExecutionSimulator",
    "RtrSimulationResult",
    "SimulationEngine",
    "SimulationEvent",
    "StaticExecutionSimulator",
    "StaticSimulationResult",
    "breakdown_table",
    "configuration_sequence",
    "format_events",
    "per_partition_execution_time",
]
