"""Trace formatting and summarisation helpers for simulation results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence

from ..units import format_time
from .events import EventKind, SimulationEvent


def format_events(events: Iterable[SimulationEvent], limit: int = 50) -> str:
    """Human-readable rendering of (the first *limit*) events."""
    lines: List[str] = []
    for index, event in enumerate(events):
        if index >= limit:
            lines.append(f"... ({index} of more events shown)")
            break
        lines.append(event.describe())
    return "\n".join(lines)


def breakdown_table(breakdowns: Dict[str, Dict[str, float]]) -> str:
    """Side-by-side comparison of several timing breakdowns.

    *breakdowns* maps a label (e.g. ``"static"``, ``"rtr-idh"``) to a
    ``component -> seconds`` dictionary as produced by
    :meth:`SimulationEngine.breakdown` or :meth:`TimingBreakdown.as_dict`.
    """
    if not breakdowns:
        return "(no breakdowns)"
    components: List[str] = []
    for breakdown in breakdowns.values():
        for key in breakdown:
            if key not in components:
                components.append(key)
    labels = list(breakdowns)
    header = ["component"] + labels
    rows: List[Sequence[str]] = [header]
    for component in components:
        row = [component]
        for label in labels:
            value = breakdowns[label].get(component, 0.0)
            row.append(format_time(value) if value else "-")
        rows.append(row)
    widths = [max(len(str(row[col])) for row in rows) for col in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        line = "  ".join(str(cell).ljust(widths[col]) for col, cell in enumerate(row))
        lines.append(line)
        if index == 0:
            lines.append("  ".join("-" * width for width in widths))
    return "\n".join(lines)


def per_partition_execution_time(events: Iterable[SimulationEvent]) -> Dict[int, float]:
    """Datapath time per partition index across a trace."""
    totals: Dict[int, float] = {}
    for event in events:
        if event.kind is EventKind.EXECUTE and event.partition:
            totals[event.partition] = totals.get(event.partition, 0.0) + event.duration
    return totals


def configuration_sequence(events: Iterable[SimulationEvent]) -> List[int]:
    """The order in which configurations were loaded (for FDH/IDH pattern tests)."""
    return [
        event.partition for event in events if event.kind is EventKind.CONFIGURE and event.partition
    ]
