"""Execution simulation of a loop-fissioned RTR design.

The simulator replays the host sequencing loop (FDH or IDH) event by event:
configuration loads, host<->board transfers, start/finish handshakes, and
datapath execution, while tracking board-memory occupancy.  It is an
independent implementation of the same semantics as the analytic models in
:mod:`repro.fission.strategies`; the test suite checks the two agree, and the
benches use whichever is more convenient.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..arch.board import RtrSystem
from ..errors import SimulationError
from ..fission.strategies import RtrTimingSpec, SequencingStrategy
from ..units import ceil_div
from .engine import SimulationEngine
from .events import EventKind


@dataclass
class RtrSimulationResult:
    """Outcome of simulating an RTR design on a workload."""

    strategy: SequencingStrategy
    total_computations: int
    computations_per_run: int
    runs: int
    total_time: float
    breakdown: Dict[str, float] = field(default_factory=dict)
    configuration_loads: int = 0
    peak_memory_words: int = 0
    event_count: int = 0

    @property
    def reconfiguration_time(self) -> float:
        """Total time spent reconfiguring the FPGA."""
        return self.breakdown.get(EventKind.CONFIGURE.value, 0.0)

    @property
    def computation_time(self) -> float:
        """Total datapath execution time."""
        return self.breakdown.get(EventKind.EXECUTE.value, 0.0)

    @property
    def transfer_time(self) -> float:
        """Total host<->board transfer time."""
        return self.breakdown.get(EventKind.TRANSFER_IN.value, 0.0) + self.breakdown.get(
            EventKind.TRANSFER_OUT.value, 0.0
        )


class RtrExecutionSimulator:
    """Simulates FDH / IDH execution of an :class:`RtrTimingSpec`."""

    def __init__(self, system: RtrSystem, check_memory: bool = True) -> None:
        self.system = system
        self.check_memory = check_memory

    # ------------------------------------------------------------------

    def simulate(
        self,
        spec: RtrTimingSpec,
        strategy: SequencingStrategy,
        total_computations: int,
        keep_events: bool = False,
    ) -> RtrSimulationResult:
        """Simulate *total_computations* loop iterations under *strategy*."""
        if total_computations < 0:
            raise SimulationError("total_computations must be non-negative")
        engine = SimulationEngine(
            memory_capacity_words=(
                self.system.memory_capacity_words if self.check_memory else None
            )
        )
        configuration_loads = 0
        runs = (
            ceil_div(total_computations, spec.computations_per_run)
            if total_computations
            else 0
        )
        if total_computations:
            if strategy is SequencingStrategy.FDH:
                configuration_loads = self._simulate_fdh(engine, spec, total_computations, runs)
            elif strategy is SequencingStrategy.IDH:
                configuration_loads = self._simulate_idh(engine, spec, total_computations, runs)
            else:
                raise SimulationError(f"unknown strategy {strategy!r}")
        result = RtrSimulationResult(
            strategy=strategy,
            total_computations=total_computations,
            computations_per_run=spec.computations_per_run,
            runs=runs,
            total_time=engine.current_time,
            breakdown=engine.breakdown(),
            configuration_loads=configuration_loads,
            peak_memory_words=engine.peak_memory_words,
            event_count=engine.event_count(),
        )
        if keep_events:
            result.events = engine.events  # type: ignore[attr-defined]
        return result

    # ------------------------------------------------------------------
    # Strategy-specific inner loops
    # ------------------------------------------------------------------

    def _computations_in_run(self, spec: RtrTimingSpec, run: int, runs: int, total: int) -> int:
        if run < runs - 1:
            return spec.computations_per_run
        return total - spec.computations_per_run * (runs - 1)

    def _simulate_fdh(
        self,
        engine: SimulationEngine,
        spec: RtrTimingSpec,
        total_computations: int,
        runs: int,
    ) -> int:
        system = self.system
        configuration_loads = 0
        env_in_total = sum(spec.partition_env_input_words)
        env_out_total = sum(spec.partition_env_output_words)
        for run in range(runs):
            k_run = self._computations_in_run(spec, run, runs, total_computations)
            # Host loads the whole batch's input data into board memory.
            words_in = k_run * env_in_total
            engine.allocate_memory(words_in, label=f"fdh input run {run}")
            engine.advance(
                EventKind.TRANSFER_IN,
                words_in * system.word_transfer_time,
                run=run,
                words=words_in,
                label="load input block",
            )
            for partition in range(1, spec.partition_count + 1):
                engine.advance(
                    EventKind.CONFIGURE,
                    system.reconfiguration_time,
                    partition=partition,
                    run=run,
                    label="load configuration",
                )
                configuration_loads += 1
                engine.advance(
                    EventKind.HANDSHAKE,
                    system.handshake_time,
                    partition=partition,
                    run=run,
                    label="start/finish handshake",
                )
                # The partition's outputs for the batch appear in board memory.
                produced = k_run * (
                    spec.partition_cross_output_words[partition - 1]
                    + spec.partition_env_output_words[partition - 1]
                )
                engine.allocate_memory(produced, label=f"fdh outputs P{partition} run {run}")
                engine.advance(
                    EventKind.EXECUTE,
                    k_run * spec.partition_delays[partition - 1],
                    partition=partition,
                    run=run,
                    computations=k_run,
                    label="datapath execution",
                )
                # Data consumed by this partition (its environment inputs and the
                # cross-boundary data it read) is dead once it finishes.  The
                # release is clamped to the words actually resident: a spec whose
                # declared cross-input volumes exceed what upstream partitions
                # produced (possible for hand-written or randomly generated
                # specs) must not drive the occupancy negative — for consistent
                # specs, including ones with data crossing several boundaries,
                # the clamp never engages and the lifetime is exact.
                consumed = k_run * (
                    spec.partition_cross_input_words[partition - 1]
                    + spec.partition_env_input_words[partition - 1]
                )
                engine.release_memory(min(consumed, engine.memory_in_use_words))
                engine.advance(
                    EventKind.HOST_LOOP,
                    system.host.loop_iteration_overhead,
                    partition=partition,
                    run=run,
                    label="host loop bookkeeping",
                )
            # Read the batch's final results back and release everything else.
            words_out = k_run * env_out_total
            engine.advance(
                EventKind.TRANSFER_OUT,
                words_out * system.word_transfer_time,
                run=run,
                words=words_out,
                label="read output block",
            )
            engine.release_memory(engine.memory_in_use_words)
        return configuration_loads

    def _simulate_idh(
        self,
        engine: SimulationEngine,
        spec: RtrTimingSpec,
        total_computations: int,
        runs: int,
    ) -> int:
        system = self.system
        configuration_loads = 0
        for partition in range(1, spec.partition_count + 1):
            engine.advance(
                EventKind.CONFIGURE,
                system.reconfiguration_time,
                partition=partition,
                label="load configuration",
            )
            configuration_loads += 1
            input_words_per_iteration = (
                spec.partition_env_input_words[partition - 1]
                + spec.partition_cross_input_words[partition - 1]
            )
            output_words_per_iteration = (
                spec.partition_env_output_words[partition - 1]
                + spec.partition_cross_output_words[partition - 1]
            )
            for run in range(runs):
                k_run = self._computations_in_run(spec, run, runs, total_computations)
                words_in = k_run * input_words_per_iteration
                engine.allocate_memory(words_in, label=f"idh inputs P{partition} run {run}")
                engine.advance(
                    EventKind.TRANSFER_IN,
                    words_in * system.word_transfer_time,
                    partition=partition,
                    run=run,
                    words=words_in,
                    label="load intermediate input block",
                )
                engine.advance(
                    EventKind.HANDSHAKE,
                    system.handshake_time,
                    partition=partition,
                    run=run,
                    label="start/finish handshake",
                )
                words_out = k_run * output_words_per_iteration
                engine.allocate_memory(words_out, label=f"idh outputs P{partition} run {run}")
                engine.advance(
                    EventKind.EXECUTE,
                    k_run * spec.partition_delays[partition - 1],
                    partition=partition,
                    run=run,
                    computations=k_run,
                    label="datapath execution",
                )
                engine.advance(
                    EventKind.TRANSFER_OUT,
                    words_out * system.word_transfer_time,
                    partition=partition,
                    run=run,
                    words=words_out,
                    label="read intermediate output block",
                )
                engine.advance(
                    EventKind.HOST_LOOP,
                    system.host.loop_iteration_overhead,
                    partition=partition,
                    run=run,
                    label="host loop bookkeeping",
                )
                # Intermediate data now lives on the host; the board memory is free.
                engine.release_memory(words_in + words_out)
        return configuration_loads
