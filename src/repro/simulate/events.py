"""Event types recorded by the execution simulator."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..errors import SimulationError


class EventKind(str, Enum):
    """What happened at a point in simulated time."""

    CONFIGURE = "configure"          # load a configuration onto the FPGA
    TRANSFER_IN = "transfer_in"      # host -> board memory word transfer
    TRANSFER_OUT = "transfer_out"    # board memory -> host word transfer
    HANDSHAKE = "handshake"          # start signal / wait for finish
    EXECUTE = "execute"              # datapath execution on the FPGA
    HOST_LOOP = "host_loop"          # host sequencing-loop bookkeeping
    HOST_COMPUTE = "host_compute"    # software stages on the host


@dataclass(frozen=True)
class SimulationEvent:
    """One timed event of a simulation run."""

    kind: EventKind
    start_time: float
    duration: float
    partition: int = 0       # 1-based partition / configuration index, 0 = n/a
    run: int = -1            # host-loop iteration index, -1 = n/a
    words: int = 0           # words moved (transfer events)
    computations: int = 0    # loop iterations covered (execute events)
    label: str = ""

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise SimulationError("event duration must be non-negative")
        if self.start_time < 0:
            raise SimulationError("event start time must be non-negative")

    @property
    def end_time(self) -> float:
        """Simulated time at which the event completes."""
        return self.start_time + self.duration

    def describe(self) -> str:
        """One-line human readable summary."""
        extras = []
        if self.partition:
            extras.append(f"P{self.partition}")
        if self.run >= 0:
            extras.append(f"run {self.run}")
        if self.words:
            extras.append(f"{self.words} words")
        if self.computations:
            extras.append(f"{self.computations} computations")
        detail = ", ".join(extras)
        return (
            f"[{self.start_time * 1e3:10.3f} ms] {self.kind.value:<12} "
            f"{self.duration * 1e3:8.3f} ms  {detail} {self.label}"
        )
