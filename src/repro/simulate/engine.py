"""A minimal sequential-activity simulation engine.

The host in the paper's architecture drives everything sequentially — it
configures the FPGA, moves data, raises the start signal and waits for the
finish signal — so the execution model is a single timeline of activities.
:class:`SimulationEngine` owns that timeline: activities are appended with a
duration, the clock advances, and every activity is recorded as a
:class:`SimulationEvent` for later inspection.

The engine also tracks board-memory occupancy so that a design whose memory
blocks do not actually fit (an inconsistency between the fission analysis and
the memory map) is caught during simulation instead of producing a silently
wrong timing figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from .events import EventKind, SimulationEvent


@dataclass
class SimulationEngine:
    """Sequential activity timeline with memory-occupancy tracking."""

    memory_capacity_words: Optional[int] = None
    current_time: float = 0.0
    events: List[SimulationEvent] = field(default_factory=list)
    memory_in_use_words: int = 0
    peak_memory_words: int = 0
    _time_by_kind: Dict[EventKind, float] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Timeline
    # ------------------------------------------------------------------

    def advance(
        self,
        kind: EventKind,
        duration: float,
        partition: int = 0,
        run: int = -1,
        words: int = 0,
        computations: int = 0,
        label: str = "",
    ) -> SimulationEvent:
        """Append an activity of *duration* seconds and advance the clock."""
        if duration < 0:
            raise SimulationError("cannot advance by a negative duration")
        event = SimulationEvent(
            kind=kind,
            start_time=self.current_time,
            duration=duration,
            partition=partition,
            run=run,
            words=words,
            computations=computations,
            label=label,
        )
        self.events.append(event)
        self.current_time += duration
        self._time_by_kind[kind] = self._time_by_kind.get(kind, 0.0) + duration
        return event

    # ------------------------------------------------------------------
    # Board-memory occupancy
    # ------------------------------------------------------------------

    def allocate_memory(self, words: int, label: str = "") -> None:
        """Mark *words* of board memory as occupied."""
        if words < 0:
            raise SimulationError("cannot allocate a negative word count")
        self.memory_in_use_words += words
        self.peak_memory_words = max(self.peak_memory_words, self.memory_in_use_words)
        if (
            self.memory_capacity_words is not None
            and self.memory_in_use_words > self.memory_capacity_words
        ):
            raise SimulationError(
                f"board memory overflow: {self.memory_in_use_words} words in use "
                f"({label or 'unnamed allocation'}), capacity "
                f"{self.memory_capacity_words}"
            )

    def release_memory(self, words: int) -> None:
        """Release *words* of previously allocated board memory."""
        if words < 0:
            raise SimulationError("cannot release a negative word count")
        if words > self.memory_in_use_words:
            raise SimulationError(
                f"releasing {words} words but only {self.memory_in_use_words} are in use"
            )
        self.memory_in_use_words -= words

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def time_spent_on(self, kind: EventKind) -> float:
        """Total simulated time spent on activities of *kind*."""
        return self._time_by_kind.get(kind, 0.0)

    def breakdown(self) -> Dict[str, float]:
        """Total time per event kind plus the overall total."""
        result = {kind.value: self.time_spent_on(kind) for kind in EventKind}
        result["total"] = self.current_time
        return result

    def event_count(self, kind: Optional[EventKind] = None) -> int:
        """Number of recorded events (optionally of one kind)."""
        if kind is None:
            return len(self.events)
        return sum(1 for event in self.events if event.kind is kind)
