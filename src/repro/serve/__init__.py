"""The design-flow service daemon: ``repro serve`` and its client.

Turns the one-shot CLI flow into a long-lived service: an asyncio HTTP/JSON
API (:mod:`~repro.serve.server`) fronting a bounded, priority-aware,
deduplicating job queue (:mod:`~repro.serve.queue`) drained by N
flow-engine workers (:mod:`~repro.serve.workers`) over the shared
content-addressed caches — so N identical submissions, from however many
clients, cost exactly one solve.  The wire schema lives in
:mod:`~repro.serve.protocol`; :mod:`~repro.serve.client` is the blocking
client the CLI, tests and load generator use.
"""

from .client import FlowServiceClient, ServeClientError
from .protocol import (
    PROTOCOL_VERSION,
    JobSpec,
    JobState,
    ProtocolError,
    deterministic_result,
    encode_result,
)
from .queue import JobQueue, QueueClosedError, QueueFullError, SolveEntry
from .server import (
    FlowServer,
    ScheduleState,
    ServeConfig,
    ServerHandle,
    start_in_background,
)
from .workers import WorkerPool, build_flow_job

__all__ = [
    "PROTOCOL_VERSION",
    "FlowServer",
    "FlowServiceClient",
    "JobQueue",
    "JobSpec",
    "JobState",
    "ProtocolError",
    "QueueClosedError",
    "QueueFullError",
    "ScheduleState",
    "ServeClientError",
    "ServeConfig",
    "ServerHandle",
    "SolveEntry",
    "WorkerPool",
    "build_flow_job",
    "deterministic_result",
    "encode_result",
    "start_in_background",
]
