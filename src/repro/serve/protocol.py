"""Versioned request/response schemas for the design-flow service.

The wire format is plain JSON over HTTP/1.1.  Every payload the daemon
accepts or emits is described here, so the server, the blocking client, the
CLI and the load generator share one schema:

* :class:`JobSpec` — one flow-job submission (workload, target system,
  reconfiguration time, partitioner, seed) plus scheduling hints (priority,
  tag).  Its :meth:`~JobSpec.request_key` is the canonical fingerprint the
  queue dedups on: two submissions with the same key describe the same
  design problem and must cost one solve, however many clients send them.
  Scheduling hints are deliberately excluded from the key.
* :class:`JobState` — the job lifecycle (``queued`` → ``running`` →
  ``done``/``failed``/``cancelled``).
* :func:`deterministic_result` / :func:`encode_result` — the byte-stable
  subset of a finished :class:`~repro.synth.flow_engine.FlowReport` row
  (design metrics only, no wall-times or cache provenance), canonically
  serialised so identical seeded loads produce identical result bytes.

Endpoints (all under :data:`API_PREFIX`):

========  ==========================  =======================================
method    path                        meaning
========  ==========================  =======================================
GET       ``/v1/health``              liveness + protocol/server version
GET       ``/v1/stats``               queue/engine/stage counters
POST      ``/v1/jobs``                submit one :class:`JobSpec` (202)
POST      ``/v1/batch``               submit many specs, per-item acks
GET       ``/v1/jobs/<id>``           job status view
GET       ``/v1/jobs/<id>/result``    deterministic result payload
GET       ``/v1/jobs/<id>/wait``      long-poll until terminal (or timeout)
GET       ``/v1/jobs/<id>/stream``    chunked stream of status transitions
POST      ``/v1/jobs/<id>/cancel``    cancel a still-queued job
POST      ``/v1/admin/shutdown``      graceful drain + exit (202)
========  ==========================  =======================================

When a daemon is started with an exploration schedule (``repro schedule``),
the work-stealing shard scheduler of
:mod:`~repro.explore.scheduler` adds (404 ``no-schedule`` otherwise):

========  ============================  =====================================
method    path                          meaning
========  ============================  =====================================
GET       ``/v1/scheduler/plan``        the published :class:`ExplorationPlan`
GET       ``/v1/scheduler/status``      lease/range counters
GET       ``/v1/scheduler/snapshot``    full scheduler state (JSON snapshot)
POST      ``/v1/scheduler/lease``       lease the next pending range
POST      ``/v1/scheduler/steal``       steal a straggler's range
POST      ``/v1/scheduler/renew``       extend a live lease
POST      ``/v1/scheduler/complete``    return one range's shard store
========  ============================  =====================================

Error responses are ``{"error": {"code": ..., "message": ..., ...}}`` with
the HTTP status carrying the class: 400 malformed request, 404 unknown
workload/job/route, 405 wrong method, 409 result not ready, 413 oversized
body, 429 queue full (with a ``Retry-After`` header), 503 draining.
"""

from __future__ import annotations

import enum
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ReproError
from ..partition.hierarchy import multilevel_inner
from ..runtime.canonical import canonical_fingerprint
from ..runtime.jobs import PARTITIONERS

#: Version of the request/response schema; part of every request key, so a
#: schema change never aliases onto results produced under the old one.
PROTOCOL_VERSION = 1

#: URL prefix every endpoint lives under.
API_PREFIX = "/v1"

#: Upper bound on accepted request bodies (a submission is a few hundred
#: bytes; anything near this is a client bug, not a bigger job).
MAX_BODY_BYTES = 1 << 20

#: Upper bound for ``/v1/scheduler/`` bodies: a ``complete`` streams a whole
#: shard store (one JSON line per evaluated point) back to the daemon.
SCHEDULER_MAX_BODY_BYTES = 32 << 20


class ProtocolError(ReproError):
    """A request the server understands well enough to reject precisely."""

    def __init__(self, message: str, status: int = 400, code: str = "bad-request"):
        super().__init__(message)
        self.status = status
        self.code = code


class JobState(str, enum.Enum):
    """Lifecycle of one submitted job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        """Whether the state can no longer change."""
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: JobSpec fields a submission may carry; anything else is a 400.
_SPEC_FIELDS = (
    "workload", "params", "system", "ct_ms", "partitioner", "seed",
    "priority", "tag",
)

#: The fields of a :meth:`FlowReport.row` that are pure functions of the
#: request key — no wall-times, no cache provenance — and therefore must be
#: byte-identical across runs, machines and cache temperatures.
DETERMINISTIC_RESULT_FIELDS = (
    "workload", "status", "partitions", "k", "block_delay_ns",
    "total_latency_s", "error",
)


@dataclass(frozen=True)
class JobSpec:
    """One flow-job submission.

    ``priority`` (higher runs earlier) and ``tag`` are scheduling/display
    hints: they do not change the produced design, so they are excluded
    from :meth:`request_key` and two submissions differing only in them
    still coalesce onto one solve.
    """

    workload: str
    params: Dict[str, object] = field(default_factory=dict)
    system: Optional[str] = None
    ct_ms: Optional[float] = None
    partitioner: Optional[str] = None
    seed: int = 0
    priority: int = 0
    tag: str = ""

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ProtocolError("'workload' must be a non-empty string")
        if not isinstance(self.params, dict) or not all(
            isinstance(key, str) for key in self.params
        ):
            raise ProtocolError("'params' must be an object with string keys")
        if self.system is not None and (
            not isinstance(self.system, str) or not self.system
        ):
            raise ProtocolError("'system' must be a non-empty string or null")
        if self.ct_ms is not None:
            if not isinstance(self.ct_ms, (int, float)) or isinstance(self.ct_ms, bool):
                raise ProtocolError("'ct_ms' must be a number or null")
            if self.ct_ms <= 0:
                raise ProtocolError("'ct_ms' must be positive")
        if self.partitioner is not None and (
            self.partitioner not in PARTITIONERS
            and multilevel_inner(self.partitioner) is None
        ):
            raise ProtocolError(
                f"unknown partitioner {self.partitioner!r}; "
                f"choose from {PARTITIONERS}"
            )
        if not isinstance(self.seed, int) or isinstance(self.seed, bool):
            raise ProtocolError("'seed' must be an integer")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise ProtocolError("'priority' must be an integer")
        if not isinstance(self.tag, str):
            raise ProtocolError("'tag' must be a string")

    @classmethod
    def from_json_dict(cls, data: object) -> "JobSpec":
        """Validate one submission object (strict: unknown fields are a 400)."""
        if not isinstance(data, dict):
            raise ProtocolError("job submission must be a JSON object")
        unknown = sorted(set(data) - set(_SPEC_FIELDS))
        if unknown:
            raise ProtocolError(f"unknown job field(s): {', '.join(unknown)}")
        if "workload" not in data:
            raise ProtocolError("job submission is missing 'workload'")
        return cls(**{key: data[key] for key in _SPEC_FIELDS if key in data})

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form, round-trippable through :meth:`from_json_dict`."""
        return {
            "workload": self.workload,
            "params": dict(self.params),
            "system": self.system,
            "ct_ms": self.ct_ms,
            "partitioner": self.partitioner,
            "seed": self.seed,
            "priority": self.priority,
            "tag": self.tag,
        }

    def request_key(self) -> str:
        """Canonical fingerprint of the *design problem* this spec names.

        Everything that changes the produced design participates; the
        scheduling hints (``priority``, ``tag``) do not.
        """
        return canonical_fingerprint({
            "protocol": PROTOCOL_VERSION,
            "workload": self.workload,
            "params": self.params,
            "system": self.system,
            "ct_ms": self.ct_ms,
            "partitioner": self.partitioner,
            "seed": self.seed,
        })

    @property
    def name(self) -> str:
        """Display name (tag, falling back to the workload)."""
        return self.tag or self.workload


def deterministic_result(row: Dict[str, object]) -> Dict[str, object]:
    """The byte-stable subset of one flow-report row.

    Wall-times, cache provenance (``stage_sources``/``partition_source``)
    and the submission tag vary run to run; the design metrics do not.
    """
    return {key: row.get(key) for key in DETERMINISTIC_RESULT_FIELDS}


def encode_result(row: Dict[str, object]) -> str:
    """Canonical JSON encoding of :func:`deterministic_result`.

    Sorted keys and tight separators: two runs that produced the same
    design produce the same bytes, which is what the load generator's
    byte-identity check compares.
    """
    return json.dumps(
        deterministic_result(row), sort_keys=True, separators=(",", ":")
    )


def error_body(code: str, message: str, **extra: object) -> Dict[str, object]:
    """The standard error envelope."""
    payload: Dict[str, object] = {"code": code, "message": message}
    payload.update(extra)
    return {"error": payload}


def parse_json_body(body: bytes, limit: int = MAX_BODY_BYTES) -> object:
    """Decode a request body, mapping bad bytes/JSON onto a 400.

    *limit* defaults to the ordinary submission bound; scheduler endpoints
    pass :data:`SCHEDULER_MAX_BODY_BYTES` because a range completion
    carries a whole shard store.
    """
    if len(body) > limit:
        raise ProtocolError(
            f"request body exceeds {limit} bytes",
            status=413, code="body-too-large",
        )
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError(
            f"request body is not valid JSON: {error}", code="bad-json"
        ) from error


def submissions_from_body(payload: object) -> List[JobSpec]:
    """Parse a ``/v1/batch`` body (``{"jobs": [spec, ...]}``)."""
    if not isinstance(payload, dict) or "jobs" not in payload:
        raise ProtocolError("batch submission must be {'jobs': [...]}")
    jobs = payload["jobs"]
    if not isinstance(jobs, list) or not jobs:
        raise ProtocolError("'jobs' must be a non-empty list")
    return [JobSpec.from_json_dict(item) for item in jobs]
