"""The daemon's bounded, priority-aware, deduplicating job queue.

One :class:`SolveEntry` exists per *unique request key* (the canonical
fingerprint from :meth:`~repro.serve.protocol.JobSpec.request_key`); every
submission gets its own job id, but ids sharing a key attach to one entry:

* a key whose entry is still **queued or running** coalesces — the new id
  rides the in-flight solve (``coalesced-inflight``);
* a key whose entry already **finished successfully** is served straight
  from the completed entry (``coalesced-cached``) — the server-side mirror
  of the engine's dedup-by-cache;
* failed and cancelled entries are *not* reused (a timeout or crash is not
  a property of the problem), matching the result-cache policy.

The queue is bounded by the number of *queued entries* (coalescing is free:
it adds no work, so it never counts against the bound).  A full queue
raises :class:`QueueFullError` carrying a ``retry_after_s`` hint derived
from the observed solve rate, which the server turns into a 429 +
``Retry-After``.  Higher ``priority`` values run earlier; ties run in
submission order.

Everything here runs on one asyncio event loop — no locks, just a
``Condition`` waking workers and an ``Event``/``Condition`` pair per entry
waking long-polls and streams.
"""

from __future__ import annotations

import asyncio
import heapq
import itertools
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..errors import ReproError
from .protocol import JobSpec, JobState

#: Fallback retry hint before any job has completed.
DEFAULT_RETRY_AFTER_S = 0.5


class QueueFullError(ReproError):
    """The queue is at capacity; retry after ``retry_after_s`` seconds."""

    def __init__(self, capacity: int, retry_after_s: float):
        super().__init__(
            f"job queue is full ({capacity} queued entries); "
            f"retry in {retry_after_s:.2f} s"
        )
        self.capacity = capacity
        self.retry_after_s = retry_after_s


class QueueClosedError(ReproError):
    """The queue is closed and drained; workers should exit."""


@dataclass
class SolveEntry:
    """One unique design problem moving through the daemon."""

    key: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    job_ids: List[str] = field(default_factory=list)
    #: The full FlowReport row once the flow ran (``None`` until then).
    result_row: Optional[Dict[str, object]] = None
    failed_stage: str = ""
    error: str = ""
    error_kind: str = ""
    submitted_at: float = 0.0
    started_at: float = 0.0
    finished_at: float = 0.0
    #: Set on entering a terminal state (long-polls wait on this).
    done: asyncio.Event = field(default_factory=asyncio.Event)
    #: Notified on *every* state change (streams wait on this).
    changed: asyncio.Condition = field(default_factory=asyncio.Condition)

    @property
    def ok(self) -> bool:
        """Whether the entry finished with a usable design."""
        return self.state is JobState.DONE

    def view(self, job_id: str) -> Dict[str, object]:
        """The status payload one attached job id sees."""
        payload: Dict[str, object] = {
            "job_id": job_id,
            "key": self.key,
            "state": self.state.value,
            "workload": self.spec.workload,
            "tag": self.spec.tag,
            "priority": self.spec.priority,
            "attached_jobs": len(self.job_ids),
        }
        if self.state is JobState.FAILED:
            payload["failed_stage"] = self.failed_stage
            payload["error"] = self.error
            payload["error_kind"] = self.error_kind
        return payload

    async def set_state(self, state: JobState) -> None:
        """Transition, waking streams (and long-polls on terminal states)."""
        self.state = state
        if state.terminal:
            self.done.set()
        async with self.changed:
            self.changed.notify_all()


class JobQueue:
    """Bounded priority queue of :class:`SolveEntry` objects with dedup."""

    def __init__(self, capacity: int = 64) -> None:
        if capacity < 1:
            raise ReproError("queue capacity must be at least 1")
        self.capacity = capacity
        self._heap: List[Tuple[int, int, SolveEntry]] = []
        self._seq = itertools.count()
        self._job_seq = itertools.count(1)
        self._by_key: Dict[str, SolveEntry] = {}
        self._by_job_id: Dict[str, SolveEntry] = {}
        self._cancelled_ids: set = set()
        self._queued = 0
        self._closed = False
        self._wakeup = asyncio.Condition()
        # Exponentially-weighted mean solve seconds, feeding retry hints.
        self._mean_solve_s: Optional[float] = None
        # Counters surfaced by /v1/stats.
        self.submitted = 0
        self.coalesced_inflight = 0
        self.coalesced_cached = 0
        self.rejected = 0
        self.cancelled = 0
        self.completed = 0
        self.failed = 0

    # ------------------------------------------------------------------
    # Submission side
    # ------------------------------------------------------------------

    def submit(self, spec: JobSpec) -> Tuple[str, SolveEntry, str]:
        """Enqueue one spec; returns ``(job_id, entry, disposition)``.

        *disposition* is ``"queued"`` for a fresh entry,
        ``"coalesced-inflight"`` when the id attached to a queued/running
        entry, and ``"coalesced-cached"`` when a completed entry served it.
        Raises :class:`QueueFullError` on back-pressure and
        :class:`QueueClosedError` while draining.
        """
        if self._closed:
            raise QueueClosedError("the queue is draining; no new submissions")
        key = spec.request_key()
        existing = self._by_key.get(key)
        disposition = "queued"
        if existing is not None and existing.state in (
            JobState.QUEUED, JobState.RUNNING,
        ):
            entry = existing
            disposition = "coalesced-inflight"
            self.coalesced_inflight += 1
        elif existing is not None and existing.state is JobState.DONE:
            entry = existing
            disposition = "coalesced-cached"
            self.coalesced_cached += 1
        else:
            if self._queued >= self.capacity:
                self.rejected += 1
                raise QueueFullError(self.capacity, self.retry_after_hint())
            entry = SolveEntry(
                key=key, spec=spec, submitted_at=time.monotonic()
            )
            self._by_key[entry.key] = entry
            heapq.heappush(self._heap, (-spec.priority, next(self._seq), entry))
            self._queued += 1
            self._notify_workers()
        job_id = f"job-{next(self._job_seq):06d}"
        entry.job_ids.append(job_id)
        self._by_job_id[job_id] = entry
        self.submitted += 1
        return job_id, entry, disposition

    def cancel(self, job_id: str) -> bool:
        """Detach one job id; cancel its entry if nothing else needs it.

        Only *queued* entries can be cancelled (a running flow is not
        preemptible); returns whether this id is now cancelled.  The entry
        stays in the heap and is skipped lazily by :meth:`get`.
        """
        entry = self._by_job_id.get(job_id)
        if entry is None:
            raise ProtocolUnknownJob(job_id)
        if entry.state is not JobState.QUEUED:
            return job_id in self._cancelled_ids
        self._cancelled_ids.add(job_id)
        self.cancelled += 1
        entry.job_ids.remove(job_id)
        if not entry.job_ids:
            entry.job_ids.append(job_id)  # the view still lists the canceller
            entry.state = JobState.CANCELLED
            entry.done.set()
            del self._by_key[entry.key]
            self._queued -= 1
        return True

    def entry_for(self, job_id: str) -> SolveEntry:
        """Resolve a job id (raising a 404-shaped error when unknown)."""
        entry = self._by_job_id.get(job_id)
        if entry is None:
            raise ProtocolUnknownJob(job_id)
        return entry

    def view(self, job_id: str) -> Dict[str, object]:
        """One job id's status payload (individually-cancelled ids included)."""
        payload = self.entry_for(job_id).view(job_id)
        if job_id in self._cancelled_ids:
            payload["state"] = JobState.CANCELLED.value
        return payload

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------

    async def get(self) -> SolveEntry:
        """Wait for the next runnable entry (highest priority first).

        Raises :class:`QueueClosedError` once the queue is closed *and*
        empty — closing still drains whatever was already accepted.
        """
        while True:
            while self._heap:
                _, _, entry = heapq.heappop(self._heap)
                if entry.state is not JobState.QUEUED:
                    continue  # cancelled while queued
                self._queued -= 1
                entry.started_at = time.monotonic()
                await entry.set_state(JobState.RUNNING)
                return entry
            if self._closed:
                raise QueueClosedError("queue closed and drained")
            async with self._wakeup:
                await self._wakeup.wait()

    async def finish(self, entry: SolveEntry, row: Optional[Dict[str, object]],
                     failed_stage: str = "", error: str = "",
                     error_kind: str = "") -> None:
        """Record one entry's terminal outcome and wake its waiters."""
        entry.finished_at = time.monotonic()
        entry.result_row = row
        ok = row is not None and not failed_stage and not error
        if ok:
            self.completed += 1
            self._record_solve_seconds(entry.finished_at - entry.started_at)
        else:
            entry.failed_stage = failed_stage
            entry.error = error
            entry.error_kind = error_kind
            self.failed += 1
            # Failures are not reusable results: drop the key so the next
            # identical submission gets a fresh attempt.
            if self._by_key.get(entry.key) is entry:
                del self._by_key[entry.key]
        await entry.set_state(JobState.DONE if ok else JobState.FAILED)

    def close(self) -> None:
        """Refuse new submissions; queued entries still drain."""
        self._closed = True
        self._notify_workers()

    @property
    def closed(self) -> bool:
        """Whether the queue is draining."""
        return self._closed

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        """Entries currently queued (excluding running/terminal ones)."""
        return self._queued

    def retry_after_hint(self) -> float:
        """Seconds a 429'd client should wait before retrying.

        The backlog drained at the observed mean solve rate; before any
        solve completed, a small constant.
        """
        if self._mean_solve_s is None:
            return DEFAULT_RETRY_AFTER_S
        return max(0.05, self._mean_solve_s * max(1, self._queued))

    def _record_solve_seconds(self, seconds: float) -> None:
        if self._mean_solve_s is None:
            self._mean_solve_s = seconds
        else:
            self._mean_solve_s = 0.7 * self._mean_solve_s + 0.3 * seconds

    def stats(self) -> Dict[str, object]:
        """Counters for ``/v1/stats``."""
        states: Dict[str, int] = {}
        for entry in self._by_job_id.values():
            states[entry.state.value] = states.get(entry.state.value, 0) + 1
        return {
            "capacity": self.capacity,
            "depth": self.depth,
            "closed": self._closed,
            "submitted": self.submitted,
            "coalesced_inflight": self.coalesced_inflight,
            "coalesced_cached": self.coalesced_cached,
            "coalesced": self.coalesced_inflight + self.coalesced_cached,
            "rejected": self.rejected,
            "cancelled": self.cancelled,
            "completed": self.completed,
            "failed": self.failed,
            "jobs_by_state": states,
        }

    def _notify_workers(self) -> None:
        async def wake() -> None:
            async with self._wakeup:
                self._wakeup.notify_all()

        try:
            loop = asyncio.get_running_loop()
        except RuntimeError:
            return  # no loop yet (e.g. queue built before the server starts)
        loop.create_task(wake())


class ProtocolUnknownJob(ReproError):
    """Raised for job ids the daemon has never issued (a 404)."""

    def __init__(self, job_id: str):
        super().__init__(f"unknown job id {job_id!r}")
        self.job_id = job_id
