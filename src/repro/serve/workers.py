"""Flow-engine workers draining the daemon's job queue.

Each worker owns a full :class:`~repro.synth.flow_engine.FlowEngine` (and a
single-thread executor to run its synchronous, CPU-bound flows off the
event loop) — workers never share mutable engine state.  What they *do*
share is the on-disk cache root: the partition result cache and the stage
artifact store are multi-process safe (atomic temp-file + rename writes,
proven under concurrency in the test suite), so a solve finished by any
worker warms every other worker and every later daemon run.

Failure capture mirrors the flow engine's own structured reports: a job
that fails inside a stage carries ``failed_stage``/``error``/``error_kind``
from the :class:`~repro.synth.flow_engine.FlowReport`; a crash outside the
flow (bad parameters, a broken workload builder) is caught and reported
the same way with ``failed_stage="submit"``.  A per-job wall-clock timeout
marks the job failed with ``error_kind="JobTimeout"`` — pure-python flows
are not preemptible, so the worker also waits for the abandoned flow to
unwind before taking the next entry (the timeout bounds *reporting*
latency, not CPU).

``drain()`` closes the queue and joins every worker: in-flight and queued
jobs finish, new submissions are refused — the graceful half of
SIGTERM/SIGINT handling.
"""

from __future__ import annotations

import asyncio
from concurrent.futures import ThreadPoolExecutor
from dataclasses import replace
from typing import Dict, List, Optional

from ..errors import ReproError
from ..runtime.engine import EngineConfig
from ..synth.flow_engine import FlowEngine, FlowJob, FlowReport
from .protocol import JobSpec
from .queue import JobQueue, QueueClosedError, SolveEntry


def build_flow_job(spec: JobSpec) -> FlowJob:
    """Materialise one submission into a runnable flow job.

    Resolution order matches the CLI: the named system preset (or the
    workload's own board), then the CT override, then the partitioner and
    seed overrides on the workload's flow options.
    """
    from ..arch import system_by_name
    from ..workloads import get_workload

    workload = get_workload(spec.workload)
    graph = workload.build_graph(**spec.params)
    system = (
        system_by_name(spec.system) if spec.system else workload.default_system()
    )
    if spec.ct_ms is not None:
        system = system.with_reconfiguration_time(spec.ct_ms / 1000.0)
    options = workload.flow_options()
    overrides: Dict[str, object] = {"partitioner_seed": spec.seed}
    if spec.partitioner is not None:
        overrides["partitioner"] = spec.partitioner
    options = replace(options, **overrides)
    return FlowJob(
        graph=graph,
        system=system,
        options=options,
        tag=spec.name,
        workload=spec.workload,
    )


class WorkerPool:
    """N asyncio workers, each draining the queue through its own engine."""

    def __init__(
        self,
        queue: JobQueue,
        workers: int = 2,
        cache_dir: Optional[str] = None,
        job_timeout: Optional[float] = None,
        lru_capacity: int = 256,
    ) -> None:
        # ``workers=0`` is a valid pool for a scheduler-only daemon
        # (``repro schedule``): exploration workers evaluate their own flow
        # jobs remotely, so the daemon never solves anything itself.
        if workers < 0:
            raise ReproError("the worker pool size must not be negative")
        if job_timeout is not None and job_timeout <= 0:
            raise ReproError("job_timeout must be positive")
        self.queue = queue
        self.job_timeout = job_timeout
        self.engines: List[FlowEngine] = [
            FlowEngine(
                config=EngineConfig(
                    workers=0, cache_dir=cache_dir, lru_capacity=lru_capacity
                )
            )
            for _ in range(workers)
        ]
        self._executors = [
            ThreadPoolExecutor(max_workers=1, thread_name_prefix=f"flow-worker-{i}")
            for i in range(workers)
        ]
        self._tasks: List[asyncio.Task] = []
        self.jobs_run = 0
        self.jobs_timed_out = 0

    @property
    def workers(self) -> int:
        """Pool size."""
        return len(self.engines)

    def start(self) -> None:
        """Spawn the worker tasks on the running loop."""
        if self._tasks:
            raise ReproError("the worker pool is already running")
        self._tasks = [
            asyncio.create_task(self._worker(index), name=f"serve-worker-{index}")
            for index in range(self.workers)
        ]

    async def drain(self) -> None:
        """Close the queue, finish queued + in-flight jobs, join workers."""
        self.queue.close()
        if self._tasks:
            await asyncio.gather(*self._tasks, return_exceptions=True)
            self._tasks = []
        for executor in self._executors:
            executor.shutdown(wait=True)

    async def _worker(self, index: int) -> None:
        loop = asyncio.get_running_loop()
        engine = self.engines[index]
        executor = self._executors[index]
        while True:
            try:
                entry = await self.queue.get()
            except QueueClosedError:
                return
            await self._run_entry(loop, engine, executor, entry)

    async def _run_entry(
        self,
        loop: asyncio.AbstractEventLoop,
        engine: FlowEngine,
        executor: ThreadPoolExecutor,
        entry: SolveEntry,
    ) -> None:
        self.jobs_run += 1
        future = loop.run_in_executor(executor, self._execute, engine, entry.spec)
        try:
            report = await (
                asyncio.wait_for(asyncio.shield(future), self.job_timeout)
                if self.job_timeout is not None
                else future
            )
        except asyncio.TimeoutError:
            self.jobs_timed_out += 1
            await self.queue.finish(
                entry,
                None,
                failed_stage="worker",
                error=(
                    f"job exceeded the {self.job_timeout:.3f} s wall-clock "
                    "limit"
                ),
                error_kind="JobTimeout",
            )
            # The flow itself cannot be interrupted; wait it out so the
            # worker's executor thread is free again before the next job.
            try:
                await future
            except Exception:  # noqa: BLE001 - already reported as timeout
                pass
            return
        except Exception as error:  # noqa: BLE001 - crash -> structured report
            await self.queue.finish(
                entry,
                None,
                failed_stage="submit",
                error=str(error),
                error_kind=type(error).__name__,
            )
            return
        if report.ok:
            await self.queue.finish(entry, report.row())
        else:
            await self.queue.finish(
                entry,
                report.row(),
                failed_stage=report.failed_stage or "unknown",
                error=report.error or "no detail",
                error_kind=report.error_kind,
            )

    def _execute(self, engine: FlowEngine, spec: JobSpec) -> FlowReport:
        """Run one flow job synchronously (executor thread)."""
        return engine.run_batch([build_flow_job(spec)])[0]

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def engine_stats(self) -> Dict[str, int]:
        """Partition-engine counters summed across every worker engine.

        ``cache_misses`` is the number of partition problems that actually
        ran a solver — the counter the dedup acceptance checks assert on.
        """
        totals: Dict[str, int] = {}
        for engine in self.engines:
            for key, value in engine.stats.snapshot().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    def stage_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-stage artifact-cache counters summed across worker engines."""
        totals: Dict[str, Dict[str, int]] = {}
        for engine in self.engines:
            for stage, counters in engine.stage_stats.items():
                merged = totals.setdefault(stage, {})
                for key, value in counters.items():
                    merged[key] = merged.get(key, 0) + value
        return totals

    def stats(self) -> Dict[str, object]:
        """Pool counters for ``/v1/stats``."""
        return {
            "workers": self.workers,
            "jobs_run": self.jobs_run,
            "jobs_timed_out": self.jobs_timed_out,
            "engine": self.engine_stats(),
            "stages": self.stage_stats(),
        }
