"""A small blocking client for the design-flow daemon.

Used by the CLI (``repro submit`` / ``repro job``), the test suite, the CI
smoke and the load-generator bench.  One stdlib ``http.client`` connection
per call (the daemon is ``Connection: close``), JSON in and out, HTTP
errors mapped onto :class:`ServeClientError` carrying the structured error
envelope the server emitted.
"""

from __future__ import annotations

import http.client
import json
import time
from typing import Dict, Iterator, List, Optional, Union
from urllib.parse import urlsplit

from ..errors import ReproError
from .protocol import API_PREFIX, JobSpec

SpecLike = Union[JobSpec, Dict[str, object]]


class ServeClientError(ReproError):
    """An error response (or transport failure) from the daemon."""

    def __init__(self, message: str, status: int = 0, code: str = "",
                 retry_after_s: Optional[float] = None):
        super().__init__(message)
        self.status = status
        self.code = code
        self.retry_after_s = retry_after_s


class FlowServiceClient:
    """Blocking JSON client for one daemon."""

    def __init__(self, url: str, timeout: float = 60.0) -> None:
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http") or not split.hostname:
            raise ServeClientError(f"unsupported server URL {url!r}")
        self.host = split.hostname
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        body: Optional[object] = None,
        timeout: Optional[float] = None,
    ) -> Dict[str, object]:
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout or self.timeout
        )
        try:
            try:
                connection.request(method, API_PREFIX + path, payload, headers)
                response = connection.getresponse()
                raw = response.read()
            except (OSError, http.client.HTTPException) as error:
                raise ServeClientError(
                    f"cannot reach the daemon at {self.host}:{self.port}: {error}"
                ) from error
            return self._decode(response, raw)
        finally:
            connection.close()

    def _decode(self, response, raw: bytes) -> Dict[str, object]:
        try:
            data = json.loads(raw.decode("utf-8")) if raw else {}
        except ValueError as error:
            raise ServeClientError(
                f"daemon sent invalid JSON (HTTP {response.status}): {error}",
                status=response.status,
            ) from error
        if response.status >= 400:
            detail = data.get("error", {}) if isinstance(data, dict) else {}
            retry_after = detail.get("retry_after_s")
            header = response.getheader("Retry-After")
            if retry_after is None and header is not None:
                try:
                    retry_after = float(header)
                except ValueError:
                    retry_after = None
            raise ServeClientError(
                str(detail.get("message", f"HTTP {response.status}")),
                status=response.status,
                code=str(detail.get("code", "")),
                retry_after_s=retry_after,
            )
        return data

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------

    def health(self) -> Dict[str, object]:
        """``GET /v1/health``."""
        return self._request("GET", "/health")

    def stats(self) -> Dict[str, object]:
        """``GET /v1/stats``."""
        return self._request("GET", "/stats")

    def submit(self, spec: SpecLike) -> Dict[str, object]:
        """Submit one job; returns the ack (job id, key, disposition)."""
        return self._request("POST", "/jobs", self._spec_dict(spec))

    def submit_many(self, specs: List[SpecLike]) -> List[Dict[str, object]]:
        """Submit a batch; returns per-item acks (errors inline)."""
        body = {"jobs": [self._spec_dict(spec) for spec in specs]}
        return list(self._request("POST", "/batch", body)["jobs"])

    def status(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/jobs/<id>``."""
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> Dict[str, object]:
        """``GET /v1/jobs/<id>/result`` (409 until the job is terminal)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> Dict[str, object]:
        """``POST /v1/jobs/<id>/cancel``."""
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def wait(self, job_id: str, timeout: float = 300.0) -> Dict[str, object]:
        """Long-poll until the job is terminal (or *timeout* expires)."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise ServeClientError(
                    f"job {job_id} not terminal after {timeout:.1f} s",
                    code="wait-timeout",
                )
            poll = min(30.0, max(0.05, remaining))
            view = self._request(
                "GET", f"/jobs/{job_id}/wait?timeout={poll:g}",
                timeout=poll + self.timeout,
            )
            if view.get("state") in ("done", "failed", "cancelled"):
                return view

    def watch(self, job_id: str, timeout: float = 300.0) -> Iterator[Dict[str, object]]:
        """Yield every status transition from the chunked stream endpoint."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout
        )
        try:
            try:
                connection.request(
                    "GET", f"{API_PREFIX}/jobs/{job_id}/stream?timeout={timeout:g}"
                )
                response = connection.getresponse()
            except (OSError, http.client.HTTPException) as error:
                raise ServeClientError(
                    f"cannot reach the daemon at {self.host}:{self.port}: {error}"
                ) from error
            if response.status >= 400:
                self._decode(response, response.read())
            while True:
                line = response.readline()
                if not line:
                    return
                line = line.strip()
                if line:
                    yield json.loads(line.decode("utf-8"))
        finally:
            connection.close()

    def shutdown(self) -> Dict[str, object]:
        """``POST /v1/admin/shutdown`` — graceful drain."""
        return self._request("POST", "/admin/shutdown")

    # ------------------------------------------------------------------
    # Work-stealing shard scheduler (repro schedule daemons)
    # ------------------------------------------------------------------

    def scheduler_plan(self) -> Dict[str, object]:
        """``GET /v1/scheduler/plan`` — the published exploration plan."""
        return self._request("GET", "/scheduler/plan")

    def scheduler_status(self) -> Dict[str, object]:
        """``GET /v1/scheduler/status`` — lease/range counters."""
        return self._request("GET", "/scheduler/status")

    def scheduler_snapshot(self) -> Dict[str, object]:
        """``GET /v1/scheduler/snapshot`` — the full scheduler state."""
        return self._request("GET", "/scheduler/snapshot")

    def scheduler_lease(self, worker: str) -> Dict[str, object]:
        """``POST /v1/scheduler/lease`` — ask for the next pending range."""
        return self._request("POST", "/scheduler/lease", {"worker": worker})

    def scheduler_steal(self, worker: str) -> Dict[str, object]:
        """``POST /v1/scheduler/steal`` — steal a straggler's range."""
        return self._request("POST", "/scheduler/steal", {"worker": worker})

    def scheduler_renew(self, lease_id: str) -> Dict[str, object]:
        """``POST /v1/scheduler/renew`` — extend a live lease."""
        return self._request("POST", "/scheduler/renew", {"lease_id": lease_id})

    def scheduler_complete(
        self,
        lease_id: str,
        store_data: Optional[str] = None,
        store_path: Optional[str] = None,
    ) -> Dict[str, object]:
        """``POST /v1/scheduler/complete`` — return one range's shard store.

        Pass the store contents as *store_data* to stream them back, or a
        *store_path* visible to the daemon (shared filesystem) to register
        the store in place.
        """
        body: Dict[str, object] = {"lease_id": lease_id}
        if store_data is not None:
            body["store_data"] = store_data
        if store_path is not None:
            body["store_path"] = store_path
        return self._request("POST", "/scheduler/complete", body)

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    @staticmethod
    def _spec_dict(spec: SpecLike) -> Dict[str, object]:
        if isinstance(spec, JobSpec):
            return spec.to_json_dict()
        return dict(spec)

    def wait_until_healthy(self, timeout: float = 30.0) -> Dict[str, object]:
        """Poll ``/health`` until the daemon answers (startup races)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServeClientError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
