"""The asyncio design-flow service daemon.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — no web
framework, no new dependencies.  Each connection carries one request
(``Connection: close``): the handler parses the request line, headers and
``Content-Length`` body, dispatches on the :mod:`~repro.serve.protocol`
route table, and writes one JSON response.  Two endpoints answer slowly on
purpose: ``/v1/jobs/<id>/wait`` long-polls the job's completion event, and
``/v1/jobs/<id>/stream`` emits every status transition as a chunked JSON
line until the job is terminal.

Life cycle: :meth:`FlowServer.start` binds the socket and spawns the
worker pool; SIGTERM/SIGINT (or ``POST /v1/admin/shutdown``) trigger a
graceful drain — the listener closes, queued and in-flight jobs finish,
then the daemon exits.  Submissions during the drain get a 503.

:func:`start_in_background` runs a daemon on a background thread with its
own event loop — the harness tests, the CI smoke and the load-generator
bench all use it to run client and server in one process.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import tempfile
import threading
import time
from concurrent.futures import TimeoutError as FuturesTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Tuple
from urllib.parse import parse_qs, urlsplit

from .. import __version__
from ..errors import ReproError, WorkloadError
from .protocol import (
    API_PREFIX,
    MAX_BODY_BYTES,
    PROTOCOL_VERSION,
    SCHEDULER_MAX_BODY_BYTES,
    JobSpec,
    JobState,
    ProtocolError,
    deterministic_result,
    error_body,
    parse_json_body,
    submissions_from_body,
)
from .queue import JobQueue, ProtocolUnknownJob, QueueClosedError, QueueFullError
from .workers import WorkerPool

#: Longest a single long-poll / stream request may hold its connection.
MAX_POLL_SECONDS = 120.0

_REASONS = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    429: "Too Many Requests", 500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class ServeConfig:
    """Static configuration of one :class:`FlowServer`."""

    host: str = "127.0.0.1"
    #: Port to bind; ``0`` picks a free port (read it back from ``address``).
    port: int = 0
    workers: int = 2
    queue_depth: int = 64
    #: Shared cache root for every worker engine (partition outcomes +
    #: stage artifacts).  ``None`` uses a private temporary directory that
    #: lives and dies with the daemon.
    cache_dir: Optional[str] = None
    #: Per-job wall-clock limit; ``None`` disables it.
    job_timeout: Optional[float] = None

    def __post_init__(self) -> None:
        # 0 workers is a scheduler-only daemon (``repro schedule``): it
        # hands out exploration ranges but never runs flow jobs itself.
        if self.workers < 0:
            raise ReproError("serve workers must not be negative")
        if self.queue_depth < 1:
            raise ReproError("queue depth must be at least 1")


@dataclass
class ScheduleState:
    """One attached exploration schedule: the plan, its scheduler, its stores.

    ``done`` fires (in the server's event loop) when the last range
    completes — ``repro schedule`` awaits it before running the final
    Pareto-merge fold.
    """

    plan: object  # ExplorationPlan (typed loosely to keep the import lazy)
    scheduler: object  # ShardScheduler
    store_base: Path
    done: asyncio.Event = field(default_factory=asyncio.Event)
    workers_seen: Set[str] = field(default_factory=set)


class FlowServer:
    """The long-lived design-flow daemon."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config or ServeConfig()
        self.queue = JobQueue(capacity=self.config.queue_depth)
        self._tmp_cache: Optional[tempfile.TemporaryDirectory] = None
        cache_dir = self.config.cache_dir
        if cache_dir is None:
            self._tmp_cache = tempfile.TemporaryDirectory(prefix="repro-serve-")
            cache_dir = self._tmp_cache.name
        self.cache_dir = cache_dir
        self.pool = WorkerPool(
            self.queue,
            workers=self.config.workers,
            cache_dir=cache_dir,
            job_timeout=self.config.job_timeout,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._stopped = asyncio.Event()
        self._draining = False
        self._started_at = 0.0
        #: Attached work-stealing exploration schedule (``repro schedule``);
        #: ``None`` on an ordinary flow daemon.
        self.schedule: Optional["ScheduleState"] = None

    # ------------------------------------------------------------------
    # Life cycle
    # ------------------------------------------------------------------

    @property
    def address(self) -> Tuple[str, int]:
        """The bound (host, port) — authoritative once started."""
        if self._server is None or not self._server.sockets:
            raise ReproError("the server is not running")
        host, port = self._server.sockets[0].getsockname()[:2]
        return host, port

    @property
    def url(self) -> str:
        """Base URL clients should target."""
        host, port = self.address
        return f"http://{host}:{port}"

    async def start(self) -> None:
        """Bind the socket and spawn the worker pool."""
        self._started_at = time.monotonic()
        self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    async def serve_forever(self) -> None:
        """Run until a signal or an admin shutdown drains the daemon."""
        if self._server is None:
            await self.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(
                    signum, lambda: asyncio.ensure_future(self.shutdown())
                )
            except (NotImplementedError, RuntimeError):
                pass  # non-main thread or platform without signal support
        await self._stopped.wait()

    async def shutdown(self) -> None:
        """Graceful drain: stop accepting, finish every accepted job, exit."""
        if self._draining:
            await self._stopped.wait()
            return
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.drain()
        if self._tmp_cache is not None:
            self._tmp_cache.cleanup()
            self._tmp_cache = None
        self._stopped.set()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            try:
                method, path, query, body = await self._read_request(reader)
            except ProtocolError as error:
                await self._respond_error(writer, error)
                return
            except (asyncio.IncompleteReadError, ConnectionError, ValueError):
                return  # client went away or sent garbage framing
            try:
                await self._dispatch(writer, method, path, query, body)
            except ProtocolError as error:
                await self._respond_error(writer, error)
            except ProtocolUnknownJob as error:
                await self._respond(
                    writer, 404, error_body("unknown-job", str(error))
                )
            except WorkloadError as error:
                await self._respond(
                    writer, 404, error_body("unknown-workload", str(error))
                )
            except QueueFullError as error:
                await self._respond(
                    writer, 429,
                    error_body(
                        "queue-full", str(error),
                        retry_after_s=round(error.retry_after_s, 3),
                    ),
                    headers={
                        "Retry-After": str(max(1, int(error.retry_after_s + 0.999)))
                    },
                )
            except QueueClosedError as error:
                await self._respond(
                    writer, 503, error_body("draining", str(error))
                )
            except ReproError as error:
                await self._respond(
                    writer, 400, error_body("invalid-request", str(error))
                )
            except Exception as error:  # noqa: BLE001 - never kill the daemon
                await self._respond(
                    writer, 500,
                    error_body("internal", f"{type(error).__name__}: {error}"),
                )
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Tuple[str, str, Dict[str, str], bytes]:
        request_line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
        if not request_line:
            raise ValueError("empty request")
        parts = request_line.split(" ")
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError(f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            raise ProtocolError(f"bad Content-Length {length_text!r}")
        if length < 0:
            raise ProtocolError(f"bad Content-Length {length_text!r}")
        split = urlsplit(target)
        # A range completion streams a whole shard store back, so the
        # scheduler endpoints get a (much) higher body bound.
        limit = (
            SCHEDULER_MAX_BODY_BYTES
            if split.path.startswith(API_PREFIX + "/scheduler/")
            else MAX_BODY_BYTES
        )
        if length > limit:
            raise ProtocolError(
                f"request body exceeds {limit} bytes",
                status=413, code="body-too-large",
            )
        body = await reader.readexactly(length) if length else b""
        query = {
            key: values[-1] for key, values in parse_qs(split.query).items()
        }
        return method, split.path, query, body

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    async def _dispatch(
        self,
        writer: asyncio.StreamWriter,
        method: str,
        path: str,
        query: Dict[str, str],
        body: bytes,
    ) -> None:
        if not path.startswith(API_PREFIX + "/"):
            raise ProtocolError(
                f"unknown path {path!r} (endpoints live under {API_PREFIX}/)",
                status=404, code="not-found",
            )
        segments = [s for s in path[len(API_PREFIX):].split("/") if s]
        route = tuple(segments[:1] + segments[2:]) if (
            len(segments) >= 2 and segments[0] == "jobs"
        ) else tuple(segments)
        job_id = segments[1] if len(segments) >= 2 and segments[0] == "jobs" else ""

        handlers = {
            ("GET", ("health",)): self._handle_health,
            ("GET", ("stats",)): self._handle_stats,
            ("POST", ("jobs",)): self._handle_submit,
            ("POST", ("batch",)): self._handle_batch,
            ("GET", ("jobs",)): self._handle_job_view,
            ("GET", ("jobs", "result")): self._handle_job_result,
            ("GET", ("jobs", "wait")): self._handle_job_wait,
            ("GET", ("jobs", "stream")): self._handle_job_stream,
            ("POST", ("jobs", "cancel")): self._handle_job_cancel,
            ("POST", ("admin", "shutdown")): self._handle_shutdown,
            ("GET", ("scheduler", "plan")): self._handle_scheduler_plan,
            ("GET", ("scheduler", "status")): self._handle_scheduler_status,
            ("GET", ("scheduler", "snapshot")): self._handle_scheduler_snapshot,
            ("POST", ("scheduler", "lease")): self._handle_scheduler_lease,
            ("POST", ("scheduler", "steal")): self._handle_scheduler_steal,
            ("POST", ("scheduler", "renew")): self._handle_scheduler_renew,
            ("POST", ("scheduler", "complete")): self._handle_scheduler_complete,
        }
        handler = handlers.get((method, route))
        if handler is None:
            if any(key[1] == route for key in handlers):
                raise ProtocolError(
                    f"{method} is not allowed on {path}",
                    status=405, code="method-not-allowed",
                )
            raise ProtocolError(
                f"unknown path {path!r}", status=404, code="not-found"
            )
        # Submission-shaped handlers take (writer, body); job-shaped ones
        # take (writer, job_id, query).
        if route[0] == "scheduler":
            if method == "POST":
                await handler(writer, body)
            else:
                await handler(writer)
        elif route in (("jobs",), ("batch",)) and method == "POST":
            await handler(writer, body)
        elif route in (("health",), ("stats",)):
            await handler(writer)
        elif route == ("admin", "shutdown"):
            await handler(writer)
        else:
            await handler(writer, job_id, query)

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    async def _handle_health(self, writer) -> None:
        await self._respond(writer, 200, {
            "status": "draining" if self._draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "version": __version__,
        })

    async def _handle_stats(self, writer) -> None:
        await self._respond(writer, 200, {
            "server": {
                "protocol": PROTOCOL_VERSION,
                "version": __version__,
                "uptime_s": round(time.monotonic() - self._started_at, 3),
                "draining": self._draining,
                "cache_dir": str(self.cache_dir),
            },
            "queue": self.queue.stats(),
            "pool": self.pool.stats(),
        })

    def _submit_one(self, spec: JobSpec) -> Dict[str, object]:
        """Validate one spec against the catalogs, then enqueue it."""
        from ..arch import SYSTEM_PRESETS
        from ..workloads import get_workload

        get_workload(spec.workload)  # unknown workload -> 404
        if spec.system is not None and spec.system not in SYSTEM_PRESETS:
            raise ProtocolError(
                f"unknown system preset {spec.system!r}; "
                f"known: {', '.join(sorted(SYSTEM_PRESETS))}",
                code="unknown-system",
            )
        job_id, entry, disposition = self.queue.submit(spec)
        return {
            "job_id": job_id,
            "key": entry.key,
            "state": entry.state.value,
            "disposition": disposition,
        }

    async def _handle_submit(self, writer, body: bytes) -> None:
        spec = JobSpec.from_json_dict(parse_json_body(body))
        await self._respond(writer, 202, self._submit_one(spec))

    async def _handle_batch(self, writer, body: bytes) -> None:
        specs = submissions_from_body(parse_json_body(body))
        acks = []
        for spec in specs:
            try:
                acks.append(self._submit_one(spec))
            except QueueFullError as error:
                acks.append(error_body(
                    "queue-full", str(error),
                    retry_after_s=round(error.retry_after_s, 3),
                ))
            except (WorkloadError, ProtocolError) as error:
                code = getattr(error, "code", "unknown-workload")
                acks.append(error_body(code, str(error)))
        await self._respond(writer, 202, {"jobs": acks})

    async def _handle_job_view(self, writer, job_id: str, query) -> None:
        await self._respond(writer, 200, self.queue.view(job_id))

    async def _handle_job_result(self, writer, job_id: str, query) -> None:
        entry = self.queue.entry_for(job_id)
        view = self.queue.view(job_id)
        if not JobState(view["state"]).terminal:
            raise ProtocolError(
                f"job {job_id} is still {view['state']}",
                status=409, code="not-finished",
            )
        payload: Dict[str, object] = dict(view)
        payload["result"] = (
            deterministic_result(entry.result_row)
            if entry.result_row is not None and entry.ok
            else None
        )
        await self._respond(writer, 200, payload)

    @staticmethod
    def _query_seconds(query: Dict[str, str], default: float) -> float:
        text = query.get("timeout")
        if text is None:
            return min(default, MAX_POLL_SECONDS)
        try:
            return min(float(text), MAX_POLL_SECONDS)
        except ValueError:
            raise ProtocolError(f"bad timeout {text!r}", code="bad-timeout")

    async def _handle_job_wait(self, writer, job_id: str, query) -> None:
        entry = self.queue.entry_for(job_id)
        timeout = self._query_seconds(query, 30.0)
        try:
            await asyncio.wait_for(entry.done.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        await self._respond(writer, 200, self.queue.view(job_id))

    async def _handle_job_stream(self, writer, job_id: str, query) -> None:
        entry = self.queue.entry_for(job_id)
        deadline = time.monotonic() + self._query_seconds(query, MAX_POLL_SECONDS)
        head = (
            "HTTP/1.1 200 OK\r\n"
            "Content-Type: application/json\r\n"
            "Transfer-Encoding: chunked\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1"))
        last_state = None
        while True:
            view = self.queue.view(job_id)
            if view["state"] != last_state:
                last_state = view["state"]
                chunk = (json.dumps(view, sort_keys=True) + "\n").encode("utf-8")
                writer.write(f"{len(chunk):x}\r\n".encode("latin-1"))
                writer.write(chunk + b"\r\n")
                await writer.drain()
            if JobState(view["state"]).terminal:
                break
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                break
            async with entry.changed:
                try:
                    await asyncio.wait_for(entry.changed.wait(), remaining)
                except asyncio.TimeoutError:
                    pass
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    async def _handle_job_cancel(self, writer, job_id: str, query) -> None:
        cancelled = self.queue.cancel(job_id)
        payload = self.queue.view(job_id)
        payload["cancelled"] = cancelled
        await self._respond(writer, 200, payload)

    async def _handle_shutdown(self, writer) -> None:
        await self._respond(writer, 202, {"status": "draining"})
        asyncio.ensure_future(self.shutdown())

    # ------------------------------------------------------------------
    # Work-stealing exploration schedule
    # ------------------------------------------------------------------

    def attach_schedule(
        self, plan, store_base, lease_timeout: float = 30.0
    ) -> "ScheduleState":
        """Attach a work-stealing exploration schedule to this daemon.

        *plan* is an :class:`~repro.explore.scheduler.ExplorationPlan`;
        completed ranges land as shard stores next to *store_base* (the
        ``<store>.shard-<i>-of-<n>.jsonl`` convention).  Call before
        :meth:`start` so workers never observe a daemon without a plan.
        """
        from ..explore.scheduler import ShardScheduler

        self.schedule = ScheduleState(
            plan=plan,
            scheduler=ShardScheduler(plan.range_count, lease_timeout),
            store_base=Path(store_base),
        )
        return self.schedule

    def _schedule_state(self) -> "ScheduleState":
        if self.schedule is None:
            raise ProtocolError(
                "this daemon has no exploration schedule attached "
                "(start one with 'repro schedule')",
                status=404, code="no-schedule",
            )
        return self.schedule

    @staticmethod
    def _body_string(payload: object, name: str) -> str:
        if (
            not isinstance(payload, dict)
            or not isinstance(payload.get(name), str)
            or not payload[name]
        ):
            raise ProtocolError(f"'{name}' must be a non-empty string")
        return payload[name]

    def _grant_payload(self, state: "ScheduleState", lease, now: float):
        if lease is None:
            return {
                "granted": False,
                "all_done": state.scheduler.done,
                "retry_after_s": min(1.0, state.scheduler.lease_timeout / 4.0),
            }
        return {
            "granted": True,
            "lease_id": lease.lease_id,
            "range_index": lease.range_index,
            "range_count": state.plan.range_count,
            "lease_timeout_s": state.scheduler.lease_timeout,
            "deadline_in_s": round(lease.deadline - now, 3),
            "stolen_from": lease.stolen_from,
            "all_done": False,
        }

    async def _handle_scheduler_plan(self, writer) -> None:
        state = self._schedule_state()
        await self._respond(writer, 200, {
            "plan": state.plan.to_json_dict(),
            "lease_timeout_s": state.scheduler.lease_timeout,
            "store_base": str(state.store_base),
        })

    async def _handle_scheduler_status(self, writer) -> None:
        state = self._schedule_state()
        state.scheduler.expire(time.monotonic())
        payload = state.scheduler.progress()
        payload["workers_seen"] = sorted(state.workers_seen)
        await self._respond(writer, 200, payload)

    async def _handle_scheduler_snapshot(self, writer) -> None:
        state = self._schedule_state()
        state.scheduler.expire(time.monotonic())
        await self._respond(writer, 200, state.scheduler.to_json_dict())

    async def _handle_scheduler_lease(self, writer, body: bytes) -> None:
        state = self._schedule_state()
        worker = self._body_string(
            parse_json_body(body, limit=SCHEDULER_MAX_BODY_BYTES), "worker"
        )
        state.workers_seen.add(worker)
        now = time.monotonic()
        lease = state.scheduler.lease(worker, now)
        await self._respond(writer, 200, self._grant_payload(state, lease, now))

    async def _handle_scheduler_steal(self, writer, body: bytes) -> None:
        state = self._schedule_state()
        worker = self._body_string(
            parse_json_body(body, limit=SCHEDULER_MAX_BODY_BYTES), "worker"
        )
        state.workers_seen.add(worker)
        now = time.monotonic()
        lease = state.scheduler.steal(worker, now)
        await self._respond(writer, 200, self._grant_payload(state, lease, now))

    async def _handle_scheduler_renew(self, writer, body: bytes) -> None:
        state = self._schedule_state()
        lease_id = self._body_string(
            parse_json_body(body, limit=SCHEDULER_MAX_BODY_BYTES), "lease_id"
        )
        live = state.scheduler.renew(lease_id, time.monotonic())
        await self._respond(writer, 200, {"lease_id": lease_id, "live": live})

    async def _handle_scheduler_complete(self, writer, body: bytes) -> None:
        from ..explore.shard import shard_store_path

        state = self._schedule_state()
        payload = parse_json_body(body, limit=SCHEDULER_MAX_BODY_BYTES)
        lease_id = self._body_string(payload, "lease_id")
        store_data = payload.get("store_data") if isinstance(payload, dict) else None
        shared_path = payload.get("store_path") if isinstance(payload, dict) else None
        if (store_data is None) == (shared_path is None):
            raise ProtocolError(
                "a completion must carry exactly one of 'store_data' "
                "(inline shard store) or 'store_path' (shared filesystem)"
            )
        lease = state.scheduler.lease_info(lease_id)
        if shared_path is not None:
            path = str(shared_path)
        else:
            path = str(shard_store_path(
                state.store_base, lease.range_index, state.plan.range_count
            ))
        disposition = state.scheduler.complete(
            lease_id, time.monotonic(), store_path=path
        )
        if store_data is not None and disposition != "duplicate":
            if not isinstance(store_data, str):
                raise ProtocolError("'store_data' must be a string")
            # Atomic publish: a crashed write never leaves a torn store
            # (and a duplicate completion is byte-identical anyway).
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            tmp = target.with_name(f"{target.name}.{lease_id}.tmp")
            tmp.write_text(store_data, encoding="utf-8")
            os.replace(tmp, target)
        if state.scheduler.done:
            state.done.set()
        await self._respond(writer, 200, {
            "lease_id": lease_id,
            "range_index": lease.range_index,
            "disposition": disposition,
            "store_path": path,
            "all_done": state.scheduler.done,
        })

    # ------------------------------------------------------------------
    # Response writing
    # ------------------------------------------------------------------

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            "Connection: close",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body)
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass

    async def _respond_error(self, writer, error: ProtocolError) -> None:
        await self._respond(
            writer, error.status, error_body(error.code, str(error))
        )


# ---------------------------------------------------------------------------
# Background-thread harness (tests, bench, CI smoke)
# ---------------------------------------------------------------------------

class ServerHandle:
    """A daemon running on a background thread with its own event loop."""

    def __init__(self, server: FlowServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def url(self) -> str:
        """Base URL of the running daemon."""
        return self.server.url

    def wait_schedule_done(self, timeout: Optional[float] = None) -> bool:
        """Block until the attached schedule's last range completes.

        Returns ``False`` on timeout (the schedule is still running).
        Raises when the daemon has no schedule attached.
        """
        state = self.server.schedule
        if state is None:
            raise ReproError("this daemon has no exploration schedule attached")
        future = asyncio.run_coroutine_threadsafe(
            state.done.wait(), self._loop
        )
        try:
            future.result(timeout)
            return True
        except FuturesTimeoutError:
            future.cancel()
            return False

    def shutdown(self, timeout: float = 60.0) -> None:
        """Gracefully drain the daemon and join its thread."""
        if self._thread.is_alive():
            self._loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.server.shutdown())
            )
        self._thread.join(timeout)
        if self._thread.is_alive():
            raise ReproError("the server thread did not drain in time")

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def start_in_background(
    config: Optional[ServeConfig] = None,
    ready_timeout: float = 30.0,
    server: Optional[FlowServer] = None,
) -> ServerHandle:
    """Start a :class:`FlowServer` on a background thread and wait for it.

    Pass a prepared *server* (e.g. one with an exploration schedule already
    attached) to start that instance instead of building one from *config*.
    """
    if server is None:
        server = FlowServer(config)
    elif config is not None:
        raise ReproError("pass either a config or a prepared server, not both")
    ready = threading.Event()
    loop_box: Dict[str, asyncio.AbstractEventLoop] = {}
    failure: Dict[str, BaseException] = {}

    def run() -> None:
        async def main() -> None:
            try:
                await server.start()
            except BaseException as error:  # noqa: BLE001 - surfaced to caller
                failure["error"] = error
                ready.set()
                return
            loop_box["loop"] = asyncio.get_running_loop()
            ready.set()
            await server.serve_forever()

        asyncio.run(main())

    thread = threading.Thread(target=run, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(ready_timeout):
        raise ReproError("the server did not start in time")
    if "error" in failure:
        raise ReproError(f"the server failed to start: {failure['error']}")
    return ServerHandle(server, loop_box["loop"], thread)
