"""The built-in workload catalog.

Five workload families ship with the library:

* ``jpeg_dct`` — the paper's JPEG/DCT case study (Figure 8), now just one
  registry entry rather than the hard-coded benchmark every driver built;
* ``fir_filterbank`` — the DFG-described FIR filter bank promoted from
  ``examples/fir_filterbank_partitioning.py``; costs come from the HLS
  estimator inside the flow;
* ``random_layered`` — seeded random layered DAGs with DSP-like statistics
  (deterministic: same seed, same graph, same canonical hash), plus the
  ``random_layered_10k/50k/100k`` huge tiers (tag ``"huge"``, excluded from
  ``--workload all``) that exercise the multilevel pre-partitioner;
* ``wavelet_pyramid`` — a dyadic discrete-wavelet-transform analysis
  pyramid (per-level low/high-pass pairs with decimating data volumes);
* ``matmul_pipeline`` — a two-stage blocked matrix-product pipeline
  (``T = A.B`` row tasks feeding ``Y = T.C`` row tasks), the DCT case
  study's structure generalised to arbitrary dimension.

All builders are plain functions returning a
:class:`~repro.taskgraph.graph.TaskGraph`; registration happens through the
:func:`~repro.workloads.registry.register_workload` decorator, and the
parameter sweeps declared here expand deterministically via
``Workload.variants()``.
"""

from __future__ import annotations

from ..arch.catalog import generic_system
from ..dfg.builders import fir_tap_dfg, sum_of_products_dfg, vector_product_dfg
from ..errors import SpecificationError
from ..jpeg.taskgraph_builder import build_dct_task_graph
from ..synth.flow import FlowOptions
from ..taskgraph.builders import random_dsp_task_graph
from ..taskgraph.graph import TaskGraph
from ..taskgraph.task import Task, clb_cost
from ..units import ms, ns
from .registry import register_workload


# ---------------------------------------------------------------------------
# Paper case study
# ---------------------------------------------------------------------------

@register_workload(
    "jpeg_dct",
    description="DAC'99 JPEG case study: the 32-task 4x4 DCT graph on the XC4044 board",
    default_params={"attach_dfgs": False},
    expectations={"partitions": 3, "computations_per_run": 2048},
    tags=("paper", "image"),
)
def build_jpeg_dct_graph(attach_dfgs: bool = False) -> TaskGraph:
    """The case-study DCT graph (paper-reported costs)."""
    return build_dct_task_graph(attach_dfgs=attach_dfgs)


# ---------------------------------------------------------------------------
# FIR filter bank (promoted from the example)
# ---------------------------------------------------------------------------

def _fir_filterbank_system():
    return generic_system(
        clb_capacity=900, memory_words=16384, reconfiguration_time=ms(10)
    )


def _fir_filterbank_options():
    return FlowOptions(max_clock_period=ns(80))


@register_workload(
    "fir_filterbank",
    description="four-channel FIR filter bank + energy detectors, costed by the HLS estimator",
    default_params={"channels": 4, "taps": 8},
    system=_fir_filterbank_system,
    flow_options=_fir_filterbank_options,
    expectations={"partitions": 5},
    sweep={"channels": (2, 4, 8)},
    tags=("dsp", "estimated"),
)
def build_fir_filterbank_graph(channels: int = 4, taps: int = 8) -> TaskGraph:
    """A *channels*-channel FIR filter bank with per-channel energy detectors.

    Every task carries its operation-level DFG; costs are filled in by the
    HLS estimator inside the design flow (the estimation stage).
    """
    if channels < 1:
        raise SpecificationError("channels must be >= 1")
    if taps < 1:
        raise SpecificationError("taps must be >= 1")
    graph = TaskGraph("fir_filterbank")
    graph.add_task(
        Task("window", dfg=vector_product_dfg(8, input_width=12, coefficient_width=12,
                                              name="window"), task_type="window"),
        env_input_words=taps,
    )
    for channel in range(channels):
        fir_name = f"fir{channel}"
        graph.add_task(
            Task(fir_name, dfg=fir_tap_dfg(taps, input_width=12, coefficient_width=12,
                                           name=fir_name), task_type="fir"),
        )
        graph.add_edge("window", fir_name, words=taps)
        energy_name = f"energy{channel}"
        graph.add_task(
            Task(energy_name, dfg=sum_of_products_dfg(4, width=16, name=energy_name),
                 task_type="energy"),
            env_output_words=1,
        )
        graph.add_edge(fir_name, energy_name, words=4)
    return graph


# ---------------------------------------------------------------------------
# Seeded random layered DAGs
# ---------------------------------------------------------------------------

def _random_layered_system():
    return generic_system(
        clb_capacity=600, memory_words=8192, reconfiguration_time=ms(5)
    )


@register_workload(
    "random_layered",
    description="seeded random layered DAG with DSP-like cost statistics",
    default_params={"task_count": 12, "seed": 0, "max_level_width": 4},
    system=_random_layered_system,
    sweep={"seed": (0, 1, 2, 3), "task_count": (12, 18)},
    tags=("synthetic", "seeded"),
)
def build_random_layered_graph(
    task_count: int = 12, seed: int = 0, max_level_width: int = 4
) -> TaskGraph:
    """A reproducible random layered task graph (same seed, same graph)."""
    return random_dsp_task_graph(
        task_count=task_count,
        seed=seed,
        max_level_width=max_level_width,
        name=f"random_layered-{task_count}-s{seed}",
    )


# ---------------------------------------------------------------------------
# Huge random layered DAGs (the multilevel pre-partitioner tier)
# ---------------------------------------------------------------------------

def _huge_options():
    return FlowOptions(partitioner="multilevel")


def _register_huge_random_layered(
    label: str, task_count: int, clb_capacity: int
) -> None:
    """Register one ``random_layered_<label>`` huge-graph workload.

    The ``"huge"`` tag keeps these out of ``workload_names(exclude_tags=
    ("huge",))`` — i.e. out of every ``--workload all`` batch — so the
    10k-100k-node tiers only run when named explicitly (benchmarks, the
    ``verify_huge`` scenario family).  Their flow options select the
    multilevel pre-partitioner: the flat partitioners are intractable at
    this scale.
    """

    @register_workload(
        f"random_layered_{label}",
        description=(
            f"{task_count:,}-task seeded random layered DAG solved through "
            "the multilevel pre-partitioner (tag 'huge': excluded from "
            "--workload all)"
        ),
        default_params={
            "task_count": task_count,
            "seed": 0,
            "max_level_width": 24,
        },
        system=lambda: generic_system(
            clb_capacity=clb_capacity,
            memory_words=1 << 20,
            reconfiguration_time=ms(5),
        ),
        flow_options=_huge_options,
        tags=("synthetic", "seeded", "huge"),
    )
    def build_huge_random_layered(
        task_count: int = task_count, seed: int = 0, max_level_width: int = 24
    ) -> TaskGraph:
        return random_dsp_task_graph(
            task_count=task_count,
            seed=seed,
            max_level_width=max_level_width,
            edge_probability=0.08,
            name=f"random_layered_{label}-s{seed}",
        )


_register_huge_random_layered("10k", 10_000, 200_000)
_register_huge_random_layered("50k", 50_000, 1_000_000)
_register_huge_random_layered("100k", 100_000, 2_000_000)


# ---------------------------------------------------------------------------
# Wavelet analysis pyramid
# ---------------------------------------------------------------------------

def _wavelet_system():
    return generic_system(
        clb_capacity=450, memory_words=4096, reconfiguration_time=ms(2)
    )


@register_workload(
    "wavelet_pyramid",
    description="dyadic DWT analysis pyramid: per-level low/high-pass pairs, decimating",
    default_params={"levels": 3, "samples": 64, "taps": 6},
    system=_wavelet_system,
    expectations={"partitions": 4},
    sweep={"levels": (2, 3, 4)},
    tags=("synthetic", "dsp"),
)
def build_wavelet_pyramid_graph(
    levels: int = 3, samples: int = 64, taps: int = 6
) -> TaskGraph:
    """A *levels*-deep discrete-wavelet-transform analysis pyramid.

    Each level filters its input through a low-pass/high-pass pair and
    decimates by two: the low-pass output feeds the next level, the
    high-pass (detail) coefficients leave for the environment.  Data
    volumes halve per level, which exercises the memory-mapping and
    fission stages with asymmetric inter-partition transfers.
    """
    if levels < 1:
        raise SpecificationError("levels must be >= 1")
    if samples < (1 << levels):
        raise SpecificationError(
            f"samples must be at least 2**levels ({1 << levels}), got {samples}"
        )
    if taps < 1:
        raise SpecificationError("taps must be >= 1")
    graph = TaskGraph(f"wavelet_pyramid-l{levels}")
    graph.add_task(
        Task("analysis_window", cost=clb_cost(180, ns(400)), task_type="linebuffer"),
        env_input_words=samples,
    )
    previous = "analysis_window"
    for level in range(levels):
        words_in = samples >> level
        words_out = samples >> (level + 1)
        lowpass = f"lp{level}"
        highpass = f"hp{level}"
        graph.add_task(
            Task(lowpass, cost=clb_cost(60 + 20 * taps, ns(150 * taps)),
                 task_type="lowpass", metadata={"level": level}),
            env_output_words=words_out if level == levels - 1 else 0,
        )
        graph.add_task(
            Task(highpass, cost=clb_cost(50 + 18 * taps, ns(140 * taps)),
                 task_type="highpass", metadata={"level": level}),
            env_output_words=words_out,
        )
        graph.add_edge(previous, lowpass, words=words_in)
        graph.add_edge(previous, highpass, words=words_in)
        previous = lowpass
    return graph


# ---------------------------------------------------------------------------
# Blocked matrix-product pipeline
# ---------------------------------------------------------------------------

def _matmul_system():
    return generic_system(
        clb_capacity=800, memory_words=4096, reconfiguration_time=ms(2)
    )


@register_workload(
    "matmul_pipeline",
    description="two-stage blocked matrix product (T=A.B rows feeding Y=T.C rows)",
    default_params={"dim": 4},
    system=_matmul_system,
    expectations={"partitions": 2},
    sweep={"dim": (2, 4, 6)},
    tags=("synthetic", "kernel"),
)
def build_matmul_pipeline_graph(dim: int = 4) -> TaskGraph:
    """A ``dim x dim`` two-stage matrix-product pipeline.

    Stage one computes the rows of ``T = A.B`` (narrow operands), stage two
    the rows of ``Y = T.C`` (wider intermediate operands, hence larger and
    slower tasks) — the DCT case study's T1/T2 structure generalised to any
    dimension.  Each second-stage row consumes exactly its first-stage row,
    so the inter-stage volume is ``dim`` words per row.
    """
    if dim < 1:
        raise SpecificationError("dim must be >= 1")
    graph = TaskGraph(f"matmul_pipeline-d{dim}")
    for row in range(dim):
        graph.add_task(
            Task(f"ab_r{row}", cost=clb_cost(90 + 10 * dim, ns(120 * dim)),
                 task_type="stage1", metadata={"row": row}),
            env_input_words=dim,
        )
    for row in range(dim):
        name = f"tc_r{row}"
        graph.add_task(
            Task(name, cost=clb_cost(120 + 15 * dim, ns(160 * dim)),
                 task_type="stage2", metadata={"row": row}),
            env_output_words=dim,
        )
        graph.add_edge(f"ab_r{row}", name, words=dim)
    return graph
