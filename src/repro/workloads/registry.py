"""The process-wide workload registry.

Workloads register themselves with the :func:`register_workload` decorator::

    @register_workload(
        "my_pipeline",
        description="a three-stage example",
        default_params={"stages": 3},
        system=my_system_factory,
        expectations={"partitions": 2},
    )
    def build_my_pipeline(stages: int = 3) -> TaskGraph:
        ...

and are looked up by name with :func:`get_workload`.  Registration is
import-time side-effect free beyond the dictionary insert: builders run only
when a graph is actually requested, so importing the catalog never pays for
an expensive builder, and a failing builder surfaces where the graph is
built (``repro workloads list`` degrades it to an "unavailable" row) rather
than as an import-time crash.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..arch.board import RtrSystem
from ..errors import WorkloadError
from ..synth.flow import FlowOptions
from ..taskgraph.graph import TaskGraph
from .base import Workload

_REGISTRY: Dict[str, Workload] = {}


def register(workload: Workload, replace: bool = False) -> Workload:
    """Add *workload* to the registry.

    Duplicate names are an error unless *replace* is given — silently
    shadowing a workload would make experiment provenance ambiguous.
    """
    if not replace and workload.name in _REGISTRY:
        raise WorkloadError(
            f"workload {workload.name!r} is already registered; pass replace=True "
            "to overwrite it deliberately"
        )
    _REGISTRY[workload.name] = workload
    return workload


def register_workload(
    name: str,
    *,
    description: str = "",
    default_params: Optional[Mapping[str, object]] = None,
    system: Optional[Callable[[], RtrSystem]] = None,
    flow_options: Optional[Callable[[], FlowOptions]] = None,
    expectations: Optional[Mapping[str, object]] = None,
    sweep: Optional[Mapping[str, Sequence[object]]] = None,
    tags: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[Callable[..., TaskGraph]], Callable[..., TaskGraph]]:
    """Decorator form of :func:`register`: wrap a task-graph builder.

    The decorated function is returned unchanged, so it stays directly
    callable (examples and tests use the builders without the registry).
    """

    def decorator(builder: Callable[..., TaskGraph]) -> Callable[..., TaskGraph]:
        workload = Workload(
            name=name,
            builder=builder,
            description=description,
            default_params=dict(default_params or {}),
            expectations=dict(expectations or {}),
            sweep=dict(sweep or {}),
            tags=tuple(tags),
            **({"system_factory": system} if system is not None else {}),
            flow_options_factory=flow_options,
        )
        register(workload, replace=replace)
        return builder

    return decorator


def unregister_workload(name: str) -> None:
    """Remove one workload (mainly for tests and plugin teardown)."""
    try:
        del _REGISTRY[name]
    except KeyError:
        raise WorkloadError(f"workload {name!r} is not registered")


def get_workload(name: str) -> Workload:
    """Look up a workload by name.

    >>> get_workload("jpeg_dct").name
    'jpeg_dct'
    """
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "(none registered)"
        raise WorkloadError(f"unknown workload {name!r}; known: {known}")


def workload_names(exclude_tags: Tuple[str, ...] = ()) -> List[str]:
    """Sorted names of every registered workload.

    *exclude_tags* drops workloads carrying any of the given tags — batch
    drivers pass ``("huge",)`` so ``--workload all`` never silently pulls a
    100k-node graph into an interactive run.
    """
    return sorted(
        name
        for name, workload in _REGISTRY.items()
        if not any(tag in workload.tags for tag in exclude_tags)
    )


def iter_workloads() -> Iterator[Workload]:
    """Iterate over registered workloads in name order."""
    for name in workload_names():
        yield _REGISTRY[name]
