"""The :class:`Workload` descriptor — one entry of the workload catalog.

A workload packages everything the flow needs to run one scenario
end-to-end without the caller hard-coding anything:

* a **task-graph builder** (a callable taking keyword parameters),
* the **default parameters** the builder is invoked with,
* a **target system** factory (board, memory, reconfiguration time),
* the **flow options** the scenario should be synthesised under,
* **reference expectations** (e.g. the partition count the paper reports)
  that tests and the cross-workload summary check against, and
* an optional deterministic **parameter sweep** that expands the workload
  into a family of variants (seeded generators sweep their seeds here).

Workloads are registered in :mod:`repro.workloads.registry` and looked up by
name from the CLI, the experiment drivers and the flow engine.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.board import RtrSystem
from ..arch.catalog import paper_case_study_system
from ..errors import WorkloadError
from ..synth.flow import FlowOptions
from ..taskgraph.graph import TaskGraph


@dataclass(frozen=True)
class WorkloadVariant:
    """One concrete parameterisation of a workload."""

    name: str
    params: Mapping[str, object]

    def describe(self) -> str:
        """One-line human readable summary."""
        if not self.params:
            return self.name
        rendered = ", ".join(f"{key}={value}" for key, value in sorted(self.params.items()))
        return f"{self.name} ({rendered})"


def variant_name(workload_name: str, params: Mapping[str, object]) -> str:
    """The canonical display name of a parameterised variant."""
    if not params:
        return workload_name
    rendered = ",".join(f"{key}={value}" for key, value in sorted(params.items()))
    return f"{workload_name}[{rendered}]"


@dataclass(frozen=True)
class Workload:
    """A named, registerable scenario for the design flow.

    Parameters
    ----------
    name:
        Registry key (``[a-z0-9_]+`` by convention).
    builder:
        Callable returning a :class:`~repro.taskgraph.graph.TaskGraph`;
        invoked with ``default_params`` merged with caller overrides.
    description:
        One-line summary shown by ``repro workloads list``.
    default_params:
        Keyword arguments the builder is called with by default.
    system_factory:
        Zero-argument callable building the scenario's default target
        system (defaults to the paper's XC4044 board).
    flow_options_factory:
        Zero-argument callable building the scenario's default
        :class:`~repro.synth.flow.FlowOptions` (defaults to ``FlowOptions()``).
    expectations:
        Reference values the scenario should reproduce (e.g.
        ``{"partitions": 3, "computations_per_run": 2048}``); checked by
        tests and reported by the cross-workload summary.
    sweep:
        Mapping of parameter name to the sequence of values the parameter
        sweep explores; :meth:`variants` expands the cartesian product in a
        deterministic (sorted-key) order.
    tags:
        Free-form labels (``"paper"``, ``"synthetic"``, ...) for filtering.
    """

    name: str
    builder: Callable[..., TaskGraph]
    description: str = ""
    default_params: Mapping[str, object] = field(default_factory=dict)
    system_factory: Callable[[], RtrSystem] = paper_case_study_system
    flow_options_factory: Optional[Callable[[], FlowOptions]] = None
    expectations: Mapping[str, object] = field(default_factory=dict)
    sweep: Mapping[str, Sequence[object]] = field(default_factory=dict)
    tags: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise WorkloadError("workload name must not be empty")
        if not callable(self.builder):
            raise WorkloadError(f"workload {self.name!r} builder must be callable")
        for parameter in self.sweep:
            if not self.sweep[parameter]:
                raise WorkloadError(
                    f"workload {self.name!r} sweeps parameter {parameter!r} over "
                    "an empty value list"
                )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def build_graph(self, **overrides) -> TaskGraph:
        """Build the task graph with the default parameters plus *overrides*."""
        params: Dict[str, object] = {**self.default_params, **overrides}
        try:
            graph = self.builder(**params)
        except TypeError as error:
            raise WorkloadError(
                f"workload {self.name!r} rejected parameters {sorted(params)}: {error}"
            ) from error
        graph.validate()
        return graph

    def default_system(self) -> RtrSystem:
        """The scenario's default target system."""
        return self.system_factory()

    def flow_options(self) -> FlowOptions:
        """The scenario's default flow options (a fresh instance per call)."""
        if self.flow_options_factory is None:
            return FlowOptions()
        return self.flow_options_factory()

    # ------------------------------------------------------------------
    # Parameter sweeps
    # ------------------------------------------------------------------

    def variants(self) -> List[WorkloadVariant]:
        """Deterministic expansion of the parameter sweep.

        Without a sweep this is the single default variant.  With one, the
        cartesian product of the swept values is enumerated with the
        parameter names sorted, so the order (and every variant's canonical
        hash) is identical across runs and processes.
        """
        if not self.sweep:
            return [WorkloadVariant(self.name, dict(self.default_params))]
        keys = sorted(self.sweep)
        variants: List[WorkloadVariant] = []
        for values in itertools.product(*(self.sweep[key] for key in keys)):
            swept = dict(zip(keys, values))
            params = {**self.default_params, **swept}
            variants.append(WorkloadVariant(variant_name(self.name, swept), params))
        return variants

    def describe(self) -> str:
        """Multi-line human readable summary."""
        lines = [f"workload {self.name}: {self.description or '(no description)'}"]
        if self.tags:
            lines.append(f"  tags: {', '.join(self.tags)}")
        if self.default_params:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.default_params.items())
            )
            lines.append(f"  default parameters: {rendered}")
        if self.sweep:
            rendered = "; ".join(
                f"{key} in {list(values)}" for key, values in sorted(self.sweep.items())
            )
            lines.append(f"  sweep: {rendered} ({len(self.variants())} variants)")
        if self.expectations:
            rendered = ", ".join(
                f"{key}={value}" for key, value in sorted(self.expectations.items())
            )
            lines.append(f"  expectations: {rendered}")
        return "\n".join(lines)
