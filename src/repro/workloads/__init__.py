"""The workload catalog: named, parameterised scenarios for the design flow.

The paper evaluates one benchmark (the JPEG/DCT case study).  This package
turns "a benchmark" into a first-class concept so the flow, the experiment
drivers and the CLI all consume *workloads* — registry entries that bundle a
task-graph builder, its parameters, a default target system, flow options
and reference expectations:

* :mod:`repro.workloads.base` — the :class:`Workload` descriptor and
  deterministic parameter-sweep expansion;
* :mod:`repro.workloads.registry` — ``@register_workload`` and name lookup;
* :mod:`repro.workloads.library` — the built-in catalog (``jpeg_dct``,
  ``fir_filterbank``, ``random_layered``, ``wavelet_pyramid``,
  ``matmul_pipeline``).

Quickstart::

    from repro.workloads import get_workload

    workload = get_workload("jpeg_dct")
    graph = workload.build_graph()
    system = workload.default_system()
"""

from typing import List

from .base import Workload, WorkloadVariant, variant_name
from .registry import (
    get_workload,
    iter_workloads,
    register,
    register_workload,
    unregister_workload,
    workload_names,
)

#: Import-time failures of the builtin catalog (normally empty).  The
#: registry itself has no optional dependencies, but individual workload
#: libraries may: a missing one must degrade the catalog (``repro workloads
#: list`` reports it and exits 0), not break ``import repro``.
_CATALOG_ERRORS: List[str] = []

try:
    from .library import (
        build_fir_filterbank_graph,
        build_jpeg_dct_graph,
        build_matmul_pipeline_graph,
        build_random_layered_graph,
        build_wavelet_pyramid_graph,
    )
except ImportError as _library_error:  # pragma: no cover - needs a broken env
    _CATALOG_ERRORS.append(str(_library_error))

    def _unavailable_builder(*_args, **_params):
        from ..errors import WorkloadError

        raise WorkloadError(
            f"builtin workload library unavailable: {_CATALOG_ERRORS[0]}"
        )

    build_fir_filterbank_graph = _unavailable_builder
    build_jpeg_dct_graph = _unavailable_builder
    build_matmul_pipeline_graph = _unavailable_builder
    build_random_layered_graph = _unavailable_builder
    build_wavelet_pyramid_graph = _unavailable_builder

try:
    # The seeded verification scenario families register themselves as
    # ``verify_<family>`` workloads so the whole catalog (CLI, explorer,
    # flow engine) can consume them like any other entry.
    from ..verify import catalog as _verify_catalog  # noqa: F401
except ImportError as _verify_error:  # pragma: no cover - needs a broken env
    _CATALOG_ERRORS.append(str(_verify_error))


def catalog_errors() -> List[str]:
    """Import-time failures of the builtin catalog (empty when healthy)."""
    return list(_CATALOG_ERRORS)


__all__ = [
    "Workload",
    "WorkloadVariant",
    "catalog_errors",
    "build_fir_filterbank_graph",
    "build_jpeg_dct_graph",
    "build_matmul_pipeline_graph",
    "build_random_layered_graph",
    "build_wavelet_pyramid_graph",
    "get_workload",
    "iter_workloads",
    "register",
    "register_workload",
    "unregister_workload",
    "variant_name",
    "workload_names",
]
