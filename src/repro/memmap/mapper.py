"""Building per-partition memory blocks from a temporal partitioning.

For every temporal partition the mapper collects:

* the environment inputs its tasks read (``B(env, t)``),
* the environment outputs its tasks produce (``B(t, env)``),
* the cross-boundary inputs produced by earlier partitions,
* the cross-boundary outputs consumed by later partitions, and
* pass-through data that is live in memory during the partition but neither
  read nor written by it (produced before, consumed after).

The resulting :class:`MemoryMap` is what the loop-fission analysis (Eq. 9) and
the RTL memory-access synthesis consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import MemoryMappingError
from ..partition.result import TemporalPartitioning
from .segments import MemoryBlock, MemorySegment, SegmentKind


@dataclass
class MemoryMap:
    """Per-partition memory blocks for one temporal partitioning."""

    blocks: Dict[int, MemoryBlock] = field(default_factory=dict)
    rounded: bool = False

    def block(self, partition_index: int) -> MemoryBlock:
        """The memory block of partition *partition_index*."""
        try:
            return self.blocks[partition_index]
        except KeyError:
            raise MemoryMappingError(f"no memory block for partition {partition_index}")

    @property
    def partition_indices(self) -> List[int]:
        """Partition indices in order."""
        return sorted(self.blocks)

    def per_iteration_words(self, partition_index: int) -> int:
        """``m_i_temp`` — allocated block words per loop iteration."""
        return self.block(partition_index).allocated_words

    def max_per_iteration_words(self) -> int:
        """``max_i m_i_temp`` — the denominator of the paper's Eq. 9."""
        return max(
            (block.allocated_words for block in self.blocks.values()), default=0
        )

    def total_wasted_words(self) -> int:
        """Total words lost to power-of-two rounding across all blocks."""
        return sum(block.wasted_words for block in self.blocks.values())

    def describe(self) -> str:
        """Multi-line summary of all blocks."""
        return "\n".join(
            self.blocks[index].describe() for index in self.partition_indices
        )


def build_memory_map(
    partitioning: TemporalPartitioning, round_to_power_of_two: bool = False
) -> MemoryMap:
    """Construct the :class:`MemoryMap` implied by *partitioning*.

    When *round_to_power_of_two* is set, each block is rounded up so the
    address generator can use concatenation instead of a multiplier
    (Section 3); the wastage is recorded per block.
    """
    graph = partitioning.graph
    memory_map = MemoryMap(rounded=round_to_power_of_two)

    for index in range(1, partitioning.partition_count + 1):
        block = MemoryBlock(partition_index=index)
        members = set(partitioning.tasks_in_partition(index))

        # Environment inputs and outputs of the partition's own tasks.
        for name in partitioning.tasks_in_partition(index):
            env_in = graph.env_input_words(name)
            if env_in:
                block.add_segment(
                    MemorySegment(
                        name=f"env_in:{name}",
                        words=env_in,
                        kind=SegmentKind.ENV_INPUT,
                        consumer_task=name,
                    )
                )
            env_out = graph.env_output_words(name)
            if env_out:
                block.add_segment(
                    MemorySegment(
                        name=f"env_out:{name}",
                        words=env_out,
                        kind=SegmentKind.ENV_OUTPUT,
                        producer_task=name,
                    )
                )

        # Cross-boundary flows touching or passing through this partition.
        for producer, consumer in graph.edges():
            words = graph.edge_words(producer, consumer)
            if words == 0:
                continue
            producer_partition = partitioning.partition_of(producer)
            consumer_partition = partitioning.partition_of(consumer)
            if producer_partition == consumer_partition:
                continue  # internal to some partition: lives in registers
            name = f"flow:{producer}->{consumer}"
            if producer in members and consumer_partition > index:
                block.add_segment(
                    MemorySegment(
                        name=name,
                        words=words,
                        kind=SegmentKind.CROSS_OUTPUT,
                        producer_task=producer,
                        consumer_task=consumer,
                    )
                )
            elif consumer in members and producer_partition < index:
                block.add_segment(
                    MemorySegment(
                        name=name,
                        words=words,
                        kind=SegmentKind.CROSS_INPUT,
                        producer_task=producer,
                        consumer_task=consumer,
                    )
                )
            elif producer_partition < index < consumer_partition:
                block.add_segment(
                    MemorySegment(
                        name=name,
                        words=words,
                        kind=SegmentKind.PASSTHROUGH,
                        producer_task=producer,
                        consumer_task=consumer,
                    )
                )

        if round_to_power_of_two:
            block.round_to_power_of_two()
        memory_map.blocks[index] = block
    return memory_map


def boundary_words_from_map(memory_map: MemoryMap, boundary: int) -> int:
    """Words live across *boundary* according to the memory map.

    This must agree with :meth:`TemporalPartitioning.boundary_words`; the
    redundancy is deliberate (the property tests cross-check the two
    implementations).
    """
    if boundary + 1 not in memory_map.blocks:
        raise MemoryMappingError(f"no partition after boundary {boundary}")
    following = memory_map.block(boundary + 1)
    live = 0
    for segment in following.segments:
        if segment.kind in (SegmentKind.CROSS_INPUT, SegmentKind.PASSTHROUGH):
            live += segment.words
    return live
