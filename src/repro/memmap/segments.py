"""Memory segments and memory blocks (Section 3, "Memory Access Synthesis").

Terminology follows the paper's Figure 6:

* a **memory segment** is the data of one inter-partition data flow (or the
  environment input/output of a partition) for a *single* loop iteration —
  e.g. ``M1``, ``M2``, ``M3`` in the figure;
* a **memory block** groups all segments a temporal partition touches for one
  iteration; its size is the partition's per-iteration memory requirement
  ``m_i_temp``;
* ``k`` copies of the block are laid out back to back in physical memory so
  that the partition can process ``k`` loop iterations per invocation, and
  the block may be rounded up to a power of two so that address generation
  degenerates to concatenation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional

from ..errors import MemoryMappingError
from ..units import next_power_of_two


class SegmentKind(str, Enum):
    """Why a segment exists."""

    ENV_INPUT = "env_input"       # data read from the environment/host
    ENV_OUTPUT = "env_output"     # data written back to the environment/host
    CROSS_INPUT = "cross_input"   # produced by an earlier partition, read here
    CROSS_OUTPUT = "cross_output" # produced here, read by a later partition
    PASSTHROUGH = "passthrough"   # produced earlier, consumed later, merely live here


@dataclass(frozen=True)
class MemorySegment:
    """One per-iteration data flow stored in board memory."""

    name: str
    words: int
    kind: SegmentKind
    producer_task: Optional[str] = None
    consumer_task: Optional[str] = None

    def __post_init__(self) -> None:
        if self.words < 0:
            raise MemoryMappingError(
                f"segment {self.name!r} has negative size {self.words}"
            )


@dataclass
class MemoryBlock:
    """The per-iteration memory block of one temporal partition.

    Segments are laid out contiguously in declaration order; each segment's
    offset within the block is recorded so the address-generation hardware
    (and the behavioural simulator) can find it.
    """

    partition_index: int
    segments: List[MemorySegment] = field(default_factory=list)
    offsets: Dict[str, int] = field(default_factory=dict)
    rounded_words: Optional[int] = None

    def add_segment(self, segment: MemorySegment) -> None:
        """Append *segment* to the block layout."""
        if segment.name in self.offsets:
            raise MemoryMappingError(
                f"duplicate segment {segment.name!r} in memory block of "
                f"partition {self.partition_index}"
            )
        self.offsets[segment.name] = self.natural_words
        self.segments.append(segment)

    @property
    def natural_words(self) -> int:
        """Block size without any rounding (the paper's ``m_i_temp``)."""
        return sum(segment.words for segment in self.segments)

    @property
    def allocated_words(self) -> int:
        """Block size actually allocated (power-of-two rounded when enabled)."""
        if self.rounded_words is not None:
            return self.rounded_words
        return self.natural_words

    @property
    def wasted_words(self) -> int:
        """Words lost to power-of-two rounding."""
        return self.allocated_words - self.natural_words

    def round_to_power_of_two(self) -> None:
        """Round the block size up to the next power of two (Section 3)."""
        self.rounded_words = next_power_of_two(max(1, self.natural_words))

    def clear_rounding(self) -> None:
        """Undo :meth:`round_to_power_of_two` (multiplier-based addressing)."""
        self.rounded_words = None

    def offset_of(self, segment_name: str) -> int:
        """Word offset of *segment_name* within the block."""
        try:
            return self.offsets[segment_name]
        except KeyError:
            raise MemoryMappingError(
                f"memory block of partition {self.partition_index} has no "
                f"segment {segment_name!r}"
            )

    def segment(self, segment_name: str) -> MemorySegment:
        """Look up a segment by name."""
        for segment in self.segments:
            if segment.name == segment_name:
                return segment
        raise MemoryMappingError(
            f"memory block of partition {self.partition_index} has no segment "
            f"{segment_name!r}"
        )

    def segments_of_kind(self, kind: SegmentKind) -> List[MemorySegment]:
        """All segments of the given kind."""
        return [segment for segment in self.segments if segment.kind is kind]

    def input_words(self) -> int:
        """Words the partition reads per iteration (environment + cross-boundary)."""
        return sum(
            segment.words
            for segment in self.segments
            if segment.kind in (SegmentKind.ENV_INPUT, SegmentKind.CROSS_INPUT)
        )

    def output_words(self) -> int:
        """Words the partition writes per iteration (environment + cross-boundary)."""
        return sum(
            segment.words
            for segment in self.segments
            if segment.kind in (SegmentKind.ENV_OUTPUT, SegmentKind.CROSS_OUTPUT)
        )

    def describe(self) -> str:
        """One-line summary (segment names with sizes)."""
        parts = ", ".join(f"{s.name}({s.words}w)" for s in self.segments)
        rounded = (
            f", rounded to {self.allocated_words}w" if self.rounded_words is not None else ""
        )
        return (
            f"block P{self.partition_index}: {self.natural_words} words "
            f"[{parts}]{rounded}"
        )
