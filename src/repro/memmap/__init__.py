"""Memory mapping and address generation for temporally partitioned designs.

Implements Section 3's memory-access synthesis: grouping the inter-partition
data flows of each temporal partition into a per-iteration memory block,
laying ``k`` copies of the block out in physical memory, optionally rounding
the block to a power of two, and generating addresses either with a
multiplier or by concatenation.
"""

from .address import AddressGenerator, AddressGeneratorCost, addressing_tradeoff
from .mapper import MemoryMap, boundary_words_from_map, build_memory_map
from .segments import MemoryBlock, MemorySegment, SegmentKind

__all__ = [
    "AddressGenerator",
    "AddressGeneratorCost",
    "MemoryBlock",
    "MemoryMap",
    "MemorySegment",
    "SegmentKind",
    "addressing_tradeoff",
    "boundary_words_from_map",
    "build_memory_map",
]
