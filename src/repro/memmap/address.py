"""Address generation for iterated memory blocks (Section 3).

Physical memory for a partition holds ``k`` consecutive copies of its memory
block, one per loop iteration.  The address of location ``a`` of segment
``Mi`` in iteration ``j`` is::

    address = j * block_size + offset_of(Mi) + a

The multiplication is expensive in both area and delay, so the paper rounds
the block size up to the nearest power of two and replaces the multiply with a
concatenation of the iteration index and the in-block offset::

    address = (j << log2(block_size_rounded)) | (offset_of(Mi) + a)

The trade-off is wasted memory (the rounding) versus a smaller, faster address
generator; both schemes are modelled here so the ablation bench can quantify
the trade.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, Tuple

from ..errors import MemoryMappingError
from ..hls.library import ComponentLibrary, xc4000_library
from ..units import is_power_of_two
from .segments import MemoryBlock


@dataclass(frozen=True)
class AddressGeneratorCost:
    """Area/delay cost of one address generator instance."""

    scheme: str
    area_clbs: int
    delay: float


class AddressGenerator:
    """Computes physical addresses for an iterated memory block.

    Parameters
    ----------
    block:
        The partition's :class:`MemoryBlock`.
    base_address:
        Physical word address where iteration 0 of the block starts.
    scheme:
        ``"concatenation"`` (requires a power-of-two block size, i.e. the
        block must have been rounded) or ``"multiplier"``.
    """

    def __init__(
        self, block: MemoryBlock, base_address: int = 0, scheme: str = "concatenation"
    ) -> None:
        if scheme not in ("concatenation", "multiplier"):
            raise MemoryMappingError(f"unknown addressing scheme {scheme!r}")
        if base_address < 0:
            raise MemoryMappingError("base_address must be non-negative")
        if scheme == "concatenation" and not is_power_of_two(max(1, block.allocated_words)):
            raise MemoryMappingError(
                "concatenation addressing requires a power-of-two block size; "
                "round the block first (MemoryBlock.round_to_power_of_two)"
            )
        self.block = block
        self.base_address = base_address
        self.scheme = scheme

    # ------------------------------------------------------------------
    # Address computation
    # ------------------------------------------------------------------

    def address(self, iteration: int, segment_name: str, location: int) -> int:
        """Physical address of ``segment[location]`` in loop iteration *iteration*."""
        if iteration < 0:
            raise MemoryMappingError("iteration index must be non-negative")
        segment = self.block.segment(segment_name)
        if not 0 <= location < max(1, segment.words):
            raise MemoryMappingError(
                f"location {location} outside segment {segment_name!r} "
                f"(size {segment.words})"
            )
        offset = self.block.offset_of(segment_name) + location
        block_words = self.block.allocated_words
        if self.scheme == "multiplier":
            return self.base_address + iteration * block_words + offset
        shift = int(math.log2(max(1, block_words)))
        return self.base_address + ((iteration << shift) | offset)

    def iter_segment_addresses(
        self, iteration: int, segment_name: str
    ) -> Iterator[int]:
        """Addresses of every word of a segment in a given iteration."""
        segment = self.block.segment(segment_name)
        for location in range(segment.words):
            yield self.address(iteration, segment_name, location)

    def footprint_words(self, iterations: int) -> int:
        """Physical words occupied by *iterations* copies of the block."""
        if iterations < 0:
            raise MemoryMappingError("iterations must be non-negative")
        return iterations * self.block.allocated_words

    def address_range(self, iterations: int) -> Tuple[int, int]:
        """(first, last+1) physical addresses touched by *iterations* iterations."""
        return (self.base_address, self.base_address + self.footprint_words(iterations))

    # ------------------------------------------------------------------
    # Hardware cost model
    # ------------------------------------------------------------------

    def hardware_cost(
        self, address_bits: int = 24, library: ComponentLibrary = None
    ) -> AddressGeneratorCost:
        """Estimated area/delay of the address-generation hardware.

        The multiplier scheme needs an ``index x block_size`` multiplier plus a
        final adder; the concatenation scheme only needs the final adder (the
        iteration index is wired into the upper address bits).
        """
        from ..dfg.operations import OpKind

        library = library or xc4000_library()
        adder = library.component_for(OpKind.ADD, address_bits)
        if self.scheme == "concatenation":
            return AddressGeneratorCost(
                scheme=self.scheme, area_clbs=adder.area_clbs, delay=adder.delay
            )
        index_bits = max(1, address_bits - int(math.log2(max(2, self.block.allocated_words))))
        multiplier = library.component_for(OpKind.MUL, max(index_bits, 8))
        return AddressGeneratorCost(
            scheme=self.scheme,
            area_clbs=adder.area_clbs + multiplier.area_clbs,
            delay=adder.delay + multiplier.delay,
        )


def addressing_tradeoff(block: MemoryBlock, address_bits: int = 24) -> dict:
    """Quantify the concatenation-vs-multiplier trade-off for one block.

    Returns a dictionary with the wasted words under rounding and the
    area/delay of both address generators — the data behind the A1 ablation.
    """
    rounded = MemoryBlock(partition_index=block.partition_index)
    for segment in block.segments:
        rounded.add_segment(segment)
    rounded.round_to_power_of_two()

    concat = AddressGenerator(rounded, scheme="concatenation")
    mult = AddressGenerator(block, scheme="multiplier")
    concat_cost = concat.hardware_cost(address_bits)
    mult_cost = mult.hardware_cost(address_bits)
    return {
        "natural_words": block.natural_words,
        "rounded_words": rounded.allocated_words,
        "wasted_words": rounded.wasted_words,
        "concatenation_area_clbs": concat_cost.area_clbs,
        "concatenation_delay": concat_cost.delay,
        "multiplier_area_clbs": mult_cost.area_clbs,
        "multiplier_delay": mult_cost.delay,
    }
