"""repro — temporal partitioning and loop fission for RTR FPGA synthesis.

A from-scratch Python reproduction of *"An Automated Temporal Partitioning and
Loop Fission Approach for FPGA Based Reconfigurable Synthesis of DSP
Applications"* (Kaul, Vemuri, Govindarajan, Ouaiss — DAC 1999).

The public API is organised by subsystem:

* :mod:`repro.arch` — target architecture models (FPGA, memory, bus, board);
* :mod:`repro.dfg` / :mod:`repro.taskgraph` — behaviour specifications;
* :mod:`repro.hls` — the high-level-synthesis estimator and RTL generation;
* :mod:`repro.ilp` — the ILP modelling layer and solvers;
* :mod:`repro.partition` — the ILP temporal partitioner and heuristic baselines;
* :mod:`repro.memmap` — memory blocks and address generation;
* :mod:`repro.fission` — loop fission, FDH/IDH strategies and throughput models;
* :mod:`repro.synth` — the end-to-end design flow and design artefacts;
* :mod:`repro.simulate` — execution simulation of static and RTR designs;
* :mod:`repro.jpeg` — the JPEG/DCT case study;
* :mod:`repro.workloads` — the registry of named, parameterised scenarios;
* :mod:`repro.explore` — design-space exploration: Pareto search over the
  joint (workload, system, CT, partitioner, sequencing) space;
* :mod:`repro.experiments` — drivers regenerating the paper's tables and figures.

Quickstart::

    from repro.arch import paper_case_study_system
    from repro.jpeg import build_dct_task_graph
    from repro.synth import DesignFlow

    system = paper_case_study_system()
    design = DesignFlow(system).build(build_dct_task_graph())
    print(design.describe())
"""

from . import (
    arch,
    dfg,
    errors,
    experiments,
    explore,
    fission,
    hls,
    ilp,
    jpeg,
    memmap,
    partition,
    runtime,
    simulate,
    synth,
    taskgraph,
    units,
    workloads,
)
from .arch import paper_case_study_system
from .jpeg import build_dct_task_graph
from .partition import IlpTemporalPartitioner, ListTemporalPartitioner, PartitionProblem
from .runtime import EngineConfig, PartitionEngine
from .synth import DesignFlow, FlowEngine, FlowJob, FlowOptions
from .workloads import get_workload, register_workload, workload_names

__version__ = "1.9.0"

__all__ = [
    "DesignFlow",
    "EngineConfig",
    "FlowEngine",
    "FlowJob",
    "FlowOptions",
    "IlpTemporalPartitioner",
    "ListTemporalPartitioner",
    "PartitionEngine",
    "PartitionProblem",
    "__version__",
    "arch",
    "build_dct_task_graph",
    "dfg",
    "errors",
    "experiments",
    "explore",
    "fission",
    "get_workload",
    "hls",
    "ilp",
    "jpeg",
    "memmap",
    "paper_case_study_system",
    "partition",
    "register_workload",
    "runtime",
    "simulate",
    "synth",
    "taskgraph",
    "units",
    "workload_names",
    "workloads",
]
