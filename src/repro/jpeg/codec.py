"""A complete JPEG-style codec built from the library's stages.

The encoder mirrors the paper's co-design decomposition: block split -> DCT
(the hardware subtask) -> quantisation -> zig-zag + run-length -> Huffman
coding (the software subtasks).  The decoder inverts every stage so that
round-trip tests and PSNR measurements are possible.  The codec is the
functional counterpart of the timing experiments: it demonstrates that the
task decomposition used for partitioning computes the right thing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

import numpy as np

from ..errors import CodecError
from .dct import forward_dct, inverse_dct
from .huffman import HuffmanCode
from .quantize import default_table, dequantize, quantize, scale_table
from .zigzag import inverse_zigzag, run_length_decode, run_length_encode, zigzag


@dataclass
class EncodedImage:
    """The result of encoding one greyscale image."""

    width: int
    height: int
    block_size: int
    quality: int
    bits: str
    huffman: HuffmanCode
    symbol_count: int
    table: np.ndarray
    block_count: int = 0
    statistics: Dict[str, float] = field(default_factory=dict)

    @property
    def compressed_bits(self) -> int:
        """Size of the entropy-coded stream in bits."""
        return len(self.bits)

    @property
    def raw_bits(self) -> int:
        """Size of the raw 8-bit image in bits."""
        return self.width * self.height * 8

    @property
    def compression_ratio(self) -> float:
        """Raw size divided by compressed size."""
        if self.compressed_bits == 0:
            return float("inf")
        return self.raw_bits / self.compressed_bits


class JpegLikeCodec:
    """Encoder/decoder for greyscale images using square DCT blocks."""

    def __init__(self, block_size: int = 4, quality: int = 75) -> None:
        if block_size < 2:
            raise CodecError("block_size must be at least 2")
        if not 1 <= quality <= 100:
            raise CodecError("quality must be between 1 and 100")
        self.block_size = block_size
        self.quality = quality
        self.table = scale_table(default_table(block_size), quality)

    # ------------------------------------------------------------------
    # Blocking
    # ------------------------------------------------------------------

    def split_blocks(self, image: np.ndarray) -> Tuple[np.ndarray, int, int]:
        """Split an image into blocks, padding to a multiple of the block size.

        Returns ``(blocks, padded_height, padded_width)`` where *blocks* has
        shape ``(count, block_size, block_size)`` in row-major block order.
        """
        array = np.asarray(image, dtype=np.float64)
        if array.ndim != 2:
            raise CodecError(f"expected a 2-D greyscale image, got shape {array.shape}")
        size = self.block_size
        padded_height = -(-array.shape[0] // size) * size
        padded_width = -(-array.shape[1] // size) * size
        padded = np.zeros((padded_height, padded_width), dtype=np.float64)
        padded[: array.shape[0], : array.shape[1]] = array
        blocks = (
            padded.reshape(padded_height // size, size, padded_width // size, size)
            .swapaxes(1, 2)
            .reshape(-1, size, size)
        )
        return blocks, padded_height, padded_width

    def merge_blocks(
        self, blocks: np.ndarray, padded_height: int, padded_width: int,
        height: int, width: int,
    ) -> np.ndarray:
        """Inverse of :meth:`split_blocks` (crops the padding away)."""
        size = self.block_size
        rows = padded_height // size
        columns = padded_width // size
        image = (
            np.asarray(blocks)
            .reshape(rows, columns, size, size)
            .swapaxes(1, 2)
            .reshape(padded_height, padded_width)
        )
        return image[:height, :width]

    # ------------------------------------------------------------------
    # Encode / decode
    # ------------------------------------------------------------------

    def encode(self, image: np.ndarray) -> EncodedImage:
        """Encode a greyscale image (values 0..255)."""
        array = np.asarray(image, dtype=np.float64)
        blocks, padded_height, padded_width = self.split_blocks(array)
        level_shift = 128.0
        symbols: List[Tuple[int, int]] = []
        per_block_symbols: List[List[Tuple[int, int]]] = []
        for block in blocks:
            coefficients = forward_dct(block - level_shift, self.block_size)
            levels = quantize(coefficients, self.table)
            pairs = run_length_encode(zigzag(levels))
            per_block_symbols.append(pairs)
            symbols.extend(pairs)
        if not symbols:
            raise CodecError("image produced no symbols to encode")
        huffman = HuffmanCode.from_symbols(symbols)
        bits = "".join(huffman.encode(pairs) for pairs in per_block_symbols)
        statistics = {
            "mean_bits_per_block": len(bits) / max(1, len(blocks)),
            "symbols_per_block": len(symbols) / max(1, len(blocks)),
        }
        return EncodedImage(
            width=array.shape[1],
            height=array.shape[0],
            block_size=self.block_size,
            quality=self.quality,
            bits=bits,
            huffman=huffman,
            symbol_count=len(symbols),
            table=self.table.copy(),
            block_count=len(blocks),
            statistics=statistics,
        )

    def decode(self, encoded: EncodedImage) -> np.ndarray:
        """Decode an :class:`EncodedImage` back to a greyscale image."""
        if encoded.block_size != self.block_size:
            raise CodecError(
                f"codec block size {self.block_size} does not match the encoded "
                f"stream's {encoded.block_size}"
            )
        symbols = encoded.huffman.decode(encoded.bits)
        # Split the symbol stream back into per-block runs at the (0, 0) EOB marker.
        blocks_symbols: List[List[Tuple[int, int]]] = []
        current: List[Tuple[int, int]] = []
        for symbol in symbols:
            current.append(tuple(symbol))
            if tuple(symbol) == (0, 0):
                blocks_symbols.append(current)
                current = []
        if current:
            raise CodecError("entropy stream does not end on a block boundary")
        size = self.block_size
        level_shift = 128.0
        decoded_blocks = []
        for pairs in blocks_symbols:
            sequence = run_length_decode(pairs, size * size)
            levels = inverse_zigzag(sequence, size)
            coefficients = dequantize(levels, encoded.table)
            block = inverse_dct(coefficients, size) + level_shift
            decoded_blocks.append(block)
        padded_height = -(-encoded.height // size) * size
        padded_width = -(-encoded.width // size) * size
        expected_blocks = (padded_height // size) * (padded_width // size)
        if len(decoded_blocks) != expected_blocks:
            raise CodecError(
                f"decoded {len(decoded_blocks)} blocks, expected {expected_blocks}"
            )
        image = self.merge_blocks(
            np.array(decoded_blocks), padded_height, padded_width,
            encoded.height, encoded.width,
        )
        return np.clip(image, 0.0, 255.0)

    # ------------------------------------------------------------------
    # Quality metrics
    # ------------------------------------------------------------------

    @staticmethod
    def psnr(original: np.ndarray, reconstructed: np.ndarray, peak: float = 255.0) -> float:
        """Peak signal-to-noise ratio in dB between two images."""
        original = np.asarray(original, dtype=np.float64)
        reconstructed = np.asarray(reconstructed, dtype=np.float64)
        if original.shape != reconstructed.shape:
            raise CodecError(
                f"images differ in shape: {original.shape} vs {reconstructed.shape}"
            )
        mse = float(np.mean((original - reconstructed) ** 2))
        if mse == 0:
            return float("inf")
        return 10.0 * np.log10(peak * peak / mse)

    def roundtrip_psnr(self, image: np.ndarray) -> float:
        """Encode + decode *image* and report the PSNR against the original."""
        return self.psnr(image, self.decode(self.encode(image)))
