"""Quantisation stage of the JPEG-style codec (software side of the co-design)."""

from __future__ import annotations

import numpy as np

from ..errors import CodecError

#: The standard JPEG luminance quantisation table (8x8, quality 50).
JPEG_LUMINANCE_8x8 = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def default_table(size: int = 4) -> np.ndarray:
    """A quantisation table for *size* x *size* blocks.

    For 8x8 blocks the standard JPEG luminance table is returned; for other
    sizes the table is derived by sampling the 8x8 table uniformly, which
    keeps the characteristic low-frequency/high-frequency weighting.
    """
    if size < 1:
        raise CodecError("block size must be positive")
    if size == 8:
        return JPEG_LUMINANCE_8x8.copy()
    indices = np.linspace(0, 7, size).round().astype(int)
    return JPEG_LUMINANCE_8x8[np.ix_(indices, indices)].copy()


def scale_table(table: np.ndarray, quality: int) -> np.ndarray:
    """Scale a quantisation table for a JPEG-style *quality* factor (1-100)."""
    if not 1 <= quality <= 100:
        raise CodecError("quality must be between 1 and 100")
    table = np.asarray(table, dtype=np.float64)
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    scaled = np.floor((table * scale + 50.0) / 100.0)
    return np.clip(scaled, 1.0, 255.0)


def quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantise DCT coefficients (round of coefficient / step)."""
    coefficients = np.asarray(coefficients, dtype=np.float64)
    table = np.asarray(table, dtype=np.float64)
    if coefficients.shape != table.shape:
        raise CodecError(
            f"coefficients {coefficients.shape} and table {table.shape} differ in shape"
        )
    if np.any(table <= 0):
        raise CodecError("quantisation steps must be positive")
    return np.round(coefficients / table).astype(np.int64)


def dequantize(levels: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reconstruct coefficients from quantised levels."""
    levels = np.asarray(levels, dtype=np.float64)
    table = np.asarray(table, dtype=np.float64)
    if levels.shape != table.shape:
        raise CodecError(
            f"levels {levels.shape} and table {table.shape} differ in shape"
        )
    return levels * table
