"""The JPEG case study: DCT task graph, codec stages and workloads.

Provides the functional JPEG-style codec (DCT, quantisation, zig-zag,
run-length, Huffman), the 32-task DCT task graph of Figure 8 with the paper's
reported costs, the image workload ladder behind Tables 1-2, and the
hardware/software co-design functional model.
"""

from .codec import EncodedImage, JpegLikeCodec
from .codesign import HardwareExecutionTrace, JpegCodesign, hardware_software_split
from .dct import (
    dct_accuracy,
    dct_matrix,
    forward_dct,
    forward_dct_by_vector_products,
    forward_dct_fixed_point,
    forward_dct_two_stage,
    inverse_dct,
    quantise_coefficients,
    vector_product,
)
from .huffman import HuffmanCode, encode_with_code
from .quantize import default_table, dequantize, quantize, scale_table
from .taskgraph_builder import (
    DCT_SIZE,
    PARTITION1_CLOCK,
    PARTITION1_CYCLES,
    PARTITION23_CLOCK,
    PARTITION23_CYCLES,
    STATIC_CLOCK,
    STATIC_CYCLES,
    T1_CLBS,
    T1_DELAY,
    T2_CLBS,
    T2_DELAY,
    DctTaskCosts,
    build_dct_task_graph,
    expected_paper_partitioning,
    rtr_partition_delays,
    static_design_delay,
    t1_task_name,
    t2_task_name,
)
from .workload import (
    LARGEST_IMAGE_BLOCKS,
    ImageWorkload,
    synthetic_image,
    table_workloads,
    workload_block_counts,
    workload_from_blocks,
    workload_image,
)
from .zigzag import inverse_zigzag, run_length_decode, run_length_encode, zigzag, zigzag_order

__all__ = [
    "DCT_SIZE",
    "DctTaskCosts",
    "EncodedImage",
    "HardwareExecutionTrace",
    "HuffmanCode",
    "ImageWorkload",
    "JpegCodesign",
    "JpegLikeCodec",
    "LARGEST_IMAGE_BLOCKS",
    "PARTITION1_CLOCK",
    "PARTITION1_CYCLES",
    "PARTITION23_CLOCK",
    "PARTITION23_CYCLES",
    "STATIC_CLOCK",
    "STATIC_CYCLES",
    "T1_CLBS",
    "T1_DELAY",
    "T2_CLBS",
    "T2_DELAY",
    "build_dct_task_graph",
    "dct_accuracy",
    "dct_matrix",
    "default_table",
    "dequantize",
    "encode_with_code",
    "expected_paper_partitioning",
    "forward_dct",
    "forward_dct_by_vector_products",
    "forward_dct_fixed_point",
    "forward_dct_two_stage",
    "hardware_software_split",
    "inverse_dct",
    "inverse_zigzag",
    "quantise_coefficients",
    "quantize",
    "rtr_partition_delays",
    "run_length_decode",
    "run_length_encode",
    "scale_table",
    "static_design_delay",
    "synthetic_image",
    "t1_task_name",
    "t2_task_name",
    "table_workloads",
    "vector_product",
    "workload_block_counts",
    "workload_from_blocks",
    "workload_image",
    "zigzag",
    "zigzag_order",
]
