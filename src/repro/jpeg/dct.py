"""Discrete Cosine Transform as two consecutive matrix multiplications.

The paper models the DCT "in the form of 32 vector products": a 4x4 2-D DCT
is ``Y = C . X . C^T``, i.e. two consecutive 4x4 matrix multiplications, each
of which is 16 vector products.  The first multiplication's products are the
paper's T1 tasks, the second's are the T2 tasks.

This module provides the reference floating-point transform (any block size,
with 4 and 8 as the common cases), the explicit two-stage formulation the
hardware task graph mirrors, a fixed-point variant matching the bit-widths the
case study quotes (9-bit first-stage operands, 17-bit second-stage operands),
and the inverse transform used by the codec round-trip tests.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from ..errors import CodecError


def dct_matrix(size: int = 4) -> np.ndarray:
    """The orthonormal type-II DCT matrix ``C`` of the given *size*.

    ``C[0, :] = sqrt(1/size)`` and
    ``C[k, n] = sqrt(2/size) * cos((2n+1) k pi / (2 size))`` for ``k > 0``.
    """
    if size < 1:
        raise CodecError(f"DCT size must be positive, got {size}")
    matrix = np.zeros((size, size), dtype=np.float64)
    for k in range(size):
        scale = math.sqrt(1.0 / size) if k == 0 else math.sqrt(2.0 / size)
        for n in range(size):
            matrix[k, n] = scale * math.cos((2 * n + 1) * k * math.pi / (2 * size))
    return matrix


def _check_block(block: np.ndarray, size: int) -> np.ndarray:
    array = np.asarray(block, dtype=np.float64)
    if array.shape != (size, size):
        raise CodecError(f"expected a {size}x{size} block, got shape {array.shape}")
    return array


def forward_dct(block: np.ndarray, size: int = 4) -> np.ndarray:
    """2-D forward DCT of one *size* x *size* block (``C . X . C^T``)."""
    array = _check_block(block, size)
    c = dct_matrix(size)
    return c @ array @ c.T


def inverse_dct(coefficients: np.ndarray, size: int = 4) -> np.ndarray:
    """2-D inverse DCT (``C^T . Y . C``)."""
    array = _check_block(coefficients, size)
    c = dct_matrix(size)
    return c.T @ array @ c


def forward_dct_two_stage(block: np.ndarray, size: int = 4) -> Tuple[np.ndarray, np.ndarray]:
    """The DCT split into its two matrix multiplications.

    Returns ``(T, Y)`` where ``T = C . X`` (the 16 T1 vector products for a
    4x4 block) and ``Y = T . C^T`` (the 16 T2 vector products).  The hardware
    task graph of Figure 8 evaluates exactly these 32 dot products.
    """
    array = _check_block(block, size)
    c = dct_matrix(size)
    stage_one = c @ array
    stage_two = stage_one @ c.T
    return stage_one, stage_two


def vector_product(values: np.ndarray, coefficients: np.ndarray) -> float:
    """A single vector product — the computation of one task in Figure 8."""
    values = np.asarray(values, dtype=np.float64).ravel()
    coefficients = np.asarray(coefficients, dtype=np.float64).ravel()
    if values.shape != coefficients.shape:
        raise CodecError(
            f"vector product operands must have equal length, got "
            f"{values.shape} and {coefficients.shape}"
        )
    return float(np.dot(values, coefficients))


def forward_dct_by_vector_products(block: np.ndarray, size: int = 4) -> np.ndarray:
    """Forward DCT computed literally as 2 x size^2 vector products.

    This is the functional model of the hardware task graph: the first
    ``size^2`` products compute ``T = C . X`` row by row, the second
    ``size^2`` compute ``Y = T . C^T``.  It must agree with
    :func:`forward_dct` to floating-point accuracy (a property test checks
    this), which demonstrates the task decomposition is faithful.
    """
    array = _check_block(block, size)
    c = dct_matrix(size)
    stage_one = np.zeros((size, size), dtype=np.float64)
    for row in range(size):
        for column in range(size):
            stage_one[row, column] = vector_product(c[row, :], array[:, column])
    result = np.zeros((size, size), dtype=np.float64)
    for row in range(size):
        for column in range(size):
            result[row, column] = vector_product(stage_one[row, :], c[column, :])
    return result


# ---------------------------------------------------------------------------
# Fixed-point model (the bit-widths of the case study)
# ---------------------------------------------------------------------------

def quantise_coefficients(size: int = 4, fraction_bits: int = 7) -> np.ndarray:
    """DCT matrix scaled to signed fixed point with *fraction_bits* fraction bits.

    With 7 fraction bits the coefficients fit in 9 signed bits (the "9 bit
    multipliers" of the static design), since ``|C[k, n]| <= sqrt(2/size) < 1``.
    """
    if fraction_bits < 1:
        raise CodecError("fraction_bits must be at least 1")
    return np.round(dct_matrix(size) * (1 << fraction_bits)).astype(np.int64)


def forward_dct_fixed_point(
    block: np.ndarray, size: int = 4, fraction_bits: int = 7, input_bits: int = 8
) -> np.ndarray:
    """Fixed-point two-stage DCT mirroring the case-study datapath widths.

    * inputs are *input_bits*-bit signed integers,
    * first-stage products use ``input_bits x (fraction_bits + 2)``-bit
      multipliers (the 9-bit multipliers of the paper),
    * the first-stage result is kept at 17 bits (the T2 operand width),
    * the final result is rescaled back by ``2 * fraction_bits``.

    Returns the integer DCT coefficients (rounded).  Accuracy against the
    floating-point DCT is verified by tests (max absolute error of a couple of
    least-significant bits for 8-bit inputs).
    """
    array = np.asarray(block)
    if array.shape != (size, size):
        raise CodecError(f"expected a {size}x{size} block, got shape {array.shape}")
    limit = 1 << (input_bits - 1)
    if np.any(array < -limit) or np.any(array >= limit):
        raise CodecError(
            f"block values must fit in {input_bits}-bit signed integers"
        )
    coefficients = quantise_coefficients(size, fraction_bits)
    pixels = array.astype(np.int64)
    stage_one = coefficients @ pixels               # up to ~17 bits
    stage_two = stage_one @ coefficients.T          # up to ~26 bits
    scale = 1 << (2 * fraction_bits)
    return np.round(stage_two / scale).astype(np.int64)


def dct_accuracy(block: np.ndarray, size: int = 4, fraction_bits: int = 7) -> float:
    """Maximum absolute error of the fixed-point DCT against the reference."""
    exact = forward_dct(block, size)
    fixed = forward_dct_fixed_point(block, size, fraction_bits)
    return float(np.max(np.abs(exact - fixed)))
