"""Image workloads for the case-study tables.

The scanned paper's Tables 1 and 2 list image files in decreasing size order;
the only size stated explicitly in the running text is the largest —
245,760 blocks of 4x4 DCT (about a 1.4-megapixel greyscale image) — plus a row
the text calls "the XV file".  Since the individual file names/sizes are not
legible, we define a synthetic workload ladder that spans the same range
(about one thousand to 245,760 blocks), including the stated largest size, and
document the substitution (see DESIGN.md).  Only the *number of blocks*
enters the timing model; pixel content is irrelevant for Tables 1-2 and is
generated synthetically only for the functional codec examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..errors import SpecificationError
from .taskgraph_builder import DCT_SIZE

#: Number of 4x4 DCT blocks in the largest image of Tables 1-2 (stated in the
#: paper's text).
LARGEST_IMAGE_BLOCKS = 245_760


@dataclass(frozen=True)
class ImageWorkload:
    """One row of the case-study tables: a named image of a given size."""

    name: str
    width: int
    height: int
    block_size: int = DCT_SIZE

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise SpecificationError("image dimensions must be positive")
        if self.block_size <= 0:
            raise SpecificationError("block size must be positive")

    @property
    def pixels(self) -> int:
        """Total pixel count."""
        return self.width * self.height

    @property
    def block_count(self) -> int:
        """Number of DCT blocks the image decomposes into (with padding)."""
        blocks_x = -(-self.width // self.block_size)
        blocks_y = -(-self.height // self.block_size)
        return blocks_x * blocks_y

    def describe(self) -> str:
        """One-line human readable summary."""
        return f"{self.name}: {self.width}x{self.height} ({self.block_count} blocks)"


def workload_from_blocks(name: str, block_count: int, block_size: int = DCT_SIZE) -> ImageWorkload:
    """Build a workload with exactly *block_count* blocks, as square as possible.

    The block count is factored into ``blocks_x * blocks_y`` with the factors
    as close to the square root as the divisors allow (falling back to a
    1 x N strip for prime counts), so the block count — the only quantity that
    enters the timing model — is always exact.
    """
    if block_count < 1:
        raise SpecificationError("block_count must be positive")
    best_divisor = 1
    limit = int(np.sqrt(block_count))
    for candidate in range(limit, 0, -1):
        if block_count % candidate == 0:
            best_divisor = candidate
            break
    blocks_y = best_divisor
    blocks_x = block_count // best_divisor
    return ImageWorkload(
        name=name,
        width=blocks_x * block_size,
        height=blocks_y * block_size,
        block_size=block_size,
    )


def table_workloads() -> List[ImageWorkload]:
    """The workload ladder used for Tables 1 and 2 (decreasing size order).

    The largest row is the paper's stated 245,760-block image; the remaining
    rows halve the size down to about a thousand blocks, covering the regime
    where the IDH improvement shrinks towards zero.  The "xv_file" row mirrors
    the row the paper's text singles out.
    """
    sizes: List[Tuple[str, int]] = [
        ("image_a_1920x2048", 245_760),
        ("xv_file", 122_880),
        ("image_b", 61_440),
        ("image_c", 30_720),
        ("image_d", 15_360),
        ("image_e", 7_680),
        ("image_f", 3_840),
        ("image_g", 1_024),
    ]
    return [workload_from_blocks(name, blocks) for name, blocks in sizes]


def workload_block_counts() -> List[int]:
    """Block counts of :func:`table_workloads`, largest first."""
    return [workload.block_count for workload in table_workloads()]


def synthetic_image(
    width: int,
    height: int,
    seed: int = 0,
    pattern: str = "gradient+noise",
) -> np.ndarray:
    """Generate a synthetic greyscale image (values 0..255).

    Patterns:

    * ``"gradient+noise"`` — smooth gradients plus low-amplitude noise, a
      reasonable stand-in for natural-image statistics (compresses well);
    * ``"noise"`` — white noise (compresses poorly; worst case for the codec);
    * ``"flat"`` — a constant image (best case).
    """
    if width <= 0 or height <= 0:
        raise SpecificationError("image dimensions must be positive")
    rng = np.random.default_rng(seed)
    if pattern == "flat":
        return np.full((height, width), 128.0)
    if pattern == "noise":
        return rng.uniform(0.0, 255.0, size=(height, width))
    if pattern == "gradient+noise":
        y = np.linspace(0.0, 1.0, height)[:, None]
        x = np.linspace(0.0, 1.0, width)[None, :]
        base = 96.0 * y + 96.0 * x + 32.0 * np.sin(8.0 * np.pi * x) * np.cos(6.0 * np.pi * y)
        noise = rng.normal(0.0, 6.0, size=(height, width))
        return np.clip(base + 32.0 + noise, 0.0, 255.0)
    raise SpecificationError(f"unknown image pattern {pattern!r}")


def workload_image(workload: ImageWorkload, seed: int = 0, pattern: str = "gradient+noise") -> np.ndarray:
    """A synthetic image with the dimensions of *workload*."""
    return synthetic_image(workload.width, workload.height, seed=seed, pattern=pattern)
