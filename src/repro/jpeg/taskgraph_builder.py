"""The DCT task graph of the case study (Figure 8).

The 4x4 DCT is decomposed into 32 vector-product tasks:

* 16 **T1** tasks compute ``T = C . X`` (one task per element of the
  intermediate matrix); their operands are 8/9-bit values;
* 16 **T2** tasks compute ``Y = T . C^T``; their operands are the 17-bit T1
  results, so they are larger and slower.

Each T2 task for output element ``(r, c)`` consumes the four T1 results of
row ``r``; a "collection" of 8 tasks (the 4 T1 + 4 T2 of one row) produces
one row of the output matrix, and the graph contains four such collections.

Data volumes: the 16-word input block is charged to the T1 tasks
(``B(env, t) = 1`` each), each T2 task writes one output word
(``B(t, env) = 1``), and each T1 result is one word of inter-partition data.
Because a T1 result fans out to four T2 tasks but is stored once, only the
edge to the *first* consumer carries the word (the remaining fan-out edges
carry 0 words); this keeps the edge-based memory accounting of the ILP equal
to the number of distinct words, matching the paper's counts (32 words for
partition 1, 16 for partitions 2 and 3, hence k = 65536/32 = 2048).

Costs default to the values the paper reports from its DSS estimator
(70 CLBs / 68 cycles @ 50 ns for T1, 180 CLBs / 36 cycles @ 70 ns for T2 —
cycle counts are per 16- and 8-task partition respectively, so the per-task
delays used here are the partition delays divided evenly among a row's
tasks); alternatively the library's own estimator can be used.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.device import FpgaDevice
from ..dfg.builders import vector_product_dfg
from ..errors import SpecificationError
from ..hls.estimator import TaskEstimator
from ..taskgraph.graph import TaskGraph
from ..taskgraph.task import Task, TaskCost, clb_cost
from ..units import ns

#: Matrix dimension of the case-study DCT.
DCT_SIZE = 4

#: Paper-reported synthesis estimates for the two task types.
T1_CLBS = 70
T2_CLBS = 180

#: Paper-reported partition-level schedules after synthesis: partition 1 (all
#: 16 T1 tasks) needs 68 cycles at 50 ns; partitions 2 and 3 (8 T2 tasks each)
#: need 36 cycles at 70 ns.
PARTITION1_CYCLES = 68
PARTITION1_CLOCK = ns(50)
PARTITION23_CYCLES = 36
PARTITION23_CLOCK = ns(70)

#: Static design: the whole DCT synthesised once, 160 cycles at 100 ns.
STATIC_CYCLES = 160
STATIC_CLOCK = ns(100)

#: Per-task delays ``D(t)`` used in the ILP.  Tasks of one type share a
#: synthesised datapath inside their partition and execute sequentially on it,
#: so the delay a partition incurs for "having tasks of type X" is the type's
#: full schedule (68 cycles @ 50 ns for the 16 T1 tasks, 36 cycles @ 70 ns for
#: a row-pair of 8 T2 tasks).  Because every root-to-leaf path of the DCT
#: graph visits exactly one task of each type, using the type schedule as the
#: per-task ``D(t)`` makes the ILP's path-delay objective (Eq. 7) coincide
#: exactly with the post-synthesis partition delays the paper reports —
#: including the penalty a list-based partitioner pays for mixing a T2 task
#: into partition 1 (3400 + 2520 = 5920 ns).
T1_DELAY = PARTITION1_CYCLES * PARTITION1_CLOCK
T2_DELAY = PARTITION23_CYCLES * PARTITION23_CLOCK


@dataclass(frozen=True)
class DctTaskCosts:
    """Costs used for the 32 DCT tasks."""

    t1: TaskCost
    t2: TaskCost

    @classmethod
    def paper(cls) -> "DctTaskCosts":
        """The paper's reported estimates (the default)."""
        return cls(
            t1=clb_cost(
                T1_CLBS, T1_DELAY,
                cycles=PARTITION1_CYCLES, clock_period=PARTITION1_CLOCK,
            ),
            t2=clb_cost(
                T2_CLBS, T2_DELAY,
                cycles=PARTITION23_CYCLES, clock_period=PARTITION23_CLOCK,
            ),
        )

    @classmethod
    def from_estimator(
        cls, device: FpgaDevice, max_clock_period: float = ns(100)
    ) -> "DctTaskCosts":
        """Costs produced by the library's own HLS estimator (the substitute)."""
        estimator = TaskEstimator(device, max_clock_period=max_clock_period)
        t1_estimate = estimator.estimate_dfg(
            vector_product_dfg(DCT_SIZE, input_width=8, coefficient_width=9, name="T1"),
            env_io_words=5,
        )
        t2_estimate = estimator.estimate_dfg(
            vector_product_dfg(DCT_SIZE, input_width=17, coefficient_width=9, name="T2"),
            env_io_words=5,
        )
        return cls(t1=t1_estimate.to_task_cost(), t2=t2_estimate.to_task_cost())


def t1_task_name(row: int, column: int) -> str:
    """Name of the T1 task computing intermediate element ``T[row, column]``."""
    return f"t1_r{row}c{column}"


def t2_task_name(row: int, column: int) -> str:
    """Name of the T2 task computing output element ``Y[row, column]``."""
    return f"t2_r{row}c{column}"


def build_dct_task_graph(
    costs: Optional[DctTaskCosts] = None,
    attach_dfgs: bool = False,
    name: str = "dct4x4",
) -> TaskGraph:
    """Build the 32-task DCT graph of Figure 8.

    Parameters
    ----------
    costs:
        Task costs (defaults to the paper's reported estimates).
    attach_dfgs:
        Whether to attach the vector-product DFGs to the tasks (needed when
        re-estimating with the library's HLS estimator or generating RTL).
    """
    costs = costs or DctTaskCosts.paper()
    graph = TaskGraph(name)
    size = DCT_SIZE

    # T1 tasks: element (r, c) of T = C . X, computed from column c of X.
    for row in range(size):
        for column in range(size):
            dfg = (
                vector_product_dfg(size, input_width=8, coefficient_width=9,
                                   name=f"T1_r{row}c{column}")
                if attach_dfgs
                else None
            )
            graph.add_task(
                Task(
                    t1_task_name(row, column),
                    cost=costs.t1,
                    dfg=dfg,
                    task_type="T1",
                    metadata={"row": row, "column": column, "stage": 1},
                ),
                # The 16 input words of the 4x4 block are charged one word per
                # T1 task (each task "owns" one word of the shared input).
                env_input_words=1,
            )

    # T2 tasks: element (r, c) of Y = T . C^T, computed from row r of T.
    for row in range(size):
        for column in range(size):
            dfg = (
                vector_product_dfg(size, input_width=17, coefficient_width=9,
                                   name=f"T2_r{row}c{column}")
                if attach_dfgs
                else None
            )
            graph.add_task(
                Task(
                    t2_task_name(row, column),
                    cost=costs.t2,
                    dfg=dfg,
                    task_type="T2",
                    metadata={"row": row, "column": column, "stage": 2},
                ),
                env_output_words=1,
            )

    # Dependencies: Y[r, c] needs T[r, 0..3].  Each T1 result is one word of
    # inter-stage data; it is stored once even though four T2 tasks read it,
    # so only the edge to the first consumer (column 0) carries the word.
    for row in range(size):
        for out_column in range(size):
            consumer = t2_task_name(row, out_column)
            for k in range(size):
                producer = t1_task_name(row, k)
                words = 1 if out_column == 0 else 0
                graph.add_edge(producer, consumer, words=words)

    graph.validate()
    return graph


def expected_paper_partitioning(graph: TaskGraph) -> dict:
    """The partitioning the paper reports: all T1 in P1, rows 0-1 of T2 in P2,
    rows 2-3 of T2 in P3.

    Used by tests and benches as the reference point.  Note the ILP is free to
    return any symmetric variant (e.g. swapping which rows go to P2 vs. P3);
    comparisons should therefore check the *structure* (16 T1 / 8 T2 / 8 T2
    and the latency) rather than identity with this exact assignment.
    """
    assignment = {}
    for row in range(DCT_SIZE):
        for column in range(DCT_SIZE):
            assignment[t1_task_name(row, column)] = 1
            assignment[t2_task_name(row, column)] = 2 if row < 2 else 3
    missing = set(graph.task_names()) - set(assignment)
    if missing:
        raise SpecificationError(
            f"graph does not look like the DCT case study; missing tasks {sorted(missing)}"
        )
    return assignment


def static_design_delay() -> float:
    """Per-block delay of the paper's static design (160 cycles @ 100 ns)."""
    return STATIC_CYCLES * STATIC_CLOCK


def rtr_partition_delays() -> list:
    """Per-block delays of the three RTR partitions reported by the paper."""
    return [
        PARTITION1_CYCLES * PARTITION1_CLOCK,
        PARTITION23_CYCLES * PARTITION23_CLOCK,
        PARTITION23_CYCLES * PARTITION23_CLOCK,
    ]
