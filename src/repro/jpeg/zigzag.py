"""Zig-zag reordering of quantised DCT coefficients (software co-design stage)."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from ..errors import CodecError


def zigzag_order(size: int) -> List[Tuple[int, int]]:
    """The (row, column) visit order for a *size* x *size* block.

    The scan walks anti-diagonals alternately up-right and down-left, exactly
    as JPEG does for 8x8 blocks; the same rule generalises to any block size.
    """
    if size < 1:
        raise CodecError("block size must be positive")
    order: List[Tuple[int, int]] = []
    for diagonal in range(2 * size - 1):
        if diagonal % 2 == 0:
            # Walk up-right: rows decreasing.
            row = min(diagonal, size - 1)
            column = diagonal - row
            while row >= 0 and column < size:
                order.append((row, column))
                row -= 1
                column += 1
        else:
            # Walk down-left: rows increasing.
            column = min(diagonal, size - 1)
            row = diagonal - column
            while column >= 0 and row < size:
                order.append((row, column))
                row += 1
                column -= 1
    return order


def zigzag(block: np.ndarray) -> np.ndarray:
    """Flatten a square block into its zig-zag sequence."""
    array = np.asarray(block)
    if array.ndim != 2 or array.shape[0] != array.shape[1]:
        raise CodecError(f"zigzag expects a square block, got shape {array.shape}")
    order = zigzag_order(array.shape[0])
    return np.array([array[row, column] for row, column in order])


def inverse_zigzag(sequence: np.ndarray, size: int) -> np.ndarray:
    """Rebuild the square block from its zig-zag sequence."""
    values = np.asarray(sequence)
    if values.size != size * size:
        raise CodecError(
            f"sequence of length {values.size} cannot fill a {size}x{size} block"
        )
    block = np.zeros((size, size), dtype=values.dtype)
    for value, (row, column) in zip(values, zigzag_order(size)):
        block[row, column] = value
    return block


def run_length_encode(sequence: np.ndarray) -> List[Tuple[int, int]]:
    """JPEG-style (zero-run, value) encoding of a zig-zag sequence.

    Trailing zeros are collapsed into a single end-of-block marker ``(0, 0)``.
    """
    values = [int(v) for v in np.asarray(sequence).ravel()]
    pairs: List[Tuple[int, int]] = []
    run = 0
    last_nonzero = -1
    for index, value in enumerate(values):
        if value != 0:
            last_nonzero = index
    for index, value in enumerate(values):
        if index > last_nonzero:
            break
        if value == 0:
            run += 1
            continue
        pairs.append((run, value))
        run = 0
    pairs.append((0, 0))  # end of block
    return pairs


def run_length_decode(pairs: List[Tuple[int, int]], length: int) -> np.ndarray:
    """Inverse of :func:`run_length_encode`."""
    values: List[int] = []
    for run, value in pairs:
        if (run, value) == (0, 0):
            break
        values.extend([0] * run)
        values.append(value)
    if len(values) > length:
        raise CodecError(
            f"run-length data decodes to {len(values)} values, more than {length}"
        )
    values.extend([0] * (length - len(values)))
    return np.array(values, dtype=np.int64)
