"""Huffman entropy coding (the last software stage of the co-design).

A self-contained canonical Huffman coder: build a code from symbol
frequencies, encode a symbol stream to a bit string, and decode it back.  The
codec uses it to entropy-code the (run, value) pairs produced by the zig-zag /
run-length stage; the tests exercise it directly on arbitrary symbol streams
(round-trip and prefix-freedom properties).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, List, Sequence, Tuple

from ..errors import CodecError


@dataclass(order=True)
class _HeapNode:
    weight: int
    tiebreak: int
    symbols: Tuple = field(compare=False)
    left: "._HeapNode" = field(compare=False, default=None)
    right: "._HeapNode" = field(compare=False, default=None)


class HuffmanCode:
    """A prefix code over an arbitrary (hashable) symbol alphabet."""

    def __init__(self, lengths: Dict[Hashable, int]) -> None:
        if not lengths:
            raise CodecError("a Huffman code needs at least one symbol")
        self._lengths = dict(lengths)
        self._codes = self._canonicalise(self._lengths)
        self._decode_table = {code: symbol for symbol, code in self._codes.items()}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def from_frequencies(cls, frequencies: Dict[Hashable, int]) -> "HuffmanCode":
        """Build an optimal prefix code from symbol frequencies."""
        if not frequencies:
            raise CodecError("cannot build a Huffman code from no symbols")
        for symbol, count in frequencies.items():
            if count < 0:
                raise CodecError(f"negative frequency for symbol {symbol!r}")
        filtered = {s: max(1, int(c)) for s, c in frequencies.items()}
        if len(filtered) == 1:
            only = next(iter(filtered))
            return cls({only: 1})
        heap: List[_HeapNode] = []
        for tiebreak, (symbol, weight) in enumerate(sorted(filtered.items(), key=lambda kv: repr(kv[0]))):
            heapq.heappush(heap, _HeapNode(weight, tiebreak, (symbol,)))
        counter = len(heap)
        while len(heap) > 1:
            first = heapq.heappop(heap)
            second = heapq.heappop(heap)
            counter += 1
            heapq.heappush(
                heap,
                _HeapNode(
                    first.weight + second.weight,
                    counter,
                    first.symbols + second.symbols,
                    left=first,
                    right=second,
                ),
            )
        root = heap[0]
        lengths: Dict[Hashable, int] = {}

        def walk(node: _HeapNode, depth: int) -> None:
            if node.left is None and node.right is None:
                lengths[node.symbols[0]] = max(1, depth)
                return
            walk(node.left, depth + 1)
            walk(node.right, depth + 1)

        walk(root, 0)
        return cls(lengths)

    @classmethod
    def from_symbols(cls, symbols: Iterable[Hashable]) -> "HuffmanCode":
        """Build a code from a stream of symbols (frequencies counted here)."""
        frequencies: Dict[Hashable, int] = {}
        for symbol in symbols:
            frequencies[symbol] = frequencies.get(symbol, 0) + 1
        return cls.from_frequencies(frequencies)

    @staticmethod
    def _canonicalise(lengths: Dict[Hashable, int]) -> Dict[Hashable, str]:
        """Assign canonical codes from code lengths (sorted by length, symbol)."""
        ordered = sorted(lengths.items(), key=lambda kv: (kv[1], repr(kv[0])))
        codes: Dict[Hashable, str] = {}
        code = 0
        previous_length = ordered[0][1]
        for index, (symbol, length) in enumerate(ordered):
            if index:
                code = (code + 1) << (length - previous_length)
            codes[symbol] = format(code, f"0{length}b")
            previous_length = length
        return codes

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def symbols(self) -> List[Hashable]:
        """All symbols the code covers."""
        return list(self._codes)

    def code_of(self, symbol: Hashable) -> str:
        """The bit string assigned to *symbol*."""
        try:
            return self._codes[symbol]
        except KeyError:
            raise CodecError(f"symbol {symbol!r} is not in the Huffman code")

    def length_of(self, symbol: Hashable) -> int:
        """Code length in bits of *symbol*."""
        return len(self.code_of(symbol))

    def expected_length(self, frequencies: Dict[Hashable, int]) -> float:
        """Average code length in bits under the given frequencies."""
        total = sum(frequencies.values())
        if total == 0:
            return 0.0
        return sum(
            frequencies[s] * self.length_of(s) for s in frequencies if frequencies[s]
        ) / total

    # ------------------------------------------------------------------
    # Encoding / decoding
    # ------------------------------------------------------------------

    def encode(self, symbols: Sequence[Hashable]) -> str:
        """Encode a symbol sequence into a bit string ('0'/'1' characters)."""
        return "".join(self.code_of(symbol) for symbol in symbols)

    def decode(self, bits: str) -> List[Hashable]:
        """Decode a bit string produced by :meth:`encode`."""
        symbols: List[Hashable] = []
        current = ""
        for bit in bits:
            if bit not in "01":
                raise CodecError(f"invalid bit {bit!r} in Huffman stream")
            current += bit
            symbol = self._decode_table.get(current)
            if symbol is not None:
                symbols.append(symbol)
                current = ""
        if current:
            raise CodecError("Huffman stream ended in the middle of a code word")
        return symbols

    def is_prefix_free(self) -> bool:
        """Whether no code word is a prefix of another (always true by construction)."""
        codes = sorted(self._codes.values())
        for first, second in zip(codes, codes[1:]):
            if second.startswith(first):
                return False
        return True


def encode_with_code(symbols: Sequence[Hashable]) -> Tuple[HuffmanCode, str]:
    """Build a code from *symbols* and encode them; returns (code, bits)."""
    code = HuffmanCode.from_symbols(symbols)
    return code, code.encode(symbols)
