"""Hardware/software co-design of the JPEG compressor.

The paper implements the DCT in (reconfigurable) hardware and keeps
quantisation, zig-zag and Huffman coding in software on the host.  This module
provides:

* :class:`JpegCodesign` — the split itself, with a functional model of the
  hardware side that executes the 32-task DCT task graph *partition by
  partition*, staging intermediate results through the partition memory blocks
  exactly as the RTR design would.  Its output must equal the direct numpy
  DCT, which is the correctness argument for the whole decomposition
  (tested in the integration suite).
* software-cost estimates for the host-side stages, used by the end-to-end
  co-design example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import CodecError
from ..partition.result import TemporalPartitioning
from .dct import dct_matrix, forward_dct
from .taskgraph_builder import DCT_SIZE, build_dct_task_graph, expected_paper_partitioning


@dataclass
class HardwareExecutionTrace:
    """What the functional hardware model did for one block."""

    per_partition_reads: Dict[int, int] = field(default_factory=dict)
    per_partition_writes: Dict[int, int] = field(default_factory=dict)

    def total_reads(self) -> int:
        """Total words read from the (modelled) board memory."""
        return sum(self.per_partition_reads.values())

    def total_writes(self) -> int:
        """Total words written to the (modelled) board memory."""
        return sum(self.per_partition_writes.values())


class JpegCodesign:
    """The DCT-in-hardware / rest-in-software split of the case study."""

    def __init__(self, partitioning: Optional[TemporalPartitioning] = None) -> None:
        self.graph = build_dct_task_graph()
        if partitioning is None:
            assignment = expected_paper_partitioning(self.graph)
            partitioning = TemporalPartitioning(
                graph=self.graph,
                assignment=assignment,
                partition_count=max(assignment.values()),
                reconfiguration_time=0.0,
                method="paper-reference",
            )
        if set(partitioning.assignment) != set(self.graph.task_names()):
            raise CodecError(
                "the supplied partitioning does not cover the DCT task graph"
            )
        self.partitioning = partitioning
        self._coefficients = dct_matrix(DCT_SIZE)

    # ------------------------------------------------------------------
    # Functional hardware model
    # ------------------------------------------------------------------

    def execute_block(
        self, block: np.ndarray, trace: Optional[HardwareExecutionTrace] = None
    ) -> np.ndarray:
        """Run one 4x4 block through the partitioned hardware model.

        The intermediate matrix ``T`` plays the role of the board memory: a
        partition may only read values produced by earlier partitions (or the
        environment) and writes its own results, mirroring the RTR data flow.
        """
        array = np.asarray(block, dtype=np.float64)
        if array.shape != (DCT_SIZE, DCT_SIZE):
            raise CodecError(f"expected a {DCT_SIZE}x{DCT_SIZE} block, got {array.shape}")
        c = self._coefficients
        intermediate = np.full((DCT_SIZE, DCT_SIZE), np.nan)
        output = np.full((DCT_SIZE, DCT_SIZE), np.nan)

        for partition_index in range(1, self.partitioning.partition_count + 1):
            reads = 0
            writes = 0
            for task_name in self.partitioning.tasks_in_partition(partition_index):
                task = self.graph.task(task_name)
                row = task.metadata["row"]
                column = task.metadata["column"]
                if task.task_type == "T1":
                    # T[row, column] = C[row, :] . X[:, column]
                    intermediate[row, column] = float(np.dot(c[row, :], array[:, column]))
                    reads += DCT_SIZE
                    writes += 1
                elif task.task_type == "T2":
                    operands = intermediate[row, :]
                    if np.any(np.isnan(operands)):
                        raise CodecError(
                            f"task {task_name!r} reads T row {row} before it was "
                            "produced — the partitioning violates the data flow"
                        )
                    output[row, column] = float(np.dot(operands, c[column, :]))
                    reads += DCT_SIZE
                    writes += 1
                else:
                    raise CodecError(f"unexpected task type {task.task_type!r}")
            if trace is not None:
                trace.per_partition_reads[partition_index] = reads
                trace.per_partition_writes[partition_index] = writes
        if np.any(np.isnan(output)):
            raise CodecError("some output elements were never computed")
        return output

    def execute_blocks(self, blocks: np.ndarray) -> np.ndarray:
        """Run many blocks through :meth:`execute_block`."""
        return np.array([self.execute_block(block) for block in np.asarray(blocks)])

    def reference_block(self, block: np.ndarray) -> np.ndarray:
        """The direct (numpy) DCT of the same block, for comparison."""
        return forward_dct(np.asarray(block, dtype=np.float64), DCT_SIZE)

    def max_error_against_reference(self, blocks: np.ndarray) -> float:
        """Largest absolute difference between the hardware model and numpy."""
        worst = 0.0
        for block in np.asarray(blocks):
            difference = np.abs(self.execute_block(block) - self.reference_block(block))
            worst = max(worst, float(difference.max()))
        return worst

    # ------------------------------------------------------------------
    # Software-side cost model
    # ------------------------------------------------------------------

    @staticmethod
    def software_operations_per_block(block_size: int = DCT_SIZE) -> Dict[str, float]:
        """Rough operation counts of the host-side stages per block.

        Quantisation: one divide+round per coefficient; zig-zag: one move per
        coefficient; Huffman: a few operations per non-zero coefficient
        (estimated at half the coefficients being non-zero).
        """
        coefficients = block_size * block_size
        return {
            "quantization": 2.0 * coefficients,
            "zigzag": 1.0 * coefficients,
            "huffman": 4.0 * (coefficients / 2.0),
        }

    @staticmethod
    def software_time_per_block(host_ops_per_second: float, block_size: int = DCT_SIZE) -> float:
        """Estimated host seconds spent on the software stages per block."""
        if host_ops_per_second <= 0:
            raise CodecError("host_ops_per_second must be positive")
        operations = sum(JpegCodesign.software_operations_per_block(block_size).values())
        return operations / host_ops_per_second


def hardware_software_split(graph_task_names: List[str]) -> Dict[str, List[str]]:
    """The case study's split: every DCT task in hardware, the rest in software.

    Provided for symmetry with co-design formulations that take an explicit
    split; for the DCT task graph everything is hardware, and the software
    stages (quantisation, zig-zag, Huffman) are not tasks of the graph at all.
    """
    return {"hardware": list(graph_task_names), "software": []}
