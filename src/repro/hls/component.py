"""RTL component models used by the HLS estimator.

A *component* is a functional unit, register or steering element characterised
for a particular FPGA family: how many CLBs it occupies and what its
combinational delay is at a given bit-width.  The component library
(:mod:`repro.hls.library`) builds these from per-family characterisation
curves; this module defines the data types and the binding between operations
and components.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from ..dfg.operations import OpKind
from ..errors import EstimationError


@dataclass(frozen=True)
class Component:
    """A characterised RTL component instance template.

    Parameters
    ----------
    name:
        Component name, e.g. ``"mul17"``.
    supported_kinds:
        Operation kinds this component can execute.
    width:
        Operand bit-width the characterisation applies to.
    area_clbs:
        CLB footprint of one instance.
    delay:
        Combinational (register-to-register) delay in seconds.
    """

    name: str
    supported_kinds: FrozenSet[OpKind]
    width: int
    area_clbs: int
    delay: float

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise EstimationError(f"component {self.name!r} must have positive width")
        if self.area_clbs < 0:
            raise EstimationError(f"component {self.name!r} has negative area")
        if self.delay < 0:
            raise EstimationError(f"component {self.name!r} has negative delay")
        if not self.supported_kinds:
            raise EstimationError(
                f"component {self.name!r} supports no operation kinds"
            )

    def supports(self, kind: OpKind) -> bool:
        """Whether this component can execute operations of *kind*."""
        return kind in self.supported_kinds

    def cycles_at(self, clock_period: float) -> int:
        """Number of clock cycles one operation takes on this component.

        Components slower than the clock are multi-cycled (the estimator's
        schedule accounts for the extra cycles); a zero-delay component still
        takes one cycle because results are registered.
        """
        if clock_period <= 0:
            raise EstimationError("clock period must be positive")
        if self.delay == 0:
            return 1
        return max(1, -(-int(round(self.delay * 1e12)) // int(round(clock_period * 1e12))))

    def describe(self) -> str:
        """One-line human readable summary."""
        kinds = "/".join(sorted(kind.value for kind in self.supported_kinds))
        return (
            f"{self.name}: {kinds} @{self.width}b, {self.area_clbs} CLBs, "
            f"{self.delay * 1e9:.1f} ns"
        )


#: Groups of operation kinds that conventionally share a functional unit.
ALU_KINDS = frozenset(
    {OpKind.ADD, OpKind.SUB, OpKind.COMPARE, OpKind.AND, OpKind.OR, OpKind.XOR, OpKind.NOT}
)
MULTIPLIER_KINDS = frozenset({OpKind.MUL})
MAC_KINDS = frozenset({OpKind.MAC})
SHIFTER_KINDS = frozenset({OpKind.SHIFT_LEFT, OpKind.SHIFT_RIGHT})
MEMORY_PORT_KINDS = frozenset({OpKind.MEMORY_READ, OpKind.MEMORY_WRITE})
STEERING_KINDS = frozenset({OpKind.MUX})
REGISTER_KINDS = frozenset({OpKind.REGISTER})


def functional_unit_class(kind: OpKind) -> str:
    """Name of the functional-unit class an operation kind maps onto.

    The allocator reserves one pool of instances per class ("alu",
    "multiplier", ...), mirroring how DSS-era HLS tools share units between
    compatible operations.
    """
    if kind in ALU_KINDS:
        return "alu"
    if kind in MULTIPLIER_KINDS:
        return "multiplier"
    if kind in MAC_KINDS:
        return "mac"
    if kind in SHIFTER_KINDS:
        return "shifter"
    if kind in MEMORY_PORT_KINDS:
        return "memory_port"
    if kind in STEERING_KINDS:
        return "steering"
    if kind in REGISTER_KINDS:
        return "register"
    raise EstimationError(f"operation kind {kind.value!r} has no functional-unit class")
