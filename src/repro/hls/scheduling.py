"""Operation scheduling: ASAP, ALAP and resource-constrained list scheduling.

The HLS estimator needs a cycle count for each task datapath under a given
functional-unit allocation and clock period.  We implement the standard trio:

* :func:`asap_schedule` / :func:`alap_schedule` — unconstrained bounds, also
  used to compute operation mobility;
* :func:`list_schedule` — resource-constrained list scheduling with
  critical-path priority, supporting multi-cycle operations.

Cycle numbering starts at 0; an operation scheduled at cycle ``c`` with a
duration of ``d`` cycles occupies ``c .. c+d-1`` and its results are available
to consumers from cycle ``c+d`` onwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..dfg.graph import DataFlowGraph
from ..dfg.operations import OpKind
from ..errors import SchedulingError
from .component import functional_unit_class


@dataclass
class ScheduledOperation:
    """Placement of one operation in the schedule."""

    name: str
    kind: OpKind
    unit_class: str
    start_cycle: int
    duration: int
    instance: int = 0

    @property
    def end_cycle(self) -> int:
        """First cycle *after* the operation completes."""
        return self.start_cycle + self.duration


@dataclass
class Schedule:
    """A complete schedule of a data-flow graph."""

    dfg_name: str
    operations: Dict[str, ScheduledOperation] = field(default_factory=dict)

    @property
    def makespan(self) -> int:
        """Total number of cycles the schedule occupies."""
        return max((op.end_cycle for op in self.operations.values()), default=0)

    def start_cycle(self, name: str) -> int:
        """Start cycle of operation *name*."""
        try:
            return self.operations[name].start_cycle
        except KeyError:
            raise SchedulingError(f"operation {name!r} is not in the schedule")

    def operations_in_cycle(self, cycle: int) -> List[ScheduledOperation]:
        """Operations active during *cycle*."""
        return [
            op
            for op in self.operations.values()
            if op.start_cycle <= cycle < op.end_cycle
        ]

    def unit_usage(self) -> Dict[str, int]:
        """Peak number of concurrently busy instances per functional-unit class."""
        usage: Dict[str, int] = {}
        for cycle in range(self.makespan):
            per_class: Dict[str, int] = {}
            for op in self.operations_in_cycle(cycle):
                per_class[op.unit_class] = per_class.get(op.unit_class, 0) + 1
            for unit_class, count in per_class.items():
                usage[unit_class] = max(usage.get(unit_class, 0), count)
        return usage

    def validate_dependencies(self, dfg: DataFlowGraph) -> None:
        """Check that every scheduled operation starts after its producers finish."""
        for producer, consumer in dfg.edges():
            if producer not in self.operations or consumer not in self.operations:
                continue
            if self.operations[consumer].start_cycle < self.operations[producer].end_cycle:
                raise SchedulingError(
                    f"dependency violated: {consumer!r} starts at cycle "
                    f"{self.operations[consumer].start_cycle} before {producer!r} "
                    f"finishes at {self.operations[producer].end_cycle}"
                )


DurationFunction = Callable[[OpKind, int], int]


def _default_duration(kind: OpKind, width: int) -> int:
    """One cycle per operation (used by the unconstrained schedules)."""
    return 1


def _durations(dfg: DataFlowGraph, duration_of: Optional[DurationFunction]) -> Dict[str, int]:
    duration_of = duration_of or _default_duration
    durations: Dict[str, int] = {}
    for op in dfg.operations():
        if op.is_zero_cost:
            durations[op.name] = 0
        else:
            duration = duration_of(op.kind, op.width)
            if duration < 1:
                raise SchedulingError(
                    f"duration of operation {op.name!r} must be at least one cycle"
                )
            durations[op.name] = duration
    return durations


def asap_schedule(
    dfg: DataFlowGraph, duration_of: Optional[DurationFunction] = None
) -> Schedule:
    """As-soon-as-possible schedule (unlimited resources)."""
    durations = _durations(dfg, duration_of)
    schedule = Schedule(dfg_name=dfg.name)
    starts: Dict[str, int] = {}
    for name in dfg.topological_order():
        op = dfg.operation(name)
        earliest = 0
        for pred in dfg.predecessors(name):
            earliest = max(earliest, starts[pred] + durations[pred])
        starts[name] = earliest
        schedule.operations[name] = ScheduledOperation(
            name=name,
            kind=op.kind,
            unit_class=functional_unit_class(op.kind) if not op.is_zero_cost else "none",
            start_cycle=earliest,
            duration=durations[name],
        )
    return schedule


def alap_schedule(
    dfg: DataFlowGraph,
    deadline: Optional[int] = None,
    duration_of: Optional[DurationFunction] = None,
) -> Schedule:
    """As-late-as-possible schedule against *deadline* (default: ASAP makespan)."""
    durations = _durations(dfg, duration_of)
    asap = asap_schedule(dfg, duration_of)
    horizon = deadline if deadline is not None else asap.makespan
    if horizon < asap.makespan:
        raise SchedulingError(
            f"deadline {horizon} is tighter than the critical path "
            f"({asap.makespan} cycles)"
        )
    schedule = Schedule(dfg_name=dfg.name)
    ends: Dict[str, int] = {}
    for name in reversed(dfg.topological_order()):
        op = dfg.operation(name)
        latest_end = horizon
        for succ in dfg.successors(name):
            latest_end = min(latest_end, ends[succ] - durations[succ])
        ends[name] = latest_end
        start = latest_end - durations[name]
        if start < 0:
            raise SchedulingError(
                f"operation {name!r} cannot meet the deadline of {horizon} cycles"
            )
        schedule.operations[name] = ScheduledOperation(
            name=name,
            kind=op.kind,
            unit_class=functional_unit_class(op.kind) if not op.is_zero_cost else "none",
            start_cycle=start,
            duration=durations[name],
        )
    return schedule


def mobility(dfg: DataFlowGraph, duration_of: Optional[DurationFunction] = None) -> Dict[str, int]:
    """Scheduling freedom of each operation: ALAP start minus ASAP start."""
    asap = asap_schedule(dfg, duration_of)
    alap = alap_schedule(dfg, duration_of=duration_of)
    return {
        name: alap.operations[name].start_cycle - asap.operations[name].start_cycle
        for name in asap.operations
    }


def list_schedule(
    dfg: DataFlowGraph,
    unit_limits: Dict[str, int],
    duration_of: Optional[DurationFunction] = None,
) -> Schedule:
    """Resource-constrained list scheduling with critical-path priority.

    Parameters
    ----------
    dfg:
        The data-flow graph to schedule.
    unit_limits:
        Number of available instances per functional-unit class (e.g.
        ``{"multiplier": 1, "alu": 1}``).  Classes not listed are assumed to
        have one instance; zero-cost operations need no unit.
    duration_of:
        Maps (kind, width) to the operation's duration in cycles.
    """
    durations = _durations(dfg, duration_of)

    # Priority: length of the longest path (in cycles) from the operation to
    # any sink — the classic critical-path list-scheduling heuristic.
    priority: Dict[str, int] = {}
    for name in reversed(dfg.topological_order()):
        below = max((priority[s] for s in dfg.successors(name)), default=0)
        priority[name] = durations[name] + below

    remaining_preds = {
        name: len(dfg.predecessors(name)) for name in dfg.operation_names()
    }
    ready = [name for name, count in remaining_preds.items() if count == 0]
    finish_cycle: Dict[str, int] = {}
    schedule = Schedule(dfg_name=dfg.name)
    # busy_until[unit_class][instance] = first free cycle
    busy_until: Dict[str, List[int]] = {}

    def limit_for(unit_class: str) -> int:
        limit = unit_limits.get(unit_class, 1)
        if limit < 1:
            raise SchedulingError(
                f"unit class {unit_class!r} must have at least one instance"
            )
        return limit

    scheduled_count = 0
    total = len(dfg)
    current_cycle = 0
    safety_limit = 4 * (sum(durations.values()) + total + 1)
    while scheduled_count < total:
        if current_cycle > safety_limit:
            raise SchedulingError(
                f"list scheduling did not converge for DFG {dfg.name!r}"
            )
        # Operations whose predecessors have all finished by current_cycle.
        available = [
            name
            for name in ready
            if all(
                finish_cycle[p] <= current_cycle for p in dfg.predecessors(name)
            )
        ]
        available.sort(key=lambda name: (-priority[name], name))
        for name in available:
            op = dfg.operation(name)
            if op.is_zero_cost:
                start = current_cycle
                instance = 0
                unit_class = "none"
            else:
                unit_class = functional_unit_class(op.kind)
                instances = busy_until.setdefault(
                    unit_class, [0] * limit_for(unit_class)
                )
                # Pick the earliest-free instance; only schedule if free now.
                instance = min(range(len(instances)), key=lambda i: instances[i])
                if instances[instance] > current_cycle:
                    continue  # no free instance this cycle
                start = current_cycle
                instances[instance] = start + durations[name]
            schedule.operations[name] = ScheduledOperation(
                name=name,
                kind=op.kind,
                unit_class=unit_class,
                start_cycle=start,
                duration=durations[name],
                instance=instance,
            )
            finish_cycle[name] = start + durations[name]
            ready.remove(name)
            scheduled_count += 1
            for succ in dfg.successors(name):
                remaining_preds[succ] -= 1
                if remaining_preds[succ] == 0:
                    ready.append(succ)
        current_cycle += 1

    schedule.validate_dependencies(dfg)
    return schedule
