"""Register-transfer-level datapath model.

The datapath produced for one temporal partition contains the allocated
functional units, the registers holding operand/result values, the steering
multiplexers, and a memory port through which the partition streams its
inter-partition data.  The model is structural (it knows what is connected to
what and how big everything is); cycle-by-cycle behaviour lives in the
controller and the execution simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..dfg.graph import DataFlowGraph
from ..errors import SynthesisError
from .allocation import Allocation, Binding, bind_schedule, steering_inputs
from .library import ComponentLibrary
from .scheduling import Schedule


@dataclass(frozen=True)
class FunctionalUnitInstance:
    """One allocated functional-unit instance."""

    label: str
    unit_class: str
    width: int
    area_clbs: int
    delay: float


@dataclass(frozen=True)
class RegisterInstance:
    """One register in the datapath."""

    name: str
    width: int
    purpose: str  # "operand", "result", "io"


@dataclass(frozen=True)
class MuxInstance:
    """One steering multiplexer."""

    name: str
    width: int
    inputs: int


@dataclass
class Datapath:
    """Structural description of a synthesised datapath."""

    name: str
    functional_units: List[FunctionalUnitInstance] = field(default_factory=list)
    registers: List[RegisterInstance] = field(default_factory=list)
    muxes: List[MuxInstance] = field(default_factory=list)
    binding: Binding = field(default_factory=Binding)
    has_memory_port: bool = False
    memory_port_width: int = 32

    def functional_unit(self, label: str) -> FunctionalUnitInstance:
        """Look up a functional unit by its label."""
        for unit in self.functional_units:
            if unit.label == label:
                return unit
        raise SynthesisError(f"datapath {self.name!r} has no functional unit {label!r}")

    @property
    def register_bits(self) -> int:
        """Total number of register bits in the datapath."""
        return sum(register.width for register in self.registers)

    def component_counts(self) -> Dict[str, int]:
        """Number of instances per structural element type (for reports)."""
        return {
            "functional_units": len(self.functional_units),
            "registers": len(self.registers),
            "muxes": len(self.muxes),
            "memory_ports": 1 if self.has_memory_port else 0,
        }

    def describe(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"datapath {self.name}"]
        for unit in self.functional_units:
            lines.append(
                f"  FU  {unit.label}: {unit.unit_class} {unit.width}b, "
                f"{unit.area_clbs} CLBs"
            )
        lines.append(f"  registers: {len(self.registers)} ({self.register_bits} bits)")
        lines.append(f"  muxes:     {len(self.muxes)}")
        if self.has_memory_port:
            lines.append(f"  memory port: {self.memory_port_width} bits")
        return "\n".join(lines)


def build_datapath(
    name: str,
    dfg: DataFlowGraph,
    allocation: Allocation,
    schedule: Schedule,
    library: ComponentLibrary,
    needs_memory_port: bool = True,
    memory_port_width: int = 32,
) -> Datapath:
    """Construct the structural datapath implied by an allocation and schedule."""
    datapath = Datapath(
        name=name,
        has_memory_port=needs_memory_port,
        memory_port_width=memory_port_width,
    )

    for unit_class, count in sorted(allocation.instances.items()):
        component = allocation.components[unit_class]
        for index in range(count):
            datapath.functional_units.append(
                FunctionalUnitInstance(
                    label=f"{unit_class}#{index}",
                    unit_class=unit_class,
                    width=component.width,
                    area_clbs=component.area_clbs,
                    delay=component.delay,
                )
            )

    binding = bind_schedule(schedule, dfg)
    datapath.binding = binding

    # Operand and result registers per functional-unit instance.
    for unit in datapath.functional_units:
        datapath.registers.append(
            RegisterInstance(name=f"{unit.label}_op_a", width=unit.width, purpose="operand")
        )
        datapath.registers.append(
            RegisterInstance(name=f"{unit.label}_op_b", width=unit.width, purpose="operand")
        )
        datapath.registers.append(
            RegisterInstance(name=f"{unit.label}_result", width=unit.width, purpose="result")
        )

    # I/O register for the memory port.
    if needs_memory_port:
        datapath.registers.append(
            RegisterInstance(name="mem_data", width=memory_port_width, purpose="io")
        )
        datapath.registers.append(
            RegisterInstance(name="mem_addr", width=24, purpose="io")
        )

    # Steering muxes: one per functional-unit instance that is fed by more
    # than one distinct producer.
    for label, distinct_sources in sorted(steering_inputs(binding, dfg).items()):
        if distinct_sources <= 1:
            continue
        unit = datapath.functional_unit(label)
        datapath.muxes.append(
            MuxInstance(name=f"{label}_in_mux", width=unit.width, inputs=distinct_sources)
        )
    return datapath
