"""Floorplan/layout-aware area and clock adjustment.

The paper notes that "to bridge the gap between behavior and the final layout
on the FPGA, floor planning based layout estimation techniques are
incorporated in the estimation engine".  We model the same effect with a
simple, documented overhead model: routing congestion inflates the raw CLB
count, and long routes add to the achievable clock period.  Both effects grow
with device utilisation, which is the dominant first-order behaviour of
mid-90s place-and-route.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..arch.device import FpgaDevice
from ..errors import EstimationError


@dataclass(frozen=True)
class LayoutModel:
    """Parameters of the layout overhead model.

    Parameters
    ----------
    base_area_overhead:
        Fractional CLB overhead applied regardless of utilisation (steering
        logic that the datapath model does not enumerate, unusable CLBs due to
        placement fragmentation).
    congestion_area_overhead:
        Additional fractional overhead applied in proportion to device
        utilisation (squared, so lightly-used devices pay almost nothing).
    base_wire_delay:
        Routing delay in seconds added to every register-to-register path.
    congestion_wire_delay:
        Additional routing delay at 100 % utilisation (scales quadratically).
    """

    base_area_overhead: float = 0.08
    congestion_area_overhead: float = 0.15
    base_wire_delay: float = 3e-9
    congestion_wire_delay: float = 12e-9

    def __post_init__(self) -> None:
        if self.base_area_overhead < 0 or self.congestion_area_overhead < 0:
            raise EstimationError("area overheads must be non-negative")
        if self.base_wire_delay < 0 or self.congestion_wire_delay < 0:
            raise EstimationError("wire delays must be non-negative")

    def adjusted_area(self, raw_clbs: int, device: FpgaDevice) -> int:
        """Raw CLB count inflated by the layout overhead for *device*."""
        if raw_clbs < 0:
            raise EstimationError("raw CLB count must be non-negative")
        capacity = max(1, device.clb_count)
        utilisation = min(1.0, raw_clbs / capacity)
        factor = 1.0 + self.base_area_overhead + self.congestion_area_overhead * utilisation ** 2
        return math.ceil(raw_clbs * factor)

    def adjusted_clock_period(
        self, combinational_delay: float, raw_clbs: int, device: FpgaDevice
    ) -> float:
        """Register-to-register period including estimated routing delay."""
        if combinational_delay < 0:
            raise EstimationError("combinational delay must be non-negative")
        capacity = max(1, device.clb_count)
        utilisation = min(1.0, raw_clbs / capacity)
        wire = self.base_wire_delay + self.congestion_wire_delay * utilisation ** 2
        return combinational_delay + wire


def default_layout_model() -> LayoutModel:
    """The layout model used unless the caller supplies a custom one."""
    return LayoutModel()
