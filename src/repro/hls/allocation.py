"""Functional-unit allocation and operation binding.

Allocation decides how many instances of each functional-unit class a task
datapath gets; binding assigns every operation to a specific instance.  The
estimator explores a small set of allocation candidates (resource-minimal up
to parallelism-limited) and keeps the cheapest one that meets the optional
latency target — a simplified but faithful stand-in for DSS's design-space
exploration.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..dfg.analysis import max_parallelism
from ..dfg.graph import DataFlowGraph
from ..errors import AllocationError
from .component import Component, functional_unit_class
from .library import ComponentLibrary
from .scheduling import Schedule


@dataclass
class Allocation:
    """Number of instances and the widest component per functional-unit class."""

    instances: Dict[str, int] = field(default_factory=dict)
    components: Dict[str, Component] = field(default_factory=dict)

    def instance_count(self, unit_class: str) -> int:
        """Instances allocated for *unit_class* (0 when the class is unused)."""
        return self.instances.get(unit_class, 0)

    def total_functional_area(self) -> int:
        """CLBs occupied by all allocated functional-unit instances."""
        return sum(
            self.components[unit_class].area_clbs * count
            for unit_class, count in self.instances.items()
        )

    def slowest_component_delay(self) -> float:
        """Largest combinational delay among allocated components (seconds)."""
        return max((c.delay for c in self.components.values()), default=0.0)

    def unit_limits(self) -> Dict[str, int]:
        """Instance counts in the shape the list scheduler expects."""
        return dict(self.instances)


def required_unit_classes(dfg: DataFlowGraph) -> Dict[str, int]:
    """Operation count per functional-unit class for *dfg*."""
    counts: Dict[str, int] = {}
    for op in dfg.compute_operations():
        unit_class = functional_unit_class(op.kind)
        counts[unit_class] = counts.get(unit_class, 0) + 1
    return counts


def component_width(dfg: DataFlowGraph, operation_name: str) -> int:
    """Characterisation width of the component executing *operation_name*.

    Multipliers and MACs are characterised by their widest *operand* (a 9x9
    multiplier producing a 17-bit product is still a 9-bit multiplier, which
    is how the paper counts them); other units are characterised by their
    result width.
    """
    op = dfg.operation(operation_name)
    from ..dfg.operations import OpKind

    if op.kind in (OpKind.MUL, OpKind.MAC):
        input_widths = [dfg.operation(p).width for p in dfg.predecessors(operation_name)]
        if input_widths:
            return max(input_widths)
    return op.width


def widest_component_per_class(
    dfg: DataFlowGraph, library: ComponentLibrary
) -> Dict[str, Component]:
    """For each needed unit class, the component sized for the widest operation.

    Sharing a unit between operations of different widths requires the unit to
    be as wide as the widest operation bound to it, which is the conservative
    sizing DSS-style estimators use.
    """
    widest: Dict[str, int] = {}
    sample_kind: Dict[str, object] = {}
    for op in dfg.compute_operations():
        unit_class = functional_unit_class(op.kind)
        width = component_width(dfg, op.name)
        if width > widest.get(unit_class, 0):
            widest[unit_class] = width
            sample_kind[unit_class] = op.kind
    return {
        unit_class: library.component_for(sample_kind[unit_class], width)
        for unit_class, width in widest.items()
    }


def minimal_allocation(dfg: DataFlowGraph, library: ComponentLibrary) -> Allocation:
    """One instance of each needed functional-unit class (cheapest datapath)."""
    components = widest_component_per_class(dfg, library)
    if not components:
        raise AllocationError(
            f"DFG {dfg.name!r} has no compute operations to allocate units for"
        )
    return Allocation(
        instances={unit_class: 1 for unit_class in components},
        components=components,
    )


def parallelism_limited_allocation(
    dfg: DataFlowGraph, library: ComponentLibrary
) -> Allocation:
    """As many instances per class as the DFG can ever use simultaneously."""
    components = widest_component_per_class(dfg, library)
    if not components:
        raise AllocationError(
            f"DFG {dfg.name!r} has no compute operations to allocate units for"
        )
    ceiling = max(1, max_parallelism(dfg))
    needed = required_unit_classes(dfg)
    return Allocation(
        instances={
            unit_class: min(ceiling, needed[unit_class]) for unit_class in components
        },
        components=components,
    )


def allocation_candidates(
    dfg: DataFlowGraph, library: ComponentLibrary, max_candidates: int = 4
) -> List[Allocation]:
    """A small ladder of allocations between minimal and parallelism-limited.

    Intermediate rungs scale every class's instance count proportionally; the
    estimator walks the ladder and keeps the best area/latency point for the
    requested objective.
    """
    minimal = minimal_allocation(dfg, library)
    maximal = parallelism_limited_allocation(dfg, library)
    if max_candidates < 2 or minimal.instances == maximal.instances:
        return [minimal] if minimal.instances == maximal.instances else [minimal, maximal]
    candidates = [minimal]
    steps = max_candidates - 1
    for step in range(1, steps + 1):
        fraction = step / steps
        instances = {}
        for unit_class in minimal.instances:
            low = minimal.instances[unit_class]
            high = maximal.instances[unit_class]
            instances[unit_class] = round(low + (high - low) * fraction)
        candidate = Allocation(instances=instances, components=dict(minimal.components))
        if candidate.instances != candidates[-1].instances:
            candidates.append(candidate)
    return candidates


@dataclass
class Binding:
    """Assignment of operations to functional-unit instances."""

    assignments: Dict[str, str] = field(default_factory=dict)

    def instance_of(self, operation_name: str) -> str:
        """Instance label (e.g. ``"multiplier#0"``) the operation is bound to."""
        try:
            return self.assignments[operation_name]
        except KeyError:
            raise AllocationError(f"operation {operation_name!r} is not bound")

    def operations_on(self, instance_label: str) -> List[str]:
        """Operations bound to *instance_label*, sorted by name."""
        return sorted(
            name for name, label in self.assignments.items() if label == instance_label
        )

    def instance_labels(self) -> List[str]:
        """All instance labels used by the binding."""
        return sorted(set(self.assignments.values()))


def bind_schedule(schedule: Schedule, dfg: DataFlowGraph) -> Binding:
    """Derive the operation-to-instance binding implied by a list schedule.

    The list scheduler already records which instance index executed each
    operation; the binding simply re-labels those indices per class.  Zero-cost
    operations are not bound.
    """
    binding = Binding()
    for name, placed in schedule.operations.items():
        if dfg.operation(name).is_zero_cost:
            continue
        binding.assignments[name] = f"{placed.unit_class}#{placed.instance}"
    return binding


def steering_inputs(binding: Binding, dfg: DataFlowGraph) -> Dict[str, int]:
    """Number of distinct sources feeding each functional-unit instance.

    Used by the estimator to size input multiplexers: an instance fed from
    ``k`` distinct producers needs a ``k``-to-1 mux per operand port.
    """
    sources: Dict[str, set] = {}
    for name, label in binding.assignments.items():
        producer_set = sources.setdefault(label, set())
        for producer in dfg.predecessors(name):
            producer_set.add(producer)
    return {label: len(producers) for label, producers in sources.items()}
