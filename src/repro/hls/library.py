"""Component libraries characterised per FPGA family.

The authors' DSS estimator "makes use of a component library characterized for
the particular reconfigurable device".  We provide the same mechanism: a
:class:`ComponentLibrary` answers "what does an N-bit adder/multiplier cost on
this family?" using simple characterisation curves calibrated against
published XC4000-era figures:

* an N-bit ripple-carry adder occupies about ``ceil(N/2)`` CLBs (two bits per
  CLB using the dedicated carry logic);
* an NxN array multiplier occupies about ``ceil(N*N/2)`` CLBs;
* registers and 2:1 multiplexers occupy about ``ceil(N/2)`` CLBs.

Delays grow linearly (adders) or linearly-with-width (array multiplier rows)
and are expressed in nanoseconds.  These curves land the paper's task types in
the right region (a 4-element 8/9-bit vector product datapath around 70 CLBs,
the 17-bit variant around 180 CLBs) while remaining honest, documented
formulas rather than reverse-engineered constants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from ..dfg.operations import OpKind
from ..errors import EstimationError
from ..units import ns
from .component import (
    ALU_KINDS,
    MAC_KINDS,
    MEMORY_PORT_KINDS,
    MULTIPLIER_KINDS,
    REGISTER_KINDS,
    SHIFTER_KINDS,
    STEERING_KINDS,
    Component,
    functional_unit_class,
)


@dataclass(frozen=True)
class CharacterisationCurve:
    """Area/delay curves for one functional-unit class on one family.

    ``area(width)  = area_base + area_linear * width + area_quadratic * width^2``
    ``delay(width) = delay_base + delay_linear * width`` (seconds)
    """

    area_base: float
    area_linear: float
    area_quadratic: float
    delay_base: float
    delay_linear: float

    def area(self, width: int) -> int:
        """CLB count at *width* (at least 1)."""
        value = self.area_base + self.area_linear * width + self.area_quadratic * width * width
        return max(1, math.ceil(value))

    def delay(self, width: int) -> float:
        """Combinational delay in seconds at *width*."""
        return max(0.0, self.delay_base + self.delay_linear * width)


class ComponentLibrary:
    """A family-specific set of characterisation curves."""

    def __init__(self, family: str, curves: Dict[str, CharacterisationCurve]) -> None:
        required = {"alu", "multiplier", "mac", "shifter", "memory_port", "steering", "register"}
        missing = required - set(curves)
        if missing:
            raise EstimationError(
                f"component library for family {family!r} is missing curves for "
                f"{sorted(missing)}"
            )
        self.family = family
        self._curves = dict(curves)

    def curve(self, unit_class: str) -> CharacterisationCurve:
        """The characterisation curve for a functional-unit class."""
        try:
            return self._curves[unit_class]
        except KeyError:
            raise EstimationError(
                f"family {self.family!r} has no curve for unit class {unit_class!r}"
            )

    def component_for(self, kind: OpKind, width: int) -> Component:
        """A characterised component able to execute *kind* at *width* bits."""
        unit_class = functional_unit_class(kind)
        curve = self.curve(unit_class)
        kinds = {
            "alu": ALU_KINDS,
            "multiplier": MULTIPLIER_KINDS,
            "mac": MAC_KINDS,
            "shifter": SHIFTER_KINDS,
            "memory_port": MEMORY_PORT_KINDS,
            "steering": STEERING_KINDS,
            "register": REGISTER_KINDS,
        }[unit_class]
        return Component(
            name=f"{unit_class}{width}",
            supported_kinds=kinds,
            width=width,
            area_clbs=curve.area(width),
            delay=curve.delay(width),
        )

    def register_area(self, width: int) -> int:
        """CLB cost of a *width*-bit register (two flip-flops per CLB)."""
        return self.curve("register").area(width)

    def mux_area(self, width: int, inputs: int = 2) -> int:
        """CLB cost of an *inputs*-to-1 multiplexer of *width* bits."""
        if inputs < 2:
            return 0
        levels = math.ceil(math.log2(inputs))
        return self.curve("steering").area(width) * levels

    def controller_area(self, state_count: int) -> int:
        """CLB cost of a one-hot FSM controller with *state_count* states.

        One flip-flop per state (two per CLB) plus next-state/output logic of
        roughly one CLB per two states, plus a small fixed overhead for the
        handshake logic.
        """
        if state_count < 1:
            raise EstimationError("controller must have at least one state")
        return math.ceil(state_count / 2) + math.ceil(state_count / 2) + 4

    def describe(self) -> str:
        """One-line summary of the library."""
        return f"ComponentLibrary(family={self.family!r})"


def xc4000_library() -> ComponentLibrary:
    """Characterisation for the Xilinx XC4000 family (the case-study device)."""
    return ComponentLibrary(
        family="xc4000",
        curves={
            # Ripple-carry ALU: ~0.5 CLB/bit, ~0.8 ns/bit plus routing.
            "alu": CharacterisationCurve(0.0, 0.5, 0.0, ns(3.0), ns(0.8)),
            # Array multiplier: ~0.5 CLB/bit^2, delay ~2.2 ns per partial-product row.
            "multiplier": CharacterisationCurve(2.0, 0.0, 0.5, ns(4.0), ns(2.2)),
            # Fused MAC: multiplier plus merged final adder.
            "mac": CharacterisationCurve(4.0, 0.5, 0.5, ns(6.0), ns(2.4)),
            # Logarithmic barrel shifter.
            "shifter": CharacterisationCurve(0.0, 1.0, 0.0, ns(4.0), ns(0.3)),
            # Memory port: address register, data register and control.
            "memory_port": CharacterisationCurve(6.0, 1.0, 0.0, ns(15.0), ns(0.2)),
            # 2:1 mux, 0.5 CLB/bit.
            "steering": CharacterisationCurve(0.0, 0.5, 0.0, ns(1.5), ns(0.05)),
            # Register, 0.5 CLB/bit (two FFs per CLB).
            "register": CharacterisationCurve(0.0, 0.5, 0.0, ns(1.0), ns(0.0)),
        },
    )


def xc6200_library() -> ComponentLibrary:
    """Characterisation for an XC6200-class fine-grained device.

    The XC6200 uses much finer cells; expressing its costs in "CLB
    equivalents" keeps the rest of the flow unchanged.  Cells are a little
    slower per bit but the device reconfigures in microseconds (captured by
    the device model, not the library).
    """
    return ComponentLibrary(
        family="xc6200",
        curves={
            "alu": CharacterisationCurve(0.0, 0.6, 0.0, ns(3.5), ns(0.9)),
            "multiplier": CharacterisationCurve(2.0, 0.0, 0.6, ns(5.0), ns(2.5)),
            "mac": CharacterisationCurve(4.0, 0.6, 0.6, ns(7.0), ns(2.7)),
            "shifter": CharacterisationCurve(0.0, 1.1, 0.0, ns(4.0), ns(0.35)),
            "memory_port": CharacterisationCurve(6.0, 1.1, 0.0, ns(16.0), ns(0.25)),
            "steering": CharacterisationCurve(0.0, 0.55, 0.0, ns(1.6), ns(0.06)),
            "register": CharacterisationCurve(0.0, 0.55, 0.0, ns(1.0), ns(0.0)),
        },
    )


_LIBRARIES = {
    "xc4000": xc4000_library,
    "xc6200": xc6200_library,
}


def library_for_family(family: str) -> ComponentLibrary:
    """The component library characterised for *family*.

    Unknown families fall back to the XC4000 characterisation (with the family
    name preserved) so that generic/synthetic devices can be estimated without
    registering a bespoke library first.
    """
    factory = _LIBRARIES.get(family)
    if factory is not None:
        return factory()
    base = xc4000_library()
    return ComponentLibrary(family=family, curves={
        name: base.curve(name)
        for name in ("alu", "multiplier", "mac", "shifter", "memory_port", "steering", "register")
    })
