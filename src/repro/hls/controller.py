"""Controller synthesis, including the augmented RTR controller of Figure 7.

A conventional HLS controller walks once through the datapath states and
stops.  The paper's extension for run-time reconfigured designs (Section 3,
"Controller Synthesis") adds an iteration counter and a ``finish`` handshake:

* the controller sits in a START state waiting for the host's start signal;
* it runs the datapath states once per loop iteration;
* at the end of a run it compares the iteration counter against the iteration
  bound ``k``; if more iterations remain it increments the counter and loops
  back, otherwise it raises the ``finish`` signal and returns to the START
  state.

Both the structural FSM description and a cycle-level behavioural model are
provided; the behavioural model is what the execution simulator and the tests
drive.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import List, Optional

from ..errors import SynthesisError


class ControllerPhase(str, Enum):
    """Phases of the augmented controller's finite state machine."""

    START = "start"
    RUNNING = "running"
    CHECK_ITERATION = "check_iteration"
    FINISHED = "finished"


@dataclass(frozen=True)
class ControllerSpec:
    """Static description of an augmented RTR controller.

    Parameters
    ----------
    name:
        Controller name (normally the temporal partition's name).
    datapath_states:
        Number of datapath control states for one loop iteration (one per
        schedule cycle).
    iteration_bound:
        The number of loop iterations ``k`` performed per board invocation.
        This is the value loaded into the iteration-bound register.
    counter_width:
        Width of the iteration counter register in bits; must be able to hold
        ``iteration_bound``.
    """

    name: str
    datapath_states: int
    iteration_bound: int
    counter_width: int = 16

    def __post_init__(self) -> None:
        if self.datapath_states < 1:
            raise SynthesisError("controller needs at least one datapath state")
        if self.iteration_bound < 1:
            raise SynthesisError("iteration bound k must be at least 1")
        if self.iteration_bound >= (1 << self.counter_width):
            raise SynthesisError(
                f"iteration bound {self.iteration_bound} does not fit in a "
                f"{self.counter_width}-bit counter"
            )

    @property
    def total_states(self) -> int:
        """Total FSM states: START + datapath states + iteration check."""
        return self.datapath_states + 2

    def cycles_per_invocation(self) -> int:
        """Clock cycles from start signal to finish signal for ``k`` iterations.

        Each iteration spends one cycle per datapath state plus one cycle in
        the iteration-check state; one extra cycle is spent leaving START.
        """
        return 1 + self.iteration_bound * (self.datapath_states + 1)


@dataclass
class ControllerState:
    """Mutable execution state of the behavioural controller model."""

    phase: ControllerPhase = ControllerPhase.START
    datapath_state: int = 0
    iteration: int = 0
    finish_signal: bool = False
    cycles_elapsed: int = 0


class AugmentedController:
    """Cycle-level behavioural model of the Figure-7 controller."""

    def __init__(self, spec: ControllerSpec) -> None:
        self.spec = spec
        self.state = ControllerState()
        self._iterations_completed_total = 0

    # ------------------------------------------------------------------
    # Host-visible interface
    # ------------------------------------------------------------------

    @property
    def finish(self) -> bool:
        """Level of the ``finish`` output signal."""
        return self.state.finish_signal

    @property
    def iterations_completed(self) -> int:
        """Loop iterations completed since the last start signal."""
        return self.state.iteration

    def send_start(self) -> None:
        """Model the host writing the start signal."""
        if self.state.phase is not ControllerPhase.START and not self.state.finish_signal:
            raise SynthesisError(
                f"controller {self.spec.name!r} received a start signal while busy"
            )
        self.state = ControllerState(phase=ControllerPhase.RUNNING)

    # ------------------------------------------------------------------
    # Clocked behaviour
    # ------------------------------------------------------------------

    def step(self) -> ControllerState:
        """Advance the FSM by one clock cycle and return the new state."""
        state = self.state
        if state.phase is ControllerPhase.START:
            # Idle: waiting for the host; nothing changes, no cycles consumed
            # on the datapath (the simulator does not call step() while idle).
            return state
        state.cycles_elapsed += 1
        if state.phase is ControllerPhase.RUNNING:
            state.datapath_state += 1
            if state.datapath_state >= self.spec.datapath_states:
                state.phase = ControllerPhase.CHECK_ITERATION
            return state
        if state.phase is ControllerPhase.CHECK_ITERATION:
            state.iteration += 1
            self._iterations_completed_total += 1
            if state.iteration < self.spec.iteration_bound:
                state.datapath_state = 0
                state.phase = ControllerPhase.RUNNING
            else:
                state.phase = ControllerPhase.FINISHED
                state.finish_signal = True
            return state
        # FINISHED: finish stays asserted until the next start signal.
        return state

    def run_to_finish(self, max_cycles: Optional[int] = None) -> int:
        """Clock the controller until ``finish`` rises; return cycles consumed."""
        limit = max_cycles if max_cycles is not None else 10 * self.spec.cycles_per_invocation()
        cycles = 0
        # Leaving the START state costs one cycle (the start-state transition).
        if self.state.phase is ControllerPhase.RUNNING and self.state.cycles_elapsed == 0:
            self.state.cycles_elapsed = 1
            cycles = 1
        while not self.state.finish_signal:
            if cycles >= limit:
                raise SynthesisError(
                    f"controller {self.spec.name!r} did not finish within {limit} cycles"
                )
            self.step()
            cycles = self.state.cycles_elapsed
        return self.state.cycles_elapsed

    # ------------------------------------------------------------------
    # Structural view (for RTL emission and reports)
    # ------------------------------------------------------------------

    def state_names(self) -> List[str]:
        """Names of all FSM states in order."""
        names = ["S_START"]
        names.extend(f"S_DP{i}" for i in range(self.spec.datapath_states))
        names.append("S_CHECK_ITER")
        return names


def controller_for_schedule(
    name: str, schedule_cycles: int, iteration_bound: int, counter_width: int = 16
) -> AugmentedController:
    """Build an augmented controller for a datapath of *schedule_cycles* states."""
    spec = ControllerSpec(
        name=name,
        datapath_states=max(1, schedule_cycles),
        iteration_bound=iteration_bound,
        counter_width=counter_width,
    )
    return AugmentedController(spec)
