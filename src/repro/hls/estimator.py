"""Behaviour-level area/delay estimation (the library's stand-in for DSS).

Given a task's operation-level data-flow graph, a target device and a user
clock constraint, the estimator produces the two numbers the temporal
partitioner consumes — FPGA resources ``R(t)`` and execution delay ``D(t)`` —
together with the supporting detail (allocation, schedule, clock) needed by
the RTL generation step.

The estimation recipe mirrors a classic HLS estimator:

1. enumerate a ladder of functional-unit allocations (minimal → parallelism
   limited);
2. for each allocation pick a clock period (slowest component plus estimated
   routing, clamped to the user's maximum clock width) and multi-cycle any
   component slower than the clock;
3. list-schedule the DFG under the allocation to get a cycle count, and add
   the memory-port cycles needed to stream the task's environment I/O;
4. cost the datapath: functional units + registers + steering muxes +
   controller, inflated by the floorplan/layout model;
5. keep the best candidate for the requested goal (minimum area or minimum
   delay) that fits the device.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from ..arch.device import CLB, FpgaDevice, ResourceVector
from ..dfg.graph import DataFlowGraph
from ..dfg.operations import OpKind
from ..errors import EstimationError
from ..taskgraph.graph import TaskGraph
from ..taskgraph.task import TaskCost
from .allocation import (
    Allocation,
    allocation_candidates,
    bind_schedule,
    steering_inputs,
)
from .component import functional_unit_class
from .layout import LayoutModel, default_layout_model
from .library import ComponentLibrary, library_for_family
from .scheduling import Schedule, list_schedule

#: Clock periods are quantised to this grid (seconds); mirrors the paper's
#: habit of quoting clocks in round nanoseconds (50 ns, 70 ns, 100 ns).
CLOCK_GRID = 1e-9


@dataclass
class AreaBreakdown:
    """Where the CLBs of an estimate go (before layout inflation)."""

    functional_units: int = 0
    registers: int = 0
    steering: int = 0
    controller: int = 0
    memory_ports: int = 0

    @property
    def raw_total(self) -> int:
        """Sum of all contributions."""
        return (
            self.functional_units
            + self.registers
            + self.steering
            + self.controller
            + self.memory_ports
        )


@dataclass
class TaskEstimate:
    """Full estimation result for one task datapath."""

    dfg_name: str
    clbs: int
    cycles: int
    clock_period: float
    allocation: Allocation
    schedule: Schedule
    breakdown: AreaBreakdown = field(default_factory=AreaBreakdown)

    @property
    def delay(self) -> float:
        """Execution delay ``D(t)`` in seconds (cycles x clock period)."""
        return self.cycles * self.clock_period

    def to_task_cost(self) -> TaskCost:
        """Convert to the :class:`TaskCost` consumed by the partitioner."""
        return TaskCost(
            resources=ResourceVector({CLB: self.clbs}),
            delay=self.delay,
            cycles=self.cycles,
            clock_period=self.clock_period,
        )

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.dfg_name}: {self.clbs} CLBs, {self.cycles} cycles @ "
            f"{self.clock_period * 1e9:.0f} ns = {self.delay * 1e9:.0f} ns"
        )


class TaskEstimator:
    """Estimates ``R(t)`` and ``D(t)`` for task data-flow graphs.

    Parameters
    ----------
    device:
        Target FPGA; its family selects the component library and its CLB
        capacity bounds feasible estimates.
    max_clock_period:
        The user constraint of the paper ("the maximum clock-width for the
        design") in seconds; components slower than this are multi-cycled.
    library:
        Component library override (defaults to the device family's library).
    layout_model:
        Floorplan/layout overhead model.
    goal:
        ``"area"`` (default) keeps the smallest candidate, ``"delay"`` keeps
        the fastest candidate that fits the device.
    """

    def __init__(
        self,
        device: FpgaDevice,
        max_clock_period: float = 100e-9,
        library: Optional[ComponentLibrary] = None,
        layout_model: Optional[LayoutModel] = None,
        goal: str = "area",
    ) -> None:
        if max_clock_period <= 0:
            raise EstimationError("max_clock_period must be positive")
        if goal not in ("area", "delay"):
            raise EstimationError(f"goal must be 'area' or 'delay', got {goal!r}")
        self.device = device
        self.max_clock_period = max_clock_period
        self.library = library or library_for_family(device.family)
        self.layout_model = layout_model or default_layout_model()
        self.goal = goal

    # ------------------------------------------------------------------
    # Single-DFG estimation
    # ------------------------------------------------------------------

    def estimate_dfg(
        self,
        dfg: DataFlowGraph,
        env_io_words: int = 0,
        allocation: Optional[Allocation] = None,
    ) -> TaskEstimate:
        """Estimate a single data-flow graph.

        *env_io_words* is the number of memory words the task streams in and
        out per execution (environment plus inter-task data); each word costs
        one memory-port cycle in the schedule.
        """
        dfg.validate()
        if not dfg.compute_operations():
            raise EstimationError(f"DFG {dfg.name!r} has no compute operations")
        candidates = [allocation] if allocation is not None else allocation_candidates(
            dfg, self.library
        )
        estimates = []
        for candidate in candidates:
            estimates.append(self._estimate_with_allocation(dfg, candidate, env_io_words))
        feasible = [e for e in estimates if e.clbs <= self.device.clb_count]
        pool = feasible or estimates
        if self.goal == "area":
            best = min(pool, key=lambda e: (e.clbs, e.delay))
        else:
            best = min(pool, key=lambda e: (e.delay, e.clbs))
        return best

    def _estimate_with_allocation(
        self, dfg: DataFlowGraph, allocation: Allocation, env_io_words: int
    ) -> TaskEstimate:
        clock_period = self._choose_clock_period(dfg, allocation)

        def duration_of(kind: OpKind, width: int) -> int:
            unit_class = functional_unit_class(kind)
            component = allocation.components.get(unit_class)
            if component is None:
                component = self.library.component_for(kind, width)
            return component.cycles_at(clock_period)

        schedule = list_schedule(dfg, allocation.unit_limits(), duration_of)
        io_cycles = max(0, int(env_io_words))
        cycles = schedule.makespan + io_cycles

        breakdown = self._area_breakdown(dfg, allocation, schedule, env_io_words, cycles)
        raw = breakdown.raw_total
        adjusted = self.layout_model.adjusted_area(raw, self.device)
        return TaskEstimate(
            dfg_name=dfg.name,
            clbs=adjusted,
            cycles=cycles,
            clock_period=clock_period,
            allocation=allocation,
            schedule=schedule,
            breakdown=breakdown,
        )

    def _choose_clock_period(self, dfg: DataFlowGraph, allocation: Allocation) -> float:
        """Clock period: slowest component + routing, clamped to the constraint."""
        raw_area = allocation.total_functional_area()
        slowest = allocation.slowest_component_delay()
        adjusted = self.layout_model.adjusted_clock_period(slowest, raw_area, self.device)
        period = min(adjusted, self.max_clock_period)
        period = max(period, self.device.min_clock_period)
        if period > self.device.max_clock_period:
            raise EstimationError(
                f"required clock period {period * 1e9:.1f} ns exceeds the device "
                f"maximum {self.device.max_clock_period * 1e9:.1f} ns"
            )
        # Quantise up to the clock grid so reported clocks are round numbers.
        return math.ceil(period / CLOCK_GRID) * CLOCK_GRID

    def _area_breakdown(
        self,
        dfg: DataFlowGraph,
        allocation: Allocation,
        schedule: Schedule,
        env_io_words: int,
        total_cycles: int,
    ) -> AreaBreakdown:
        breakdown = AreaBreakdown()
        breakdown.functional_units = allocation.total_functional_area()

        # Registers: every functional-unit instance gets an output register and
        # each operand port gets an input register at the component width.
        register_area = 0
        for unit_class, count in allocation.instances.items():
            width = allocation.components[unit_class].width
            register_area += count * self.library.register_area(width) * 2
        breakdown.registers = register_area

        # Steering: an instance fed from k distinct producers needs a k-to-1
        # mux per operand port (approximated as one port).
        binding = bind_schedule(schedule, dfg)
        steering_area = 0
        for label, distinct_sources in steering_inputs(binding, dfg).items():
            unit_class = label.split("#", 1)[0]
            width = allocation.components[unit_class].width
            steering_area += self.library.mux_area(width, max(2, distinct_sources))
        breakdown.steering = steering_area

        # Controller: one-hot FSM with one state per cycle of the schedule.
        breakdown.controller = self.library.controller_area(max(1, total_cycles))

        # Memory port needed when the task streams data to/from board memory.
        if env_io_words > 0:
            widest = max((op.width for op in dfg.compute_operations()), default=16)
            port = self.library.component_for(OpKind.MEMORY_READ, widest)
            breakdown.memory_ports = port.area_clbs
        return breakdown

    # ------------------------------------------------------------------
    # Task-graph estimation
    # ------------------------------------------------------------------

    def estimate_task_graph(self, graph: TaskGraph, force: bool = False) -> TaskGraph:
        """Attach estimated costs to every task of *graph* (in place).

        Tasks that already carry a cost are left untouched unless *force* is
        set.  Tasks without a DFG must already have a cost.  Returns the graph
        to allow chaining.
        """
        for name in graph.task_names():
            task = graph.task(name)
            if task.has_cost and not force:
                continue
            if task.dfg is None:
                raise EstimationError(
                    f"task {name!r} has neither a cost nor a DFG to estimate from"
                )
            io_words = graph.env_input_words(name) + graph.env_output_words(name)
            io_words += sum(
                graph.edge_words(pred, name) for pred in graph.predecessors(name)
            )
            io_words += sum(
                graph.edge_words(name, succ) for succ in graph.successors(name)
            )
            estimate = self.estimate_dfg(task.dfg, env_io_words=io_words)
            graph.set_cost(name, estimate.to_task_cost())
        return graph

    def estimate_composite(
        self, dfgs: List[DataFlowGraph], env_io_words: int = 0, name: str = "composite"
    ) -> TaskEstimate:
        """Estimate several DFGs synthesised together as one static datapath.

        Used for the static (non-reconfigured) baseline design: the DFGs are
        concatenated into a single graph (with namespacing to keep operation
        names unique) and estimated as one datapath sharing functional units.
        """
        merged = merge_dfgs(dfgs, name=name)
        return self.estimate_dfg(merged, env_io_words=env_io_words)


def merge_dfgs(dfgs: List[DataFlowGraph], name: str = "composite") -> DataFlowGraph:
    """Concatenate several DFGs into one, prefixing node names to keep them unique."""
    if not dfgs:
        raise EstimationError("merge_dfgs needs at least one DFG")
    merged = DataFlowGraph(name)
    for index, dfg in enumerate(dfgs):
        prefix = f"g{index}_"
        for op in dfg.operations():
            merged.add_operation(
                type(op)(
                    name=prefix + op.name,
                    kind=op.kind,
                    width=op.width,
                    value=op.value,
                )
            )
        for producer, consumer in dfg.edges():
            merged.add_dependency(prefix + producer, prefix + consumer)
    return merged
