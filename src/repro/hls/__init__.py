"""High-level synthesis estimation and RTL generation (the DSS substitute).

This package estimates the per-task FPGA resources ``R(t)`` and delays
``D(t)`` the temporal partitioner consumes, and generates the RTL-level
artefacts (datapath, augmented controller, HDL-style text) for each temporal
partition.
"""

from .allocation import (
    Allocation,
    Binding,
    allocation_candidates,
    bind_schedule,
    minimal_allocation,
    parallelism_limited_allocation,
    required_unit_classes,
    steering_inputs,
    widest_component_per_class,
)
from .component import Component, functional_unit_class
from .controller import (
    AugmentedController,
    ControllerPhase,
    ControllerSpec,
    ControllerState,
    controller_for_schedule,
)
from .datapath import Datapath, FunctionalUnitInstance, MuxInstance, RegisterInstance, build_datapath
from .estimator import AreaBreakdown, TaskEstimate, TaskEstimator, merge_dfgs
from .layout import LayoutModel, default_layout_model
from .library import (
    CharacterisationCurve,
    ComponentLibrary,
    library_for_family,
    xc4000_library,
    xc6200_library,
)
from .rtl import RtlDesign, emit_vhdl_like
from .scheduling import (
    Schedule,
    ScheduledOperation,
    alap_schedule,
    asap_schedule,
    list_schedule,
    mobility,
)

__all__ = [
    "Allocation",
    "AreaBreakdown",
    "AugmentedController",
    "Binding",
    "CharacterisationCurve",
    "Component",
    "ComponentLibrary",
    "ControllerPhase",
    "ControllerSpec",
    "ControllerState",
    "Datapath",
    "FunctionalUnitInstance",
    "LayoutModel",
    "MuxInstance",
    "RegisterInstance",
    "RtlDesign",
    "Schedule",
    "ScheduledOperation",
    "TaskEstimate",
    "TaskEstimator",
    "alap_schedule",
    "allocation_candidates",
    "asap_schedule",
    "bind_schedule",
    "build_datapath",
    "controller_for_schedule",
    "default_layout_model",
    "emit_vhdl_like",
    "functional_unit_class",
    "library_for_family",
    "list_schedule",
    "merge_dfgs",
    "minimal_allocation",
    "mobility",
    "parallelism_limited_allocation",
    "required_unit_classes",
    "steering_inputs",
    "widest_component_per_class",
    "xc4000_library",
    "xc6200_library",
]
