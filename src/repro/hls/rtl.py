"""RTL design container and HDL-style emission.

For every temporal partition the synthesis flow produces an :class:`RtlDesign`
bundling the datapath, the augmented controller and the memory map.  The
:func:`emit_vhdl_like` function renders a readable, VHDL-flavoured structural
description — this stands in for the Synplify/Xilinx-M1 hand-off of the
original flow (no real bitstreams can be produced without the vendor tools,
and none are needed for the evaluation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..errors import SynthesisError
from .controller import AugmentedController
from .datapath import Datapath


@dataclass
class RtlDesign:
    """One synthesised configuration (temporal partition) at RTL level."""

    name: str
    datapath: Datapath
    controller: AugmentedController
    clock_period: float
    estimated_clbs: int
    memory_layout: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise SynthesisError("RTL design must have a positive clock period")
        if self.estimated_clbs < 0:
            raise SynthesisError("estimated CLB count must be non-negative")

    @property
    def cycles_per_iteration(self) -> int:
        """Datapath states walked per loop iteration."""
        return self.controller.spec.datapath_states

    @property
    def iteration_bound(self) -> int:
        """Loop iterations ``k`` performed per board invocation."""
        return self.controller.spec.iteration_bound

    def describe(self) -> str:
        """Multi-line summary used in reports and examples."""
        lines = [
            f"configuration {self.name}: {self.estimated_clbs} CLBs, "
            f"{self.cycles_per_iteration} cycles @ {self.clock_period * 1e9:.0f} ns, "
            f"k={self.iteration_bound}",
            self.datapath.describe(),
        ]
        if self.memory_layout:
            lines.append("  memory layout (word offsets): " + ", ".join(
                f"{segment}@{offset}" for segment, offset in sorted(self.memory_layout.items())
            ))
        return "\n".join(lines)


def emit_vhdl_like(design: RtlDesign) -> str:
    """Render a VHDL-flavoured structural description of *design*.

    The output is meant for human review and for diffing in tests; it is not
    fed to a real synthesiser.
    """
    dp = design.datapath
    lines: List[str] = []
    lines.append(f"-- configuration {design.name}")
    lines.append(f"-- estimated area: {design.estimated_clbs} CLBs")
    lines.append(
        f"-- clock period: {design.clock_period * 1e9:.0f} ns, "
        f"{design.cycles_per_iteration} states/iteration, k={design.iteration_bound}"
    )
    lines.append(f"entity {_identifier(design.name)} is")
    lines.append("  port (")
    lines.append("    clk        : in  std_logic;")
    lines.append("    reset      : in  std_logic;")
    lines.append("    start      : in  std_logic;")
    lines.append("    finish     : out std_logic;")
    if dp.has_memory_port:
        lines.append("    mem_addr   : out std_logic_vector(23 downto 0);")
        lines.append(
            f"    mem_wdata  : out std_logic_vector({dp.memory_port_width - 1} downto 0);"
        )
        lines.append(
            f"    mem_rdata  : in  std_logic_vector({dp.memory_port_width - 1} downto 0);"
        )
        lines.append("    mem_we     : out std_logic;")
    lines.append("    iteration_bound : in std_logic_vector(15 downto 0)")
    lines.append("  );")
    lines.append(f"end entity {_identifier(design.name)};")
    lines.append("")
    lines.append(f"architecture rtl of {_identifier(design.name)} is")

    for unit in dp.functional_units:
        lines.append(
            f"  -- functional unit {unit.label}: {unit.unit_class}, "
            f"{unit.width} bits, {unit.area_clbs} CLBs"
        )
        lines.append(
            f"  signal {_identifier(unit.label)}_a, {_identifier(unit.label)}_b, "
            f"{_identifier(unit.label)}_y : std_logic_vector({unit.width - 1} downto 0);"
        )
    for register in dp.registers:
        lines.append(
            f"  signal {_identifier(register.name)} : "
            f"std_logic_vector({register.width - 1} downto 0);  -- {register.purpose}"
        )
    for mux in dp.muxes:
        lines.append(
            f"  -- steering mux {mux.name}: {mux.inputs} inputs x {mux.width} bits"
        )
    state_names = design.controller.state_names()
    lines.append(
        "  type state_t is (" + ", ".join(state_names) + ");"
    )
    lines.append("  signal state : state_t := S_START;")
    lines.append("  signal iter_count : unsigned(15 downto 0) := (others => '0');")
    lines.append("begin")
    lines.append("  -- augmented RTR controller (iteration counter + finish handshake)")
    lines.append("  controller : process (clk)")
    lines.append("  begin")
    lines.append("    if rising_edge(clk) then")
    lines.append("      case state is")
    lines.append("        when S_START =>")
    lines.append("          finish <= '0';")
    lines.append("          if start = '1' then")
    lines.append("            iter_count <= (others => '0');")
    lines.append(f"            state <= {state_names[1]};")
    lines.append("          end if;")
    for index in range(design.controller.spec.datapath_states):
        current = state_names[1 + index]
        following = (
            state_names[2 + index]
            if index + 1 < design.controller.spec.datapath_states
            else "S_CHECK_ITER"
        )
        lines.append(f"        when {current} =>")
        lines.append(f"          state <= {following};")
    lines.append("        when S_CHECK_ITER =>")
    lines.append("          if iter_count + 1 < unsigned(iteration_bound) then")
    lines.append("            iter_count <= iter_count + 1;")
    lines.append(f"            state <= {state_names[1]};")
    lines.append("          else")
    lines.append("            finish <= '1';")
    lines.append("            state <= S_START;")
    lines.append("          end if;")
    lines.append("      end case;")
    lines.append("    end if;")
    lines.append("  end process controller;")
    lines.append("end architecture rtl;")
    return "\n".join(lines) + "\n"


def _identifier(text: str) -> str:
    """Sanitise a name into a VHDL-ish identifier."""
    cleaned = "".join(ch if ch.isalnum() or ch == "_" else "_" for ch in text)
    if not cleaned or cleaned[0].isdigit():
        cleaned = "u_" + cleaned
    return cleaned.lower()
