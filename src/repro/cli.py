"""Command-line interface for the library.

The CLI exposes the flows a downstream user most commonly wants without
writing Python:

* ``repro partition <taskgraph.json>`` — temporally partition a task graph
  (ILP or a heuristic) on a named or custom system and print the result;
* ``repro partition-batch <taskgraph.json> ...`` — solve a whole batch of
  partitioning problems through the caching/parallel engine, optionally
  sweeping the reconfiguration time, with table/JSON/CSV output;
* ``repro flow`` — run the complete Figure-2 flow (partition, loop fission,
  memory map, host code) on a task-graph file or a registered workload
  (``--workload jpeg_dct``), or a whole batch of workload flows through the
  flow engine (``--workload all --batch``);
* ``repro workloads list`` / ``repro workloads show <name>`` — browse the
  workload catalog;
* ``repro explore`` — search the (workload, system, CT, partitioner,
  sequencing) design space for Pareto-optimal designs with a chosen
  strategy, budget and objectives, against a resumable run store;
* ``repro verify`` — differentially verify the whole flow on seeded random
  scenarios: ILP vs. list partitioner, analytic timing vs. the event
  simulator, warm vs. cold caches, memory-map legality — with failing
  scenarios shrunk to minimal counterexamples;
* ``repro serve`` — run the long-lived design-flow daemon: an async
  HTTP/JSON API with a bounded deduplicating job queue and N flow-engine
  workers over the shared caches;
* ``repro submit`` / ``repro job`` — client commands against a running
  daemon (submit flow jobs, watch/wait/cancel them, fetch results);
* ``repro cache stats`` / ``clear`` / ``prune`` — inspect and manage the
  shared disk caches (partition outcomes plus per-stage flow artifacts);
* ``repro frontier`` — the JPEG-DCT Pareto frontier vs. the paper's own
  design point;
* ``repro table1`` / ``repro table2`` — regenerate the paper's tables;
* ``repro case-study`` — print the full case-study summary (partitioning,
  fission analysis, headline comparisons);
* ``repro systems`` — list the named system presets.

Run ``python -m repro.cli --help`` (or ``repro --help`` once installed with
entry points) for details.
"""

from __future__ import annotations

import argparse
import csv
import json
import sys
from dataclasses import replace as dataclasses_replace
from typing import List, Optional

from .arch import SYSTEM_PRESETS, generic_system, system_by_name
from .errors import ReproError
from .experiments import (
    build_case_study,
    format_reproduction_report,
    reproduce_table1,
    reproduce_table2,
    reproduction_report,
)
from .experiments.table2 import xc6000_conjecture
from .fission import SequencingStrategy, compare_static_vs_rtr
from .jpeg import build_dct_task_graph, static_design_delay
from .partition import (
    MULTILEVEL_INNER_CHOICES,
    AnnealTemporalPartitioner,
    IlpTemporalPartitioner,
    LevelClusteringPartitioner,
    ListTemporalPartitioner,
    MultilevelPartitioner,
    PartitionProblem,
    PortfolioPartitioner,
    assert_valid,
    compute_metrics,
    multilevel_inner,
)
from .runtime import EngineConfig, PartitionEngine, ct_sweep_jobs
from .synth import DesignFlow, FlowEngine, FlowOptions, workload_flow_jobs
from .taskgraph import load as load_taskgraph
from .units import format_time

#: Default target-system preset applied when none is chosen explicitly.
DEFAULT_SYSTEM = "paper-xc4044"

#: ``--partitioner`` values the CLI accepts; the ``multilevel:<inner>``
#: spellings pick the engine the multilevel scheme runs on the coarse graph.
PARTITIONER_CHOICES = [
    "ilp", "list", "level", "anneal", "portfolio", "multilevel",
    *[f"multilevel:{inner}" for inner in MULTILEVEL_INNER_CHOICES],
]


def _version() -> str:
    """The installed distribution version (source-tree fallback)."""
    try:
        from importlib.metadata import PackageNotFoundError, version

        return version("repro-rtr-partitioning")
    except Exception:  # noqa: BLE001 - metadata is best-effort
        from . import __version__

        return __version__


def _make_system(args: argparse.Namespace):
    """Build the target system from --system / --clbs / --memory / --ct."""
    chosen = args.system or DEFAULT_SYSTEM
    if chosen != "custom":
        system = system_by_name(chosen)
        if args.ct is not None:
            system = system.with_reconfiguration_time(args.ct / 1000.0)
        return system
    return generic_system(
        clb_capacity=args.clbs,
        memory_words=args.memory,
        reconfiguration_time=(args.ct if args.ct is not None else 10.0) / 1000.0,
    )


def _parse_ct_sweep(text: str) -> Optional[List[float]]:
    """Parse a comma-separated millisecond list into seconds (None if empty)."""
    if not text:
        return None
    try:
        return [float(value) / 1000.0 for value in text.split(",")]
    except ValueError:
        raise ReproError(
            f"--ct-sweep expects comma-separated milliseconds, got {text!r}"
        )


def _load_graph(path: Optional[str]):
    """Load a task graph from JSON, or default to the case-study DCT graph."""
    if path is None or path == "dct":
        return build_dct_task_graph()
    try:
        return load_taskgraph(path)
    except OSError as error:
        raise ReproError(f"cannot read task graph {path!r}: {error}") from error


# ---------------------------------------------------------------------------
# Sub-command implementations
# ---------------------------------------------------------------------------

def cmd_systems(args: argparse.Namespace) -> int:
    print("Available system presets:")
    for name in sorted(SYSTEM_PRESETS):
        system = system_by_name(name)
        print(f"  {name:<14} {system.fpga.describe()}")
    print("  custom         use --clbs/--memory/--ct to define an ad-hoc system")
    return 0


def cmd_partition(args: argparse.Namespace) -> int:
    graph = _load_graph(args.taskgraph)
    system = _make_system(args)
    problem = PartitionProblem.from_system(graph, system)
    inner = multilevel_inner(args.partitioner)
    if inner is not None:
        partitioner = MultilevelPartitioner(inner=inner, ilp_backend=args.backend)
    elif args.partitioner == "ilp":
        partitioner = IlpTemporalPartitioner(backend=args.backend)
    elif args.partitioner == "list":
        partitioner = ListTemporalPartitioner()
    elif args.partitioner == "anneal":
        partitioner = AnnealTemporalPartitioner()
    elif args.partitioner == "portfolio":
        partitioner = PortfolioPartitioner(ilp_backend=args.backend)
    else:
        partitioner = LevelClusteringPartitioner()
    result = partitioner.partition(problem)
    assert_valid(problem, result)
    print(result.describe())
    metrics = compute_metrics(result, problem.resource_capacity)
    print(f"mean utilisation: {metrics.mean_utilisation * 100:.0f}%  "
          f"max boundary transfer: {metrics.max_boundary_words} words")
    if args.partitioner == "ilp" and partitioner.last_report is not None:
        report = partitioner.last_report
        print(f"ILP: {report.model_variables} variables, {report.model_constraints} "
              f"constraints, solved in {report.solve_time:.2f} s "
              f"(bounds tried: {report.attempted_bounds})")
    if args.partitioner == "portfolio" and partitioner.last_report is not None:
        report = partitioner.last_report
        print(f"portfolio: winner={report.winner} certified={report.certified} "
              f"lower bound {report.lower_bound * 1e6:.2f} us "
              f"({report.total_time:.2f} s)")
    if inner is not None and partitioner.last_report is not None:
        report = partitioner.last_report
        levels = "->".join(str(count) for count in report.level_sizes)
        print(f"multilevel: inner={report.inner} levels {levels} "
              f"refine moves={report.refinement_moves} "
              f"(coarsen {report.coarsen_time:.2f} s, "
              f"inner {report.inner_time:.2f} s)")
    return 0


def _format_batch_rows(rows: List[dict], fmt: str, stream) -> None:
    """Write batch rows as an aligned table, JSON, or CSV."""
    if fmt == "json":
        json.dump(rows, stream, indent=2)
        stream.write("\n")
        return
    if fmt == "csv":
        writer = csv.DictWriter(stream, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        return
    from .experiments.report import format_table

    stream.write(
        format_table(
            rows,
            columns=[
                "tag", "status", "source", "partitioner", "backend",
                "partitions", "total_latency_s", "solve_time_s", "error",
            ],
            title="Batched temporal partitioning",
        )
    )
    stream.write("\n")


def cmd_partition_batch(args: argparse.Namespace) -> int:
    system = _make_system(args)
    engine = PartitionEngine(EngineConfig(
        workers=args.workers,
        partitioner=args.partitioner,
        backend=args.backend,
        time_limit=args.time_limit,
        job_timeout=args.job_timeout,
        cache_dir=args.cache_dir,
    ))
    ct_values = _parse_ct_sweep(args.ct_sweep) or [system.reconfiguration_time]
    jobs = []
    for path in (args.taskgraphs or ["dct"]):
        graph = _load_graph(path)
        jobs.extend(ct_sweep_jobs(engine, graph, system, ct_values))
    jobs = jobs * max(args.repeat, 1)
    batch = engine.solve_batch(jobs)

    rows = batch.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_batch_rows(rows, args.format, stream)
    else:
        _format_batch_rows(rows, args.format, sys.stdout)
    print(batch.describe(), file=sys.stderr)
    stats = engine.stats.snapshot()
    print(
        f"cache: {stats['cache_memory_hits']} memory hits, "
        f"{stats['cache_disk_hits']} disk hits, {stats['cache_misses']} misses; "
        f"{stats['deduped']} deduped in batch",
        file=sys.stderr,
    )
    return 0 if batch.ok else 1


def cmd_workloads_list(args: argparse.Namespace) -> int:
    from .workloads import catalog_errors, iter_workloads

    # Optional-dependency failures must not break catalog browsing: the
    # package records import-time library failures instead of raising.
    for message in catalog_errors():
        print(f"note: part of the catalog is unavailable ({message})")
    registered = list(iter_workloads())
    if not registered:
        print("No workloads registered"
              + (" — install the missing dependencies above to enable the "
                 "builtin catalog." if catalog_errors() else "."))
        return 0
    print("Registered workloads:")
    for workload in registered:
        try:
            graph = workload.build_graph()
            stats = f"{len(graph):>3} tasks, {graph.edge_count():>3} edges"
        except Exception as error:  # noqa: BLE001 - keep listing the rest
            stats = f"unavailable ({type(error).__name__}: {error})"
        variants = len(workload.variants())
        suffix = f"  [{variants} variants]" if variants > 1 else ""
        print(f"  {workload.name:<16} {stats:<22} {workload.description}{suffix}")
    return 0


def cmd_workloads_show(args: argparse.Namespace) -> int:
    from .workloads import get_workload

    workload = get_workload(args.name)
    print(workload.describe())
    graph = workload.build_graph()
    print(f"  graph: {len(graph)} tasks, {graph.edge_count()} edges, "
          f"env I/O {graph.total_env_input_words()}/{graph.total_env_output_words()} words")
    print(f"  system: {workload.default_system().describe()}")
    if len(workload.variants()) > 1:
        print("  variants:")
        for variant in workload.variants():
            print(f"    {variant.name}")
    return 0


def _flow_batch(args: argparse.Namespace) -> int:
    """``repro flow --batch``: workload flows through the flow engine."""
    if not args.workload:
        print("error: --batch requires --workload (a name, or 'all')", file=sys.stderr)
        return 2
    from .workloads import workload_names

    names = (
        workload_names(exclude_tags=("huge",))
        if args.workload == "all"
        else [args.workload]
    )
    flow_engine = FlowEngine(
        config=EngineConfig(workers=args.workers, cache_dir=args.cache_dir)
    )
    ct_values = _parse_ct_sweep(args.ct_sweep)
    if ct_values is None and args.ct is not None:
        ct_values = [args.ct / 1000.0]
    jobs = workload_flow_jobs(
        names=names,
        ct_values=ct_values,
        system=_make_system(args) if args.system is not None else None,
        variants=args.variants,
        partitioner=args.partitioner,
    )
    if args.round_blocks:
        for job in jobs:
            job.options = dataclasses_replace(job.options, round_memory_blocks=True)
    if not jobs:
        print("no flow jobs to run (is the workload catalog empty?)", file=sys.stderr)
        return 0
    batch = flow_engine.run_batch(jobs)
    rows = batch.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_flow_rows(rows, args.format, stream)
    else:
        _format_flow_rows(rows, args.format, sys.stdout)
    print(batch.describe(), file=sys.stderr)
    stage_seconds = batch.stage_seconds_total()
    if stage_seconds:
        slowest = ", ".join(
            f"{stage} {seconds:.3f}s"
            for stage, seconds in sorted(
                stage_seconds.items(), key=lambda item: -item[1]
            )
        )
        print(f"stage wall-time totals: {slowest}", file=sys.stderr)
    # (per-stage cache hits are already part of batch.describe() above)
    stats = flow_engine.stats.snapshot()
    print(
        f"partition cache: {stats['cache_memory_hits']} memory hits, "
        f"{stats['cache_disk_hits']} disk hits, {stats['cache_misses']} misses; "
        f"{stats['deduped']} deduped in batch",
        file=sys.stderr,
    )
    return 0 if batch.ok else 1


def _format_flow_rows(rows: List[dict], fmt: str, stream) -> None:
    """Write flow-batch rows as an aligned table, JSON, or CSV."""
    if fmt == "json":
        json.dump(rows, stream, indent=2)
        stream.write("\n")
        return
    if fmt == "csv":
        if not rows:
            return
        writer = csv.DictWriter(stream, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        return
    from .experiments.report import format_table

    stream.write(
        format_table(
            rows,
            columns=[
                "tag", "workload", "status", "partition_source", "partitions",
                "k", "block_delay_ns", "total_latency_s", "error",
            ],
            title="Batched design flows",
        )
    )
    stream.write("\n")


def _flow_single_rows(args: argparse.Namespace, graph, system, options,
                      workload: str) -> int:
    """``repro flow --format json|csv`` without ``--batch``.

    The single-job path shares the batch path's serialisation exactly: one
    flow job through the flow engine, rows out of
    :meth:`~repro.synth.flow_engine.FlowReport.row` — so the service
    client, the batch CLI and the one-shot CLI emit identical shapes.
    """
    from .synth.flow_engine import FlowJob

    engine = FlowEngine(config=EngineConfig(workers=0))
    batch = engine.run_batch([
        FlowJob(graph=graph, system=system, options=options,
                tag=graph.name, workload=workload)
    ])
    rows = batch.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_flow_rows(rows, args.format, stream)
    else:
        _format_flow_rows(rows, args.format, sys.stdout)
    print(batch.describe(failures_only=True), file=sys.stderr)
    return 0 if batch.ok else 1


def cmd_flow(args: argparse.Namespace) -> int:
    if args.workload and args.taskgraph != "dct":
        print("error: pass either a task-graph file or --workload, not both",
              file=sys.stderr)
        return 2
    if args.batch:
        return _flow_batch(args)
    if args.workload:
        from .workloads import get_workload

        workload = get_workload(args.workload)
        graph = workload.build_graph()
        options = workload.flow_options()
        if args.partitioner is not None:
            options = dataclasses_replace(options, partitioner=args.partitioner)
        if args.round_blocks:
            options = dataclasses_replace(options, round_memory_blocks=True)
        if args.system is None:
            system = workload.default_system()
            if args.ct is not None:
                system = system.with_reconfiguration_time(args.ct / 1000.0)
        else:
            system = _make_system(args)
    else:
        graph = _load_graph(args.taskgraph)
        system = _make_system(args)
        options = FlowOptions(
            partitioner=args.partitioner or "ilp",
            round_memory_blocks=args.round_blocks,
        )
    if args.format != "table":
        return _flow_single_rows(args, graph, system, options, args.workload or "")
    design = DesignFlow(system, options).build(graph)
    print(design.describe())
    print()
    print(design.memory_map.describe())
    print()
    strategy = SequencingStrategy(args.strategy)
    print(f"--- host sequencing code ({strategy.value.upper()}) ---")
    print(design.host_code_for(strategy))
    if args.blocks:
        static_spec = None
        if args.static_block_delay_ns:
            from .fission import static_timing_spec

            static_spec = static_timing_spec(
                args.static_block_delay_ns * 1e-9,
                graph.total_env_input_words(),
                graph.total_env_output_words(),
            )
        if static_spec is not None:
            comparison = compare_static_vs_rtr(
                strategy, static_spec, design.timing_spec, args.blocks, system
            )
            verdict = "RTR wins" if comparison.rtr_wins else "static wins"
            print(f"{args.blocks} computations: static {comparison.static.total:.3f} s, "
                  f"RTR {comparison.rtr.total:.3f} s ({comparison.improvement * 100:+.1f}%, {verdict})")
    return 0


def _parse_csv_list(text: str, what: str) -> List[str]:
    """Split a comma-separated option value, rejecting empty items."""
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise ReproError(f"--{what} expects a non-empty comma-separated list")
    return items


def _explore_space_and_config(args: argparse.Namespace, workers: int = 0):
    """Build the (space, config) pair an exploration invocation names."""
    from .explore import ExploreConfig, SearchSpace, resolve_objectives
    from .workloads import workload_names

    # Resolved once, before a run store is even created: fail fast.
    objectives = tuple(_parse_csv_list(args.objectives, "objectives"))
    resolve_objectives(objectives)

    names = (
        workload_names(exclude_tags=("huge",))
        if args.workload == "all"
        else [args.workload]
    )
    ct_values = _parse_ct_sweep(args.ct_sweep)
    space = SearchSpace.for_workloads(
        names,
        variants=args.variants,
        systems=tuple(_parse_csv_list(args.systems, "systems")),
        ct_values=tuple(ct_values) if ct_values else (None,),
        partitioners=tuple(_parse_csv_list(args.partitioners, "partitioners")),
        sequencings=tuple(_parse_csv_list(args.sequencing, "sequencing")),
    )
    config = ExploreConfig(
        strategy=args.strategy,
        budget=args.budget,
        batch_size=args.batch_size,
        seed=args.seed,
        objectives=objectives,
        eval_blocks=args.eval_blocks,
        workers=workers,
        cache_dir=args.cache_dir,
    )
    return space, config


def cmd_explore(args: argparse.Namespace) -> int:
    from .explore import Explorer, RunStore, default_store_path

    if args.scheduler:
        return _explore_scheduled_worker(args)

    space, config = _explore_space_and_config(args, workers=args.workers)
    if args.resume and args.fresh:
        raise ReproError("pass either --resume or --fresh, not both")
    if args.shards < 1:
        raise ReproError(f"--shards must be >= 1, got {args.shards}")
    if args.shard_index is not None and not 0 <= args.shard_index < args.shards:
        raise ReproError(
            f"--shard-index {args.shard_index} outside 0..{args.shards - 1} "
            f"(--shards {args.shards})"
        )
    from pathlib import Path

    store_base = Path(args.store or default_store_path(space))
    if args.shards > 1 and args.shard_index is None:
        return _explore_sharded(args, space, config, store_base)

    if args.shard_index is not None:
        from .explore import ShardSpec, shard_store_path

        shard = ShardSpec(args.shard_index, args.shards)
        store_path = shard_store_path(store_base, args.shard_index, args.shards)
    else:
        shard = None
        store_path = store_base
    if (
        store_path.exists()
        and store_path.stat().st_size
        and not args.resume
        and not args.fresh
    ):
        raise ReproError(
            f"run store {store_path} already exists; pass --resume to continue "
            "it or --fresh to overwrite it"
        )
    store = RunStore(
        store_path,
        space.fingerprint(),
        resume=args.resume,
        context={"eval_blocks": args.eval_blocks},
    )
    explorer = Explorer(space, config=config, store=store, shard=shard)
    try:
        result = explorer.run()
    finally:
        store.close()

    if shard is not None:
        print(shard.describe(), file=sys.stderr)
        print(
            "merge the shard stores with: repro frontier "
            + " ".join(
                f"--store {path}"
                for path in _shard_paths(store_base, args.shards)
            ),
            file=sys.stderr,
        )
    rows = result.front.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_explore_rows(rows, args.format, stream)
    else:
        _format_explore_rows(rows, args.format, sys.stdout)
    print(space.describe(), file=sys.stderr)
    print(result.describe(), file=sys.stderr)
    print(
        f"flow jobs evaluated: {result.flow_evaluated} "
        f"(run store: {store_path}; {result.store_hits} store hits)",
        file=sys.stderr,
    )
    print(explorer.flow_engine.pipeline.describe_stats(), file=sys.stderr)
    stats = result.engine_stats
    print(
        f"partition cache: {stats.get('cache_memory_hits', 0)} memory hits, "
        f"{stats.get('cache_disk_hits', 0)} disk hits, "
        f"{stats.get('cache_misses', 0)} misses; "
        f"{stats.get('deduped', 0)} deduped",
        file=sys.stderr,
    )
    return 0 if len(result.front) else 1


def _shard_paths(store_base, shards: int):
    from .explore import shard_store_paths

    return shard_store_paths(store_base, shards)


def _explore_sharded(args: argparse.Namespace, space, config, store_base) -> int:
    """``repro explore --shards N``: N parallel shard workers plus the merge."""
    from .explore import run_sharded

    for path in _shard_paths(store_base, args.shards):
        if path.exists() and path.stat().st_size and not args.resume and not args.fresh:
            raise ReproError(
                f"shard store {path} already exists; pass --resume to continue "
                "the sharded run or --fresh to overwrite it"
            )
    result = run_sharded(
        space,
        config,
        args.shards,
        store_base,
        resume=args.resume,
        objectives=config.objectives,
    )
    rows = result.front.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_explore_rows(rows, args.format, stream)
    else:
        _format_explore_rows(rows, args.format, sys.stdout)
    print(space.describe(), file=sys.stderr)
    for shard in result.shards:
        print(
            f"  shard {shard.index + 1}/{shard.count}: {shard.evaluated} "
            f"evaluated ({shard.flow_evaluated} flow, {shard.store_hits} store "
            f"hits, {shard.failures} failed, {shard.off_shard} off-shard) in "
            f"{shard.wall_time:.2f} s -> {shard.store_path}",
            file=sys.stderr,
        )
    print(result.merge.describe(), file=sys.stderr)
    print(result.describe(), file=sys.stderr)
    return 0 if len(result.front) else 1


def _explore_scheduled_worker(args: argparse.Namespace) -> int:
    """``repro explore --scheduler URL``: pull ranges until the run is done."""
    from .explore import run_scheduled_worker

    result = run_scheduled_worker(
        args.scheduler,
        worker_id=args.worker_id,
        cache_dir=args.cache_dir,
        shared_store=args.shared_store,
        max_ranges=args.max_ranges,
    )
    print(result.describe(), file=sys.stderr)
    return 0


def cmd_schedule(args: argparse.Namespace) -> int:
    import asyncio
    from pathlib import Path

    from .explore import (
        ExplorationPlan,
        default_store_path,
        merge_stores,
    )
    from .serve import FlowServer, ServeConfig

    space, config = _explore_space_and_config(args)
    plan = ExplorationPlan.from_config(space, config, range_count=args.ranges)
    store_base = Path(args.store or default_store_path(space))
    server = FlowServer(ServeConfig(
        host=args.host, port=args.port, workers=args.flow_workers
    ))
    state = server.attach_schedule(
        plan, store_base, lease_timeout=args.lease_timeout
    )

    async def main() -> bool:
        await server.start()
        host, port = server.address
        print(
            f"repro schedule: listening on http://{host}:{port} — "
            f"{plan.describe()} (lease timeout {args.lease_timeout:g} s); "
            f"point workers at it with: repro explore --scheduler "
            f"http://{host}:{port}",
            file=sys.stderr, flush=True,
        )
        serve_task = asyncio.ensure_future(server.serve_forever())
        done_task = asyncio.ensure_future(state.done.wait())
        await asyncio.wait(
            (serve_task, done_task),
            timeout=args.timeout,
            return_when=asyncio.FIRST_COMPLETED,
        )
        finished = state.done.is_set()
        for task in (serve_task, done_task):
            task.cancel()
        await server.shutdown()
        return finished

    try:
        finished = asyncio.run(main())
    except KeyboardInterrupt:
        finished = state.done.is_set()
    if not finished:
        raise ReproError(
            "the schedule did not complete "
            f"({state.scheduler.describe()}); the shard stores that did "
            "arrive are still merge-able with 'repro frontier --store ...'"
        )
    paths = [
        state.scheduler.store_paths()[index]
        for index in range(plan.range_count)
    ]
    merged = merge_stores(paths, objectives=config.objectives)
    rows = merged.front.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_explore_rows(rows, args.format, stream)
    else:
        _format_explore_rows(rows, args.format, sys.stdout)
    print(space.describe(), file=sys.stderr)
    print(state.scheduler.describe(), file=sys.stderr)
    print(merged.describe(), file=sys.stderr)
    return 0 if len(merged.front) else 1


def _format_rows(rows: List[dict], fmt: str, stream, title: str, empty: str) -> None:
    """Write all-column rows as an aligned table, JSON, or CSV."""
    if fmt == "json":
        json.dump(rows, stream, indent=2)
        stream.write("\n")
        return
    if fmt == "csv":
        if not rows:
            return
        writer = csv.DictWriter(stream, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        return
    from .experiments.report import format_table

    if not rows:
        stream.write(f"{empty}\n")
        return
    stream.write(format_table(rows, columns=list(rows[0].keys()), title=title))
    stream.write("\n")


def _format_explore_rows(rows: List[dict], fmt: str, stream) -> None:
    """Write Pareto-front rows as an aligned table, JSON, or CSV."""
    _format_rows(rows, fmt, stream, "Pareto front", "(empty Pareto front)")


def cmd_verify(args: argparse.Namespace) -> int:
    from .verify import FAMILIES, Verifier, VerifyConfig

    families = (
        tuple(_parse_csv_list(args.families, "families"))
        if args.families
        else FAMILIES
    )
    config = VerifyConfig(
        scenarios=args.scenarios,
        seed=args.seed,
        families=families,
        workers=args.workers,
        blocks=args.blocks,
        store_path=args.store,
        cache_dir=args.cache_dir,
        shrink=not args.no_shrink,
    )
    report = Verifier(config).run()

    rows = report.rows()
    if args.output:
        with open(args.output, "w", encoding="utf-8", newline="") as stream:
            _format_verify_rows(rows, args.format, stream)
    else:
        _format_verify_rows(rows, args.format, sys.stdout)
    print(report.describe(), file=sys.stderr)
    if args.store:
        print(f"verdicts recorded to {args.store}", file=sys.stderr)
    for record in report.failures():
        print(f"counterexample: {record.scenario.describe()}", file=sys.stderr)
        if record.shrunk:
            print(
                f"  shrunk to {record.shrunk['task_count']} task(s) "
                f"(oracles: {', '.join(record.shrunk['oracles'])})",
                file=sys.stderr,
            )
    return 0 if report.ok else 1


def _format_verify_rows(rows: List[dict], fmt: str, stream) -> None:
    """Write per-scenario verdict rows as an aligned table, JSON, or CSV."""
    _format_rows(
        rows, fmt, stream, "Differential verification", "(no scenarios verified)"
    )


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from .runtime import default_cache_dir
    from .serve import FlowServer, ServeConfig

    cache_dir = args.cache_dir
    if cache_dir is None and not args.private_cache:
        cache_dir = str(default_cache_dir())
    config = ServeConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_depth=args.queue_depth,
        cache_dir=cache_dir,
        job_timeout=args.job_timeout,
    )

    async def main() -> None:
        server = FlowServer(config)
        await server.start()
        host, port = server.address
        print(
            f"repro serve: listening on http://{host}:{port} "
            f"({config.workers} worker(s), queue depth {config.queue_depth}, "
            f"cache {server.cache_dir})",
            flush=True,
        )
        await server.serve_forever()
        print("repro serve: drained, exiting", flush=True)

    try:
        asyncio.run(main())
    except KeyboardInterrupt:
        pass  # signal handler already drained; a second ^C lands here
    return 0


def _submit_specs(args: argparse.Namespace):
    """Build the (repeated) JobSpec a ``repro submit`` invocation names."""
    from .serve import JobSpec

    if args.params:
        try:
            params = json.loads(args.params)
        except ValueError as error:
            raise ReproError(f"--params must be a JSON object: {error}")
        if not isinstance(params, dict):
            raise ReproError("--params must be a JSON object")
    else:
        params = {}
    spec = JobSpec(
        workload=args.workload,
        params=params,
        system=args.system,
        ct_ms=args.ct,
        partitioner=args.partitioner,
        seed=args.seed,
        priority=args.priority,
        tag=args.tag,
    )
    return [spec] * max(args.count, 1)


def cmd_submit(args: argparse.Namespace) -> int:
    from .serve import FlowServiceClient

    client = FlowServiceClient(args.url)
    acks = client.submit_many(_submit_specs(args))
    failures = 0
    for ack in acks:
        if "error" in ack:
            detail = ack["error"]
            print(f"rejected: [{detail.get('code')}] {detail.get('message')}",
                  file=sys.stderr)
            failures += 1
        else:
            print(f"{ack['job_id']}  {ack['disposition']}  key={ack['key'][:12]}")
    if not args.wait:
        return 1 if failures else 0
    rows = []
    for ack in acks:
        if "error" in ack:
            continue
        client.wait(ack["job_id"], timeout=args.timeout)
        result = client.result(ack["job_id"])
        row = {"job_id": ack["job_id"], "state": result["state"]}
        row.update(result.get("result") or {})
        if result["state"] == "failed":
            row["error"] = result.get("error", "")
            failures += 1
        rows.append(row)
    if rows:
        _format_rows(rows, args.format, sys.stdout, "Submitted jobs", "(no jobs)")
    return 1 if failures else 0


def cmd_job(args: argparse.Namespace) -> int:
    from .serve import FlowServiceClient

    client = FlowServiceClient(args.url)
    if args.cancel:
        view = client.cancel(args.job_id)
    elif args.wait:
        view = client.wait(args.job_id, timeout=args.timeout)
    else:
        view = client.status(args.job_id)
    if args.result:
        view = client.result(args.job_id)  # 409 -> structured error exit
    json.dump(view, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")
    if view.get("state") == "failed":
        return 1
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .runtime import (
        clear_cache_dir,
        default_cache_dir,
        prune_cache_dir,
        scan_cache_dir,
    )

    root = Path(args.cache_dir) if args.cache_dir else default_cache_dir()
    if args.cache_command == "stats":
        areas = scan_cache_dir(root)
        print(f"cache root: {root}" + ("" if root.is_dir() else " (missing)"))
        total_entries = 0
        total_bytes = 0
        for area in areas:
            total_entries += area.entries
            total_bytes += area.bytes
            print(f"  {area.name:<22} {area.entries:>7} entries  "
                  f"{area.bytes / 1024:>10.1f} KiB")
        print(f"  {'total':<22} {total_entries:>7} entries  "
              f"{total_bytes / 1024:>10.1f} KiB")
        return 0
    if args.cache_command == "clear":
        removed = clear_cache_dir(root)
        print(f"removed {removed} cached entr{'y' if removed == 1 else 'ies'} "
              f"under {root}")
        return 0
    # prune
    if args.max_entries < 0:
        raise ReproError("--max-entries must be non-negative")
    removed = prune_cache_dir(root, args.max_entries)
    print(f"pruned {removed} entr{'y' if removed == 1 else 'ies'} under {root} "
          f"(each area kept to {args.max_entries} newest entries)")
    return 0


def cmd_frontier(args: argparse.Namespace) -> int:
    if args.store:
        # Merge any number of run stores (shard stores of one run, or
        # several independent runs over one evaluation context) through the
        # Pareto fold and print the union frontier.
        from .explore import merge_stores, resolve_objectives

        objectives = tuple(_parse_csv_list(args.objectives, "objectives"))
        resolve_objectives(objectives)
        result = merge_stores(args.store, objectives=objectives)
        rows = result.front.rows()
        if args.output:
            with open(args.output, "w", encoding="utf-8", newline="") as stream:
                _format_explore_rows(rows, args.format, stream)
        else:
            _format_explore_rows(rows, args.format, sys.stdout)
        print(result.describe(), file=sys.stderr)
        return 0 if len(result.front) else 1

    from .experiments.frontier import format_frontier_table, jpeg_dct_frontier

    report = jpeg_dct_frontier()
    print(format_frontier_table(report))
    print()
    print(report.describe())
    return 0


def cmd_table1(args: argparse.Namespace) -> int:
    study = build_case_study(use_ilp=not args.no_ilp)
    result = reproduce_table1(study)
    print(result.formatted())
    print(f"\nFDH ever beats the static design: {result.fdh_ever_improves} (paper: never)")
    print(f"Reconfiguration-absorption point: {result.breakeven_blocks} blocks/run "
          "(paper: ~42,553)")
    return 0


def cmd_table2(args: argparse.Namespace) -> int:
    study = build_case_study(use_ilp=not args.no_ilp)
    result = reproduce_table2(study)
    print(result.formatted())
    print(f"\nIDH improvement at 245,760 blocks: {result.improvement_at_largest * 100:.1f}% "
          "(paper: 42%)")
    print(f"XC6000 conjecture (CT = 500 us): {result.xc6000_improvement * 100:.1f}% (paper: 47%)")
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    report = reproduction_report(use_ilp=not args.no_ilp)
    print(format_reproduction_report(report))
    return 0 if report.all_ok else 1


def cmd_case_study(args: argparse.Namespace) -> int:
    study = build_case_study(use_ilp=not args.no_ilp)
    print(study.system.describe())
    print()
    print(study.partitioning.describe())
    print(study.fission.describe())
    print()
    gap = static_design_delay() - study.rtr_spec.block_delay
    print(f"Per-block latency: static {format_time(static_design_delay())}, "
          f"RTR {format_time(study.rtr_spec.block_delay)} (gap {format_time(gap)})")
    for strategy in SequencingStrategy:
        comparison = compare_static_vs_rtr(
            strategy, study.static_spec, study.rtr_spec, 245_760, study.system
        )
        verdict = "RTR wins" if comparison.rtr_wins else "static wins"
        print(f"  {strategy.value.upper()}: improvement {comparison.improvement * 100:+.1f}% ({verdict})")
    print(f"  XC6000 conjecture: {xc6000_conjecture(study) * 100:.1f}%")
    return 0


# ---------------------------------------------------------------------------
# Argument parsing
# ---------------------------------------------------------------------------

def _add_system_arguments(
    parser: argparse.ArgumentParser, default: Optional[str] = DEFAULT_SYSTEM
) -> None:
    parser.add_argument(
        "--system", default=default,
        choices=sorted(SYSTEM_PRESETS) + ["custom"],
        help="target system preset (default: the paper's XC4044 board, or the "
             "workload's own system when --workload is given)",
    )
    parser.add_argument("--clbs", type=int, default=1000,
                        help="CLB capacity for --system custom")
    parser.add_argument("--memory", type=int, default=32768,
                        help="on-board memory in words for --system custom")
    parser.add_argument("--ct", type=float, default=None,
                        help="reconfiguration time in milliseconds (overrides the preset)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Temporal partitioning and loop fission for RTR FPGA synthesis "
                    "(DAC 1999 reproduction)",
    )
    parser.add_argument(
        "--version", action="version", version=f"repro {_version()}",
        help="print the package version and exit",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    systems = subparsers.add_parser("systems", help="list the named system presets")
    systems.set_defaults(handler=cmd_systems)

    workloads = subparsers.add_parser(
        "workloads", help="browse the registered workload catalog"
    )
    workloads_sub = workloads.add_subparsers(dest="workloads_command", required=True)
    workloads_list = workloads_sub.add_parser("list", help="list registered workloads")
    workloads_list.set_defaults(handler=cmd_workloads_list)
    workloads_show = workloads_sub.add_parser(
        "show", help="show one workload in detail"
    )
    workloads_show.add_argument("name", help="registered workload name")
    workloads_show.set_defaults(handler=cmd_workloads_show)

    partition = subparsers.add_parser("partition", help="temporally partition a task graph")
    partition.add_argument("taskgraph", nargs="?", default="dct",
                           help="task-graph JSON file, or 'dct' for the case study (default)")
    partition.add_argument("--partitioner", default="ilp", choices=PARTITIONER_CHOICES)
    partition.add_argument("--backend", default="scipy",
                           choices=["scipy", "branch-and-bound"],
                           help="ILP solver backend")
    _add_system_arguments(partition)
    partition.set_defaults(handler=cmd_partition)

    batch = subparsers.add_parser(
        "partition-batch",
        help="solve a batch of partitioning problems through the parallel engine",
    )
    batch.add_argument("taskgraphs", nargs="*", default=None, metavar="taskgraph",
                       help="task-graph JSON files, or 'dct' for the case study (default)")
    batch.add_argument("--partitioner", default="ilp", choices=PARTITIONER_CHOICES)
    batch.add_argument("--backend", default="scipy",
                       choices=["scipy", "branch-and-bound"],
                       help="ILP solver backend")
    batch.add_argument("--workers", type=int, default=0,
                       help="worker processes for cache misses (0/1 = in-process)")
    batch.add_argument("--ct-sweep", default="",
                       help="comma-separated reconfiguration times in milliseconds; "
                            "each graph is solved once per value")
    batch.add_argument("--repeat", type=int, default=1,
                       help="submit the job list this many times (cache/dedup demo)")
    batch.add_argument("--time-limit", type=float, default=None,
                       help="per-solve time limit in seconds (passed to the solver)")
    batch.add_argument("--job-timeout", type=float, default=None,
                       help="wall-clock limit in seconds for the batch's pool phase "
                            "(requires --workers >= 2)")
    batch.add_argument("--cache-dir", default=None,
                       help="directory for the on-disk result cache")
    batch.add_argument("--format", default="table", choices=["table", "json", "csv"])
    batch.add_argument("--output", default=None,
                       help="write the rows to this file instead of stdout")
    _add_system_arguments(batch)
    batch.set_defaults(handler=cmd_partition_batch)

    flow = subparsers.add_parser(
        "flow", help="run the complete design flow (file, workload, or batch)"
    )
    flow.add_argument("taskgraph", nargs="?", default="dct")
    flow.add_argument("--workload", default=None,
                      help="run a registered workload instead of a task-graph file "
                           "('all' with --batch runs the whole catalog)")
    flow.add_argument("--batch", action="store_true",
                      help="run workload flows as a batch through the flow engine")
    flow.add_argument("--variants", action="store_true",
                      help="with --batch: expand each workload's parameter sweep")
    flow.add_argument("--workers", type=int, default=0,
                      help="with --batch: worker processes for partition-stage misses")
    flow.add_argument("--ct-sweep", default="",
                      help="with --batch: comma-separated reconfiguration times (ms)")
    flow.add_argument("--cache-dir", default=None,
                      help="with --batch: directory for the on-disk result cache")
    flow.add_argument("--format", default="table", choices=["table", "json", "csv"],
                      help="with --batch: output format")
    flow.add_argument("--output", default=None,
                      help="with --batch: write the rows to this file instead of stdout")
    flow.add_argument("--partitioner", default=None, choices=PARTITIONER_CHOICES,
                      help="partitioner override (default: the workload's own choice, "
                           "or ilp for task-graph files)")
    flow.add_argument("--strategy", default="idh", choices=["fdh", "idh"])
    flow.add_argument("--round-blocks", action="store_true",
                      help="round memory blocks to powers of two (concatenation addressing)")
    flow.add_argument("--blocks", type=int, default=0,
                      help="workload size for a static-vs-RTR comparison")
    flow.add_argument("--static-block-delay-ns", type=float, default=0.0,
                      help="per-computation delay of the static baseline, in ns")
    _add_system_arguments(flow, default=None)
    flow.set_defaults(handler=cmd_flow)

    explore = subparsers.add_parser(
        "explore",
        help="search the (workload, system, CT, partitioner, sequencing) design "
             "space for Pareto-optimal designs",
    )
    explore.add_argument("--workload", default="jpeg_dct",
                         help="registered workload name, or 'all' (default: jpeg_dct)")
    explore.add_argument("--variants", action="store_true",
                         help="expand each workload's deterministic parameter sweep")
    from .explore import objective_names, strategy_names

    explore.add_argument("--strategy", default="grid", choices=strategy_names(),
                         help="search strategy (default: grid)")
    explore.add_argument("--budget", type=int, default=64,
                         help="maximum design points to visit (default: 64)")
    explore.add_argument("--batch-size", type=int, default=8,
                         help="points proposed/evaluated per round (default: 8)")
    explore.add_argument("--seed", type=int, default=0,
                         help="RNG seed; same seed + budget = identical trajectory")
    explore.add_argument("--objectives", default="latency,throughput",
                         help="comma-separated objectives (known: "
                              f"{','.join(objective_names())})")
    explore.add_argument("--eval-blocks", type=int, default=16384,
                         help="loop iterations the overhead/throughput objectives "
                              "are evaluated at (default: 16384)")
    explore.add_argument("--systems", default="workload-default",
                         help="comma-separated system presets to sweep "
                              "('workload-default' = each workload's own board)")
    explore.add_argument("--ct-sweep", default="1,5,10,50,100",
                         help="comma-separated reconfiguration times in "
                              "milliseconds (default: 1,5,10,50,100)")
    explore.add_argument("--partitioners", default="ilp,list,level",
                         help="comma-separated partitioners to sweep")
    explore.add_argument("--sequencing", default="fdh,idh",
                         help="comma-separated sequencing strategies to sweep")
    explore.add_argument("--store", default=None,
                         help="run-store JSONL path (default: "
                              ".repro-explore/run-<space>.jsonl)")
    explore.add_argument("--resume", action="store_true",
                         help="resume from the run store: completed points are "
                              "served without re-running their flows")
    explore.add_argument("--fresh", action="store_true",
                         help="deliberately overwrite an existing run store "
                              "(without --resume or --fresh an existing store "
                              "is refused, never silently truncated)")
    explore.add_argument("--workers", type=int, default=0,
                         help="worker processes for partition-stage misses "
                              "(ignored with --shards: the shard processes "
                              "are the parallelism)")
    explore.add_argument("--cache-dir", default=None,
                         help="directory for the on-disk partition result cache")
    explore.add_argument("--shards", type=int, default=1,
                         help="split the run into N fingerprint-range shard "
                              "workers (parallel processes over the shared "
                              "cache), each with its own "
                              "<store>.shard-<i>-of-<N>.jsonl store, then "
                              "merge their frontiers (default: 1 = unsharded)")
    explore.add_argument("--shard-index", type=int, default=None,
                         help="with --shards N: run ONLY shard i of N in this "
                              "process (for spreading shards across machines); "
                              "merge afterwards with 'repro frontier --store "
                              "...' over the shard stores")
    explore.add_argument("--scheduler", default=None, metavar="URL",
                         help="pull-worker mode: fetch the plan from a "
                              "'repro schedule' daemon at URL and lease "
                              "fingerprint ranges until the whole run is "
                              "done (the space/strategy arguments above are "
                              "ignored — the daemon's plan wins)")
    explore.add_argument("--worker-id", default=None,
                         help="with --scheduler: worker identity shown in "
                              "the scheduler's accounting "
                              "(default: <hostname>-<pid>)")
    explore.add_argument("--shared-store", default=None, metavar="BASE",
                         help="with --scheduler: write shard stores under "
                              "this store base on a filesystem the daemon "
                              "shares, and register paths instead of "
                              "streaming store bytes back")
    explore.add_argument("--max-ranges", type=int, default=None,
                         help="with --scheduler: stop after completing N "
                              "ranges (default: run until the schedule is "
                              "done)")
    explore.add_argument("--format", default="table", choices=["table", "json", "csv"])
    explore.add_argument("--output", default=None,
                         help="write the Pareto front to this file instead of stdout")
    explore.set_defaults(handler=cmd_explore)

    from .explore import shardable_strategy_names

    schedule = subparsers.add_parser(
        "schedule",
        help="run a work-stealing shard scheduler daemon: cut the design "
             "space into M fingerprint ranges, lease them to 'repro explore "
             "--scheduler' workers with timeouts/re-issue/stealing, then "
             "Pareto-merge the returned shard stores (byte-identical to the "
             "unsharded run)",
    )
    schedule.add_argument("--workload", default="jpeg_dct",
                          help="registered workload name, or 'all' "
                               "(default: jpeg_dct)")
    schedule.add_argument("--variants", action="store_true",
                          help="expand each workload's deterministic "
                               "parameter sweep")
    schedule.add_argument("--strategy", default="grid",
                          choices=shardable_strategy_names(),
                          help="search strategy (shardable strategies only; "
                               "default: grid)")
    schedule.add_argument("--budget", type=int, default=64,
                          help="maximum design points to visit (default: 64)")
    schedule.add_argument("--batch-size", type=int, default=8,
                          help="points proposed per round (default: 8)")
    schedule.add_argument("--seed", type=int, default=0,
                          help="RNG seed; same seed + budget = identical "
                               "trajectory on every worker")
    schedule.add_argument("--objectives", default="latency,throughput",
                          help="comma-separated objectives (known: "
                               f"{','.join(objective_names())})")
    schedule.add_argument("--eval-blocks", type=int, default=16384,
                          help="loop iterations the overhead/throughput "
                               "objectives are evaluated at (default: 16384)")
    schedule.add_argument("--systems", default="workload-default",
                          help="comma-separated system presets to sweep")
    schedule.add_argument("--ct-sweep", default="1,5,10,50,100",
                          help="comma-separated reconfiguration times in ms")
    schedule.add_argument("--partitioners", default="ilp,list,level",
                          help="comma-separated partitioners to sweep")
    schedule.add_argument("--sequencing", default="fdh,idh",
                          help="comma-separated sequencing strategies to sweep")
    schedule.add_argument("--cache-dir", default=None,
                          help="unused by the daemon itself (workers carry "
                               "their own caches); accepted for symmetry")
    schedule.add_argument("--ranges", type=int, default=16,
                          help="fine partition size M — make it several "
                               "times the worker count so stealing has "
                               "slack (default: 16)")
    schedule.add_argument("--lease-timeout", type=float, default=30.0,
                          help="seconds before an unrenewed lease is "
                               "reclaimed and its range re-issued "
                               "(default: 30)")
    schedule.add_argument("--host", default="127.0.0.1",
                          help="interface to bind (default: 127.0.0.1)")
    schedule.add_argument("--port", type=int, default=8788,
                          help="port to bind; 0 picks a free port "
                               "(default: 8788)")
    schedule.add_argument("--flow-workers", type=int, default=0,
                          help="flow-engine workers for ordinary job "
                               "submissions on the same daemon (default: 0 "
                               "= scheduler-only)")
    schedule.add_argument("--store", default=None,
                          help="store base the returned shard stores land "
                               "next to (default: "
                               ".repro-explore/run-<space>.jsonl)")
    schedule.add_argument("--timeout", type=float, default=None,
                          help="give up if the schedule has not completed "
                               "after this many seconds (default: wait "
                               "forever)")
    schedule.add_argument("--format", default="table",
                          choices=["table", "json", "csv"])
    schedule.add_argument("--output", default=None,
                          help="write the merged Pareto front to this file "
                               "instead of stdout")
    schedule.set_defaults(handler=cmd_schedule)

    verify = subparsers.add_parser(
        "verify",
        help="differentially verify the flow on seeded random scenarios "
             "(ILP vs. list, analytic timing vs. simulator, warm vs. cold, "
             "memory legality)",
    )
    verify.add_argument("--scenarios", type=int, default=50,
                        help="seeded scenarios to generate and verify (default: 50)")
    verify.add_argument("--seed", type=int, default=0,
                        help="base seed; the same seed reproduces the same "
                             "scenarios and the same verdict store byte-for-byte")
    verify.add_argument("--families", default="",
                        help="comma-separated scenario families "
                             "(default: layered,fanout,chain,diamond,degenerate)")
    verify.add_argument("--workers", type=int, default=0,
                        help="worker processes for partition-stage misses")
    verify.add_argument("--blocks", type=int, default=257,
                        help="loop iterations the timing oracle compares the "
                             "analytic models and the simulator at (default: 257)")
    verify.add_argument("--store", default=None,
                        help="write the verdict JSONL to this path")
    verify.add_argument("--cache-dir", default=None,
                        help="shared cache root for the warm/cold runs "
                             "(default: a private temporary directory)")
    verify.add_argument("--no-shrink", action="store_true",
                        help="do not shrink failing scenarios to smaller "
                             "node counts")
    verify.add_argument("--format", default="table", choices=["table", "json", "csv"])
    verify.add_argument("--output", default=None,
                        help="write the rows to this file instead of stdout")
    verify.set_defaults(handler=cmd_verify)

    serve = subparsers.add_parser(
        "serve",
        help="run the design-flow service daemon (async HTTP/JSON API with a "
             "deduplicating job queue and N flow-engine workers)",
    )
    serve.add_argument("--host", default="127.0.0.1",
                       help="interface to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8787,
                       help="port to bind; 0 picks a free port (default: 8787)")
    serve.add_argument("--workers", type=int, default=2,
                       help="flow-engine workers draining the queue (default: 2)")
    serve.add_argument("--queue-depth", type=int, default=64,
                       help="queued jobs accepted before 429 back-pressure "
                            "(default: 64)")
    serve.add_argument("--cache-dir", default=None,
                       help="shared cache root for partition outcomes and stage "
                            "artifacts (default: .repro-cache / $REPRO_CACHE_DIR)")
    serve.add_argument("--private-cache", action="store_true",
                       help="use a private temporary cache that dies with the "
                            "daemon instead of the shared root")
    serve.add_argument("--job-timeout", type=float, default=None,
                       help="per-job wall-clock limit in seconds")
    serve.set_defaults(handler=cmd_serve)

    submit = subparsers.add_parser(
        "submit", help="submit flow jobs to a running design-flow daemon"
    )
    submit.add_argument("--url", default="http://127.0.0.1:8787",
                        help="daemon base URL (default: http://127.0.0.1:8787)")
    submit.add_argument("--workload", required=True,
                        help="registered workload name")
    submit.add_argument("--params", default="",
                        help="workload parameters as a JSON object")
    submit.add_argument("--system", default=None,
                        help="target system preset (default: the workload's own)")
    submit.add_argument("--ct", type=float, default=None,
                        help="reconfiguration time in milliseconds")
    submit.add_argument("--partitioner", default=None, choices=PARTITIONER_CHOICES,
                        help="partitioner override")
    submit.add_argument("--seed", type=int, default=0,
                        help="seed for the stochastic partitioners")
    submit.add_argument("--priority", type=int, default=0,
                        help="scheduling priority (higher runs earlier)")
    submit.add_argument("--tag", default="", help="display tag")
    submit.add_argument("--count", type=int, default=1,
                        help="submit N identical copies (they coalesce onto "
                             "one solve)")
    submit.add_argument("--wait", action="store_true",
                        help="wait for completion and print the result rows")
    submit.add_argument("--timeout", type=float, default=300.0,
                        help="with --wait: seconds to wait per job")
    submit.add_argument("--format", default="table", choices=["table", "json", "csv"])
    submit.set_defaults(handler=cmd_submit)

    job = subparsers.add_parser(
        "job", help="inspect, wait on, or cancel a daemon job"
    )
    job.add_argument("job_id", help="job id returned by 'repro submit'")
    job.add_argument("--url", default="http://127.0.0.1:8787",
                     help="daemon base URL (default: http://127.0.0.1:8787)")
    job.add_argument("--wait", action="store_true",
                     help="long-poll until the job is terminal")
    job.add_argument("--result", action="store_true",
                     help="fetch the deterministic result payload")
    job.add_argument("--cancel", action="store_true",
                     help="cancel the job if it is still queued")
    job.add_argument("--timeout", type=float, default=300.0,
                     help="with --wait: seconds to wait")
    job.set_defaults(handler=cmd_job)

    cache = subparsers.add_parser(
        "cache",
        help="inspect and manage the shared disk caches (partition outcomes "
             "plus per-stage flow artifacts)",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_stats = cache_sub.add_parser(
        "stats", help="entry counts and sizes per cache area"
    )
    cache_clear = cache_sub.add_parser("clear", help="remove every cached entry")
    cache_prune = cache_sub.add_parser(
        "prune", help="drop oldest entries beyond a per-area bound"
    )
    cache_prune.add_argument(
        "--max-entries", type=int, required=True,
        help="entries to keep per cache area (oldest-mtime pruned first)",
    )
    for sub in (cache_stats, cache_clear, cache_prune):
        sub.add_argument(
            "--cache-dir", default=None,
            help="cache root (default: .repro-cache, or $REPRO_CACHE_DIR)",
        )
        sub.set_defaults(handler=cmd_cache)

    frontier = subparsers.add_parser(
        "frontier",
        help="JPEG-DCT Pareto frontier vs. the paper's chosen design point, "
             "or (with --store) the merged union frontier of any number of "
             "exploration run stores",
    )
    frontier.add_argument("--store", action="append", default=[],
                          help="exploration run store(s) to merge through the "
                               "Pareto fold; repeat for shard stores "
                               "(default: the built-in paper frontier report)")
    frontier.add_argument("--objectives", default="latency,throughput",
                          help="with --store: comma-separated objectives the "
                               "merged front is computed over")
    frontier.add_argument("--format", default="table",
                          choices=["table", "json", "csv"],
                          help="with --store: output format")
    frontier.add_argument("--output", default=None,
                          help="with --store: write the front to this file "
                               "instead of stdout")
    frontier.set_defaults(handler=cmd_frontier)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 (FDH)")
    table1.add_argument("--no-ilp", action="store_true",
                        help="use the paper's reference assignment instead of solving the ILP")
    table1.set_defaults(handler=cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2 (IDH)")
    table2.add_argument("--no-ilp", action="store_true")
    table2.set_defaults(handler=cmd_table2)

    case_study = subparsers.add_parser("case-study", help="print the full case-study summary")
    case_study.add_argument("--no-ilp", action="store_true")
    case_study.set_defaults(handler=cmd_case_study)

    report = subparsers.add_parser(
        "report", help="compare every paper claim against the reproduction"
    )
    report.add_argument("--no-ilp", action="store_true")
    report.set_defaults(handler=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
