"""Operation-level data-flow graphs (the behaviour inside each task).

The temporal partitioner works at *task* granularity, but the HLS estimator
(our substitute for the authors' DSS tool) needs the operation-level
behaviour of each task to estimate its FPGA resources and delay.  This
package provides the operation vocabulary, the DFG container, builders for
common DSP kernels (vector products, FIR taps, butterflies) and structural
analyses.
"""

from .analysis import (
    DfgProfile,
    asap_levels,
    io_words,
    list_compute_kinds,
    max_parallelism,
    profile,
    software_operation_count,
)
from .builders import (
    DfgBuilder,
    butterfly_dfg,
    chain_dfg,
    fir_tap_dfg,
    sum_of_products_dfg,
    vector_product_dfg,
)
from .graph import DataFlowGraph
from .operations import (
    MEMORY_KINDS,
    ZERO_COST_KINDS,
    OpKind,
    Operation,
    expected_arity,
    make_operation,
    result_width,
)

__all__ = [
    "DataFlowGraph",
    "DfgBuilder",
    "DfgProfile",
    "MEMORY_KINDS",
    "OpKind",
    "Operation",
    "ZERO_COST_KINDS",
    "asap_levels",
    "butterfly_dfg",
    "chain_dfg",
    "expected_arity",
    "fir_tap_dfg",
    "io_words",
    "list_compute_kinds",
    "make_operation",
    "max_parallelism",
    "profile",
    "result_width",
    "software_operation_count",
    "sum_of_products_dfg",
    "vector_product_dfg",
]
