"""Operation vocabulary for operation-level data-flow graphs.

Each task in the behaviour specification is internally a small data-flow graph
of arithmetic/logic operations annotated with bit-widths.  The HLS estimator
maps these operations onto library components to estimate area and delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Tuple

from ..errors import SpecificationError, UnknownOperationError


class OpKind(str, Enum):
    """Kinds of operations supported by the data-flow graph and HLS library."""

    INPUT = "input"
    OUTPUT = "output"
    CONST = "const"
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    MAC = "mac"
    SHIFT_LEFT = "shl"
    SHIFT_RIGHT = "shr"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    COMPARE = "cmp"
    MUX = "mux"
    REGISTER = "reg"
    MEMORY_READ = "mem_read"
    MEMORY_WRITE = "mem_write"

    @classmethod
    def from_string(cls, text: str) -> "OpKind":
        """Parse an operation kind from its string value.

        >>> OpKind.from_string("add") is OpKind.ADD
        True
        """
        try:
            return cls(text)
        except ValueError:
            known = ", ".join(kind.value for kind in cls)
            raise UnknownOperationError(
                f"unknown operation kind {text!r}; known kinds: {known}"
            )


#: Operation kinds that do not consume a functional unit (pure dataflow
#: endpoints); they contribute neither area nor combinational delay.
ZERO_COST_KINDS = frozenset({OpKind.INPUT, OpKind.OUTPUT, OpKind.CONST})

#: Operation kinds that read or write the on-board memory.
MEMORY_KINDS = frozenset({OpKind.MEMORY_READ, OpKind.MEMORY_WRITE})

#: Expected number of data inputs per operation kind (None = variable).
_ARITY = {
    OpKind.INPUT: 0,
    OpKind.CONST: 0,
    OpKind.OUTPUT: 1,
    OpKind.NOT: 1,
    OpKind.REGISTER: 1,
    OpKind.SHIFT_LEFT: 1,
    OpKind.SHIFT_RIGHT: 1,
    OpKind.MEMORY_READ: 1,
    OpKind.MEMORY_WRITE: 2,
    OpKind.ADD: 2,
    OpKind.SUB: 2,
    OpKind.MUL: 2,
    OpKind.AND: 2,
    OpKind.OR: 2,
    OpKind.XOR: 2,
    OpKind.COMPARE: 2,
    OpKind.MUX: 3,
    OpKind.MAC: 3,
}


def expected_arity(kind: OpKind) -> int:
    """Number of data inputs an operation of *kind* expects."""
    return _ARITY[kind]


@dataclass(frozen=True)
class Operation:
    """A single operation node in a data-flow graph.

    Parameters
    ----------
    name:
        Unique node name within the owning DFG.
    kind:
        The :class:`OpKind` of the operation.
    width:
        Output bit-width of the operation.  The component library uses this
        to pick a characterised component (e.g. a 9-bit vs. 17-bit
        multiplier).
    value:
        Constant value for :attr:`OpKind.CONST` nodes, ignored otherwise.
    """

    name: str
    kind: OpKind
    width: int = 16
    value: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("operation name must not be empty")
        if self.width <= 0:
            raise SpecificationError(
                f"operation {self.name!r} must have a positive bit width, "
                f"got {self.width}"
            )

    @property
    def is_zero_cost(self) -> bool:
        """Whether the operation consumes no functional unit."""
        return self.kind in ZERO_COST_KINDS

    @property
    def is_memory_access(self) -> bool:
        """Whether the operation reads or writes the on-board memory."""
        return self.kind in MEMORY_KINDS

    @property
    def arity(self) -> int:
        """Number of data inputs the operation expects."""
        return expected_arity(self.kind)

    def describe(self) -> str:
        """Compact human-readable description, e.g. ``"mul m3 (17b)"``."""
        return f"{self.kind.value} {self.name} ({self.width}b)"


def make_operation(
    name: str, kind: str, width: int = 16, value: float = 0.0
) -> Operation:
    """Build an :class:`Operation` from plain strings (convenience helper)."""
    return Operation(name=name, kind=OpKind.from_string(kind), width=width, value=value)


def result_width(kind: OpKind, input_widths: Tuple[int, ...]) -> int:
    """Natural output width of an operation given its input widths.

    This implements the usual bit-growth rules for fixed-point arithmetic:
    addition grows by one bit, multiplication produces the sum of the input
    widths, and everything else keeps the widest input.  Builders use it to
    propagate widths automatically; the user can always override.
    """
    widest = max(input_widths) if input_widths else 1
    if kind in (OpKind.ADD, OpKind.SUB):
        return widest + 1
    if kind == OpKind.MUL:
        if len(input_widths) >= 2:
            return input_widths[0] + input_widths[1]
        return widest * 2
    if kind == OpKind.MAC:
        if len(input_widths) >= 2:
            return max(input_widths[0] + input_widths[1], widest) + 1
        return widest * 2 + 1
    if kind == OpKind.COMPARE:
        return 1
    return widest
