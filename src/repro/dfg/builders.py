"""Builders for common DSP data-flow graphs.

The most important builder is :func:`vector_product_dfg`, which constructs the
multiply/accumulate tree of the paper's Figure 8 — the DCT in the case study
is a collection of 32 such vector products.  Additional builders (FIR taps,
sum-of-products, butterflies, expression chains) are used by the synthetic
benchmarks and the random task-graph generator.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..errors import SpecificationError
from .graph import DataFlowGraph
from .operations import OpKind, Operation, result_width


class DfgBuilder:
    """Small fluent helper that keeps track of unique node names."""

    def __init__(self, name: str) -> None:
        self.dfg = DataFlowGraph(name)
        self._counter = 0

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def input(self, name: Optional[str] = None, width: int = 16) -> str:
        """Add an INPUT node and return its name."""
        node = name or self._fresh("in")
        self.dfg.add_operation(Operation(node, OpKind.INPUT, width=width))
        return node

    def const(self, value: float, name: Optional[str] = None, width: int = 16) -> str:
        """Add a CONST node and return its name."""
        node = name or self._fresh("const")
        self.dfg.add_operation(Operation(node, OpKind.CONST, width=width, value=value))
        return node

    def op(
        self,
        kind: OpKind,
        inputs: Sequence[str],
        name: Optional[str] = None,
        width: Optional[int] = None,
    ) -> str:
        """Add a compute node fed by *inputs* and return its name."""
        node = name or self._fresh(kind.value)
        input_widths = tuple(self.dfg.operation(i).width for i in inputs)
        out_width = width if width is not None else result_width(kind, input_widths)
        self.dfg.add_operation(Operation(node, kind, width=out_width))
        for producer in inputs:
            self.dfg.add_dependency(producer, node)
        return node

    def add(self, a: str, b: str, name: Optional[str] = None, width: Optional[int] = None) -> str:
        """Add an ADD node."""
        return self.op(OpKind.ADD, [a, b], name=name, width=width)

    def mul(self, a: str, b: str, name: Optional[str] = None, width: Optional[int] = None) -> str:
        """Add a MUL node."""
        return self.op(OpKind.MUL, [a, b], name=name, width=width)

    def output(self, source: str, name: Optional[str] = None, width: Optional[int] = None) -> str:
        """Add an OUTPUT node fed by *source* and return its name."""
        node = name or self._fresh("out")
        out_width = width if width is not None else self.dfg.operation(source).width
        self.dfg.add_operation(Operation(node, OpKind.OUTPUT, width=out_width))
        self.dfg.add_dependency(source, node)
        return node

    def build(self) -> DataFlowGraph:
        """Validate and return the constructed DFG."""
        self.dfg.validate()
        return self.dfg


def vector_product_dfg(
    length: int = 4,
    input_width: int = 8,
    coefficient_width: int = 8,
    name: str = "vector_product",
) -> DataFlowGraph:
    """The vector-product DFG of the paper's Figure 8.

    Computes ``sum_i x[i] * c[i]`` for *length* elements: *length* parallel
    multiplications feeding a balanced adder tree.  The case-study DCT tasks
    are 4-element vector products; T1 tasks use 8/9-bit operands and T2 tasks
    use wider (17-bit) operands, which is expressed through *input_width* and
    *coefficient_width*.
    """
    if length < 1:
        raise SpecificationError(f"vector product length must be >= 1, got {length}")
    builder = DfgBuilder(name)
    products: List[str] = []
    for index in range(length):
        x_node = builder.input(f"x{index}", width=input_width)
        c_node = builder.const(0.0, f"c{index}", width=coefficient_width)
        products.append(builder.mul(x_node, c_node, name=f"m{index}"))
    # Balanced adder tree over the products.
    frontier = products
    level = 0
    while len(frontier) > 1:
        next_frontier: List[str] = []
        for pair_index in range(0, len(frontier) - 1, 2):
            node = builder.add(
                frontier[pair_index],
                frontier[pair_index + 1],
                name=f"a{level}_{pair_index // 2}",
            )
            next_frontier.append(node)
        if len(frontier) % 2:
            next_frontier.append(frontier[-1])
        frontier = next_frontier
        level += 1
    builder.output(frontier[0], name="y")
    return builder.build()


def fir_tap_dfg(
    taps: int = 4,
    input_width: int = 12,
    coefficient_width: int = 12,
    name: str = "fir",
) -> DataFlowGraph:
    """A *taps*-tap FIR filter slice: transposed-form MAC chain.

    Unlike the balanced tree of :func:`vector_product_dfg`, this builder
    produces a sequential accumulate chain, which exercises a different
    schedule shape (long critical path, little parallelism).
    """
    if taps < 1:
        raise SpecificationError(f"FIR tap count must be >= 1, got {taps}")
    builder = DfgBuilder(name)
    accumulator: Optional[str] = None
    for index in range(taps):
        x_node = builder.input(f"x{index}", width=input_width)
        c_node = builder.const(0.0, f"c{index}", width=coefficient_width)
        product = builder.mul(x_node, c_node, name=f"m{index}")
        if accumulator is None:
            accumulator = product
        else:
            accumulator = builder.add(accumulator, product, name=f"acc{index}")
    builder.output(accumulator, name="y")
    return builder.build()


def butterfly_dfg(width: int = 16, name: str = "butterfly") -> DataFlowGraph:
    """A radix-2 FFT butterfly: two inputs, a twiddle multiply, sum and diff."""
    builder = DfgBuilder(name)
    a = builder.input("a", width=width)
    b = builder.input("b", width=width)
    twiddle = builder.const(0.0, "w", width=width)
    scaled = builder.mul(b, twiddle, name="bw")
    builder.output(builder.add(a, scaled, name="sum"), name="y0")
    builder.output(builder.op(OpKind.SUB, [a, scaled], name="diff"), name="y1")
    return builder.build()


def sum_of_products_dfg(
    terms: int = 3,
    width: int = 16,
    name: str = "sum_of_products",
) -> DataFlowGraph:
    """``sum_i a[i]*b[i]`` with both operands being live inputs (no constants)."""
    if terms < 1:
        raise SpecificationError(f"terms must be >= 1, got {terms}")
    builder = DfgBuilder(name)
    accumulator: Optional[str] = None
    for index in range(terms):
        a_node = builder.input(f"a{index}", width=width)
        b_node = builder.input(f"b{index}", width=width)
        product = builder.mul(a_node, b_node, name=f"p{index}")
        if accumulator is None:
            accumulator = product
        else:
            accumulator = builder.add(accumulator, product, name=f"s{index}")
    builder.output(accumulator, name="y")
    return builder.build()


def chain_dfg(
    length: int = 4,
    kind: OpKind = OpKind.ADD,
    width: int = 16,
    name: str = "chain",
) -> DataFlowGraph:
    """A purely sequential chain of *length* identical binary operations.

    Useful for delay-model unit tests: the latency of the chain must equal
    ``length`` times the component delay (plus register overhead) regardless
    of how many functional units are allocated.
    """
    if length < 1:
        raise SpecificationError(f"chain length must be >= 1, got {length}")
    builder = DfgBuilder(name)
    left = builder.input("x0", width=width)
    for index in range(length):
        right = builder.input(f"x{index + 1}", width=width)
        left = builder.op(kind, [left, right], name=f"n{index}", width=width)
    builder.output(left, name="y")
    return builder.build()
