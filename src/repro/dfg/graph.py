"""Operation-level data-flow graph container.

A :class:`DataFlowGraph` is a directed acyclic graph of :class:`Operation`
nodes.  Edges carry no data-volume annotation (each edge is a single scalar
value of the producer's bit-width); data volumes live at the *task graph*
level, which is the granularity the temporal partitioner works at.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..errors import CycleError, GraphError
from .operations import OpKind, Operation


class DataFlowGraph:
    """A directed acyclic graph of operations describing one task's behaviour."""

    def __init__(self, name: str = "dfg") -> None:
        if not name:
            raise GraphError("data-flow graph name must not be empty")
        self.name = name
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_operation(self, operation: Operation) -> Operation:
        """Add an operation node.  Names must be unique within the graph."""
        if operation.name in self._graph:
            raise GraphError(
                f"duplicate operation name {operation.name!r} in DFG {self.name!r}"
            )
        self._graph.add_node(operation.name, operation=operation)
        return operation

    def add_dependency(self, producer: str, consumer: str) -> None:
        """Add a data dependency edge from *producer* to *consumer*."""
        for node in (producer, consumer):
            if node not in self._graph:
                raise GraphError(
                    f"unknown operation {node!r} in DFG {self.name!r}"
                )
        if producer == consumer:
            raise GraphError(f"self dependency on operation {producer!r}")
        self._graph.add_edge(producer, consumer)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer, consumer)
            raise CycleError(
                f"adding edge {producer!r} -> {consumer!r} creates a cycle in "
                f"DFG {self.name!r}"
            )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def operation(self, name: str) -> Operation:
        """The :class:`Operation` stored under *name*."""
        try:
            return self._graph.nodes[name]["operation"]
        except KeyError:
            raise GraphError(f"unknown operation {name!r} in DFG {self.name!r}")

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def operations(self) -> Iterator[Operation]:
        """Iterate over all operations in insertion order."""
        for name in self._graph.nodes:
            yield self._graph.nodes[name]["operation"]

    def operation_names(self) -> List[str]:
        """Names of all operations in insertion order."""
        return list(self._graph.nodes)

    def edges(self) -> List[Tuple[str, str]]:
        """All dependency edges as (producer, consumer) name pairs."""
        return list(self._graph.edges)

    def predecessors(self, name: str) -> List[str]:
        """Names of operations feeding *name*."""
        self.operation(name)
        return list(self._graph.predecessors(name))

    def successors(self, name: str) -> List[str]:
        """Names of operations consuming *name*'s result."""
        self.operation(name)
        return list(self._graph.successors(name))

    def inputs(self) -> List[Operation]:
        """All :attr:`OpKind.INPUT` operations."""
        return [op for op in self.operations() if op.kind is OpKind.INPUT]

    def outputs(self) -> List[Operation]:
        """All :attr:`OpKind.OUTPUT` operations."""
        return [op for op in self.operations() if op.kind is OpKind.OUTPUT]

    def constants(self) -> List[Operation]:
        """All :attr:`OpKind.CONST` operations."""
        return [op for op in self.operations() if op.kind is OpKind.CONST]

    def compute_operations(self) -> List[Operation]:
        """Operations that consume a functional unit (non-zero-cost nodes)."""
        return [op for op in self.operations() if not op.is_zero_cost]

    def operation_counts(self) -> Dict[OpKind, int]:
        """Histogram of operation kinds (useful for software-cost estimates)."""
        counts: Dict[OpKind, int] = {}
        for op in self.operations():
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    # ------------------------------------------------------------------
    # Structure / analysis
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Operation names in a topological order."""
        return list(nx.topological_sort(self._graph))

    def validate(self) -> None:
        """Check structural invariants, raising :class:`GraphError` on failure.

        * the graph is acyclic (guaranteed by construction, rechecked here);
        * INPUT and CONST nodes have no predecessors;
        * OUTPUT nodes have no successors and exactly one predecessor;
        * every non-source operation has at least one predecessor.
        """
        if not nx.is_directed_acyclic_graph(self._graph):
            raise CycleError(f"DFG {self.name!r} contains a cycle")
        for op in self.operations():
            preds = self.predecessors(op.name)
            succs = self.successors(op.name)
            if op.kind in (OpKind.INPUT, OpKind.CONST) and preds:
                raise GraphError(
                    f"{op.kind.value} operation {op.name!r} must not have "
                    f"predecessors (has {preds})"
                )
            if op.kind is OpKind.OUTPUT:
                if succs:
                    raise GraphError(
                        f"output operation {op.name!r} must not have successors"
                    )
                if len(preds) != 1:
                    raise GraphError(
                        f"output operation {op.name!r} must have exactly one "
                        f"predecessor, has {len(preds)}"
                    )
            if op.kind not in (OpKind.INPUT, OpKind.CONST) and not preds:
                raise GraphError(
                    f"operation {op.name!r} of kind {op.kind.value!r} has no inputs"
                )

    def longest_path_length(self) -> int:
        """Number of compute operations on the longest dependency chain."""
        lengths: Dict[str, int] = {}
        for name in self.topological_order():
            op = self.operation(name)
            own = 0 if op.is_zero_cost else 1
            best_pred = max(
                (lengths[p] for p in self.predecessors(name)), default=0
            )
            lengths[name] = best_pred + own
        return max(lengths.values(), default=0)

    def subgraph_copy(self, names: Iterable[str], name: Optional[str] = None) -> "DataFlowGraph":
        """A new DFG containing only the named operations and induced edges."""
        selected = set(names)
        result = DataFlowGraph(name or f"{self.name}-sub")
        for node in self._graph.nodes:
            if node in selected:
                result.add_operation(self.operation(node))
        for producer, consumer in self._graph.edges:
            if producer in selected and consumer in selected:
                result.add_dependency(producer, consumer)
        return result

    def copy(self, name: Optional[str] = None) -> "DataFlowGraph":
        """A shallow copy (operations are immutable, so sharing is safe)."""
        return self.subgraph_copy(self._graph.nodes, name or self.name)

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`."""
        return self._graph.copy()

    def __repr__(self) -> str:
        return (
            f"DataFlowGraph(name={self.name!r}, operations={len(self)}, "
            f"edges={self._graph.number_of_edges()})"
        )
