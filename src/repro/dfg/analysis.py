"""Analyses over operation-level data-flow graphs.

These helpers answer the questions the HLS estimator and the software-cost
model ask about a DFG: how many operations of each kind, how long is the
critical path, how many functional units could usefully run in parallel, and
how many input/output values cross the task boundary.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from .graph import DataFlowGraph
from .operations import OpKind


@dataclass(frozen=True)
class DfgProfile:
    """Summary statistics of a data-flow graph."""

    name: str
    operation_count: int
    compute_operation_count: int
    input_count: int
    output_count: int
    constant_count: int
    critical_path_operations: int
    max_parallelism: int
    kind_histogram: Dict[str, int]

    @property
    def average_parallelism(self) -> float:
        """Compute operations divided by critical-path length."""
        if self.critical_path_operations == 0:
            return 0.0
        return self.compute_operation_count / self.critical_path_operations


def asap_levels(dfg: DataFlowGraph) -> Dict[str, int]:
    """ASAP level of each operation (zero-cost nodes do not advance levels).

    The level of an operation is the earliest "time step" it could execute in
    an unconstrained schedule where every compute operation takes one step.
    """
    levels: Dict[str, int] = {}
    for name in dfg.topological_order():
        op = dfg.operation(name)
        pred_levels = [levels[p] for p in dfg.predecessors(name)]
        base = max(pred_levels, default=0)
        levels[name] = base if op.is_zero_cost else base + 1
    return levels


def max_parallelism(dfg: DataFlowGraph) -> int:
    """Maximum number of compute operations sharing an ASAP level."""
    levels = asap_levels(dfg)
    histogram: Dict[int, int] = {}
    for name, level in levels.items():
        if dfg.operation(name).is_zero_cost:
            continue
        histogram[level] = histogram.get(level, 0) + 1
    return max(histogram.values(), default=0)


def profile(dfg: DataFlowGraph) -> DfgProfile:
    """Compute a :class:`DfgProfile` for *dfg*."""
    histogram = {kind.value: count for kind, count in dfg.operation_counts().items()}
    return DfgProfile(
        name=dfg.name,
        operation_count=len(dfg),
        compute_operation_count=len(dfg.compute_operations()),
        input_count=len(dfg.inputs()),
        output_count=len(dfg.outputs()),
        constant_count=len(dfg.constants()),
        critical_path_operations=dfg.longest_path_length(),
        max_parallelism=max_parallelism(dfg),
        kind_histogram=histogram,
    )


def io_words(dfg: DataFlowGraph) -> Dict[str, int]:
    """Number of input and output data words the task exchanges per execution.

    Constants are excluded: they are baked into the datapath and never cross
    the task boundary.  This is the per-execution data volume that the task
    graph's environment edges ``B(env, t)`` / ``B(t, env)`` and inter-task
    edges are derived from.
    """
    return {"inputs": len(dfg.inputs()), "outputs": len(dfg.outputs())}


def software_operation_count(dfg: DataFlowGraph, weights: Dict[OpKind, float] = None) -> float:
    """Weighted operation count used to estimate a software implementation.

    Multiplications are weighted more heavily than additions by default,
    reflecting a mid-1990s host without a fully pipelined multiplier.
    """
    default_weights = {
        OpKind.MUL: 4.0,
        OpKind.MAC: 5.0,
        OpKind.MEMORY_READ: 1.0,
        OpKind.MEMORY_WRITE: 1.0,
    }
    if weights:
        default_weights.update(weights)
    total = 0.0
    for op in dfg.compute_operations():
        total += default_weights.get(op.kind, 1.0)
    return total


def list_compute_kinds(dfg: DataFlowGraph) -> List[OpKind]:
    """Kinds of all compute operations, in topological order."""
    order = dfg.topological_order()
    return [dfg.operation(n).kind for n in order if not dfg.operation(n).is_zero_cost]
