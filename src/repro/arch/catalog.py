"""Named presets for devices, boards and systems.

The most important preset is :func:`paper_case_study_system`, which models the
board used in the paper's JPEG case study:

* a single Xilinx XC4044 FPGA with 1600 CLBs,
* a single 64K x 32-bit on-board memory bank,
* 100 ms per reconfiguration,
* a 200 MHz Pentium host attached over a 33 MHz PCI bus.

A second preset models the hypothetical XC6200-class device with a 500 us
reconfiguration time used for the paper's closing conjecture.
"""

from __future__ import annotations

from typing import Callable, Dict

from ..errors import ArchitectureError
from ..units import kilowords, ms, ns, us
from .board import ReconfigurableBoard, RtrSystem
from .bus import HostLink
from .device import FpgaDevice, clbs, make_device
from .host import HostSpec

#: Default per-word transfer time over the paper's PCI link (seconds).
#: One 32-bit word per 33 MHz cycle, ~30 ns.
PCI_WORD_TRANSFER_TIME = 1.0 / 33_000_000.0

#: Default host handshake time per board invocation (seconds).
DEFAULT_HANDSHAKE_TIME = us(2.0)


def xc4044(reconfiguration_time: float = ms(100)) -> FpgaDevice:
    """The Xilinx XC4044 used in the case study: 1600 CLBs, 100 ms reconfig."""
    return FpgaDevice(
        name="XC4044",
        family="xc4000",
        capacity=clbs(1600),
        reconfiguration_time=reconfiguration_time,
        min_clock_period=ns(20),
        max_clock_period=ns(1000),
    )


def xc6200(reconfiguration_time: float = us(500)) -> FpgaDevice:
    """An XC6200-class device with a 500 us reconfiguration overhead.

    This models the paper's closing conjecture ("For a XC6000 series FPGA,
    with a reconfiguration overhead of for eg., 500 us ...").  Resource
    capacity is kept at the XC4044 level so the same partitioning is reused
    and only the reconfiguration overhead changes.
    """
    return FpgaDevice(
        name="XC6200",
        family="xc6200",
        capacity=clbs(1600),
        reconfiguration_time=reconfiguration_time,
        min_clock_period=ns(20),
        max_clock_period=ns(1000),
    )


def time_multiplexed_fpga(reconfiguration_time: float = ns(100)) -> FpgaDevice:
    """A Time-Multiplexed-FPGA-class device with nanosecond reconfiguration.

    The paper cites Trimberger's Time-Multiplexed FPGA as the fast end of the
    reconfiguration-overhead spectrum; this preset is used by the
    reconfiguration-time ablation sweep.
    """
    return FpgaDevice(
        name="TM-FPGA",
        family="tmfpga",
        capacity=clbs(1600),
        reconfiguration_time=reconfiguration_time,
        min_clock_period=ns(20),
        max_clock_period=ns(1000),
    )


def wildforce_link(
    handshake_time: float = DEFAULT_HANDSHAKE_TIME,
    word_transfer_time: float = PCI_WORD_TRANSFER_TIME,
) -> HostLink:
    """The WildForce-style PCI link of the case-study board."""
    return HostLink(
        name="PCI-33",
        word_transfer_time=word_transfer_time,
        handshake_time=handshake_time,
    )


def pentium_host() -> HostSpec:
    """The 200 MHz Pentium host of the case study."""
    return HostSpec(name="Pentium-200", clock_hz=200_000_000.0)


def paper_case_study_board(
    reconfiguration_time: float = ms(100),
    memory_words: int = kilowords(64),
    handshake_time: float = DEFAULT_HANDSHAKE_TIME,
    word_transfer_time: float = PCI_WORD_TRANSFER_TIME,
) -> ReconfigurableBoard:
    """The reconfigurable board of Section 4 (XC4044 + 64K x 32 memory + PCI)."""
    from .memory import single_bank

    return ReconfigurableBoard(
        name="wildforce-xc4044",
        fpga=xc4044(reconfiguration_time),
        memory=single_bank(memory_words, word_bits=32),
        link=wildforce_link(handshake_time, word_transfer_time),
    )


def paper_case_study_system(
    reconfiguration_time: float = ms(100),
    memory_words: int = kilowords(64),
    handshake_time: float = DEFAULT_HANDSHAKE_TIME,
    word_transfer_time: float = PCI_WORD_TRANSFER_TIME,
) -> RtrSystem:
    """The complete case-study system: paper board + Pentium-200 host."""
    return RtrSystem(
        board=paper_case_study_board(
            reconfiguration_time=reconfiguration_time,
            memory_words=memory_words,
            handshake_time=handshake_time,
            word_transfer_time=word_transfer_time,
        ),
        host=pentium_host(),
    )


def xc6200_system() -> RtrSystem:
    """The case-study system with the XC6200-class device (CT = 500 us)."""
    base = paper_case_study_board()
    return RtrSystem(board=base.with_fpga(xc6200()), host=pentium_host())


def generic_system(
    clb_capacity: int = 1000,
    memory_words: int = 32768,
    reconfiguration_time: float = ms(10),
    word_transfer_time: float = PCI_WORD_TRANSFER_TIME,
    handshake_time: float = DEFAULT_HANDSHAKE_TIME,
) -> RtrSystem:
    """A parameterisable single-FPGA system for synthetic experiments."""
    from .memory import single_bank

    device = make_device(
        "GENERIC",
        clb_capacity=clb_capacity,
        reconfiguration_time=reconfiguration_time,
    )
    board = ReconfigurableBoard(
        name="generic-board",
        fpga=device,
        memory=single_bank(memory_words),
        link=HostLink(
            name="generic-link",
            word_transfer_time=word_transfer_time,
            handshake_time=handshake_time,
        ),
    )
    return RtrSystem(board=board, host=HostSpec(name="generic-host"))


#: Registry of named system presets, for CLI-ish / string-driven selection.
SYSTEM_PRESETS: Dict[str, Callable[[], RtrSystem]] = {
    "paper-xc4044": paper_case_study_system,
    "paper-xc6200": xc6200_system,
    "generic": generic_system,
}


def system_by_name(name: str) -> RtrSystem:
    """Instantiate one of the named system presets.

    >>> system_by_name("paper-xc4044").fpga.name
    'XC4044'
    """
    try:
        factory = SYSTEM_PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(SYSTEM_PRESETS))
        raise ArchitectureError(f"unknown system preset {name!r}; known: {known}")
    return factory()
