"""Target architecture models: FPGA devices, memories, buses, boards, hosts.

The objects in this package carry the three architecture constraints of the
paper's Section 2.1 — ``R_max`` (FPGA resource capacity), ``M_max`` (on-board
memory size) and ``CT`` (reconfiguration time) — plus the host-link timing
(``D_tr`` and handshake cost) needed by the loop-fission analysis and the
execution simulator.
"""

from .board import ReconfigurableBoard, RtrSystem
from .bus import HostLink, pci_link
from .catalog import (
    DEFAULT_HANDSHAKE_TIME,
    PCI_WORD_TRANSFER_TIME,
    SYSTEM_PRESETS,
    generic_system,
    paper_case_study_board,
    paper_case_study_system,
    pentium_host,
    system_by_name,
    time_multiplexed_fpga,
    wildforce_link,
    xc4044,
    xc6200,
    xc6200_system,
)
from .device import CLB, FpgaDevice, ResourceVector, clbs, make_device
from .host import HostSpec
from .memory import MemoryBank, MemorySubsystem, single_bank

__all__ = [
    "CLB",
    "DEFAULT_HANDSHAKE_TIME",
    "FpgaDevice",
    "HostLink",
    "HostSpec",
    "MemoryBank",
    "MemorySubsystem",
    "PCI_WORD_TRANSFER_TIME",
    "ReconfigurableBoard",
    "ResourceVector",
    "RtrSystem",
    "SYSTEM_PRESETS",
    "clbs",
    "generic_system",
    "make_device",
    "paper_case_study_board",
    "paper_case_study_system",
    "pci_link",
    "pentium_host",
    "single_bank",
    "system_by_name",
    "time_multiplexed_fpga",
    "wildforce_link",
    "xc4044",
    "xc6200",
    "xc6200_system",
]
