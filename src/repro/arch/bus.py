"""Host <-> board interconnect model.

The paper's host communicates with the reconfigurable board "by
reading/writing data on the board memory, using a simple handshaking protocol
through the PCI bus running at 33 MHz".  The quantity the loop-fission
analysis needs is ``D_tr`` — "delay in communicating 1 memory element between
the host and the memory of the FPGA" — plus a fixed per-invocation handshake
cost (start signal / wait for finish), which is what makes batching k
computations per invocation worthwhile even before reconfiguration overhead is
considered.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArchitectureError
from ..units import period_from_frequency, us


@dataclass(frozen=True)
class HostLink:
    """Timing model of the host <-> board data path.

    Parameters
    ----------
    name:
        Link name, e.g. ``"PCI-33"``.
    word_transfer_time:
        ``D_tr``: seconds to move one memory word between host and board
        memory (includes per-word protocol overhead).
    handshake_time:
        Fixed cost per board invocation: writing the start signal and polling
        / waiting for the finish signal.
    configuration_load_time:
        Extra host-side cost per configuration load beyond the device's own
        reconfiguration time ``CT`` (e.g. reading the bitstream from disk).
        The paper folds everything into the 100 ms figure, so the default is
        zero.
    """

    name: str
    word_transfer_time: float
    handshake_time: float = 0.0
    configuration_load_time: float = 0.0

    def __post_init__(self) -> None:
        if self.word_transfer_time < 0:
            raise ArchitectureError("word_transfer_time must be non-negative")
        if self.handshake_time < 0:
            raise ArchitectureError("handshake_time must be non-negative")
        if self.configuration_load_time < 0:
            raise ArchitectureError("configuration_load_time must be non-negative")

    def transfer_time(self, words: int) -> float:
        """Time in seconds to move *words* memory words across the link."""
        if words < 0:
            raise ArchitectureError(f"cannot transfer a negative word count: {words}")
        return words * self.word_transfer_time

    def invocation_overhead(self) -> float:
        """Fixed host-side cost of starting the board and awaiting completion."""
        return self.handshake_time

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: D_tr={self.word_transfer_time * 1e9:.1f} ns/word, "
            f"handshake={self.handshake_time * 1e6:.2f} us"
        )


def pci_link(
    frequency_hz: float = 33_000_000.0,
    words_per_cycle: float = 1.0,
    protocol_overhead_factor: float = 1.0,
    handshake_time: float = us(2.0),
    name: str = "PCI-33",
) -> HostLink:
    """Build a :class:`HostLink` describing a PCI-style bus.

    The per-word transfer time is derived from the bus clock: a 33 MHz, 32-bit
    PCI bus moves one word per cycle in burst mode, i.e. ~30 ns per word.  The
    *protocol_overhead_factor* scales this to account for non-burst accesses
    and driver overhead.

    The default 2 us handshake reflects a programmed-I/O start/finish exchange
    across PCI on a mid-1990s host, which is what makes the per-invocation
    batching of loop fission profitable; it can be set to zero to model an
    idealised link.
    """
    if frequency_hz <= 0:
        raise ArchitectureError("bus frequency must be positive")
    if words_per_cycle <= 0:
        raise ArchitectureError("words_per_cycle must be positive")
    if protocol_overhead_factor < 1.0:
        raise ArchitectureError("protocol_overhead_factor must be >= 1")
    cycle = period_from_frequency(frequency_hz)
    word_time = cycle / words_per_cycle * protocol_overhead_factor
    return HostLink(
        name=name,
        word_transfer_time=word_time,
        handshake_time=handshake_time,
    )
