"""Reconfigurable board and full RTR system models.

A *board* couples one FPGA device with an on-board memory subsystem and the
link back to the host (Figure 1 of the paper).  An *RTR system* is the board
plus the host.  These objects are the single source of the architectural
parameters consumed by the temporal partitioner (``R_max``, ``M_max``, ``CT``),
the loop-fission analysis (``D_tr``, handshake cost), and the execution
simulator.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ArchitectureError
from .bus import HostLink
from .device import FpgaDevice, ResourceVector
from .host import HostSpec
from .memory import MemorySubsystem


@dataclass(frozen=True)
class ReconfigurableBoard:
    """An FPGA board with on-board memory, reachable from a host over a link."""

    name: str
    fpga: FpgaDevice
    memory: MemorySubsystem
    link: HostLink

    def __post_init__(self) -> None:
        if not self.name:
            raise ArchitectureError("board name must not be empty")

    # -- The three architecture constraints of Section 2.1 -----------------

    @property
    def resource_capacity(self) -> ResourceVector:
        """``R_max`` — resource capacity of the FPGA."""
        return self.fpga.capacity

    @property
    def memory_capacity_words(self) -> int:
        """``M_max`` — temporary on-board memory size in words."""
        return self.memory.total_words

    @property
    def reconfiguration_time(self) -> float:
        """``CT`` — reconfiguration time for the FPGA in seconds."""
        return self.fpga.reconfiguration_time

    @property
    def word_transfer_time(self) -> float:
        """``D_tr`` — host <-> board-memory transfer time per word, seconds."""
        return self.link.word_transfer_time

    def with_fpga(self, fpga: FpgaDevice) -> "ReconfigurableBoard":
        """Copy of this board with a different FPGA (e.g. for CT sweeps)."""
        return ReconfigurableBoard(
            name=self.name, fpga=fpga, memory=self.memory, link=self.link
        )

    def with_reconfiguration_time(self, reconfiguration_time: float) -> "ReconfigurableBoard":
        """Copy of this board with the FPGA's ``CT`` replaced."""
        return self.with_fpga(self.fpga.with_reconfiguration_time(reconfiguration_time))

    def describe(self) -> str:
        """Multi-line human readable summary."""
        return "\n".join(
            [
                f"board {self.name}",
                f"  fpga:   {self.fpga.describe()}",
                f"  memory: {self.memory.describe()}",
                f"  link:   {self.link.describe()}",
            ]
        )


@dataclass(frozen=True)
class RtrSystem:
    """The complete run-time reconfigured system: host + board (Figure 1)."""

    board: ReconfigurableBoard
    host: HostSpec

    # Convenience pass-throughs so most call sites only carry an RtrSystem.

    @property
    def fpga(self) -> FpgaDevice:
        """The board's FPGA device."""
        return self.board.fpga

    @property
    def resource_capacity(self) -> ResourceVector:
        """``R_max`` of the board's FPGA."""
        return self.board.resource_capacity

    @property
    def memory_capacity_words(self) -> int:
        """``M_max`` of the board's memory subsystem."""
        return self.board.memory_capacity_words

    @property
    def reconfiguration_time(self) -> float:
        """``CT`` of the board's FPGA."""
        return self.board.reconfiguration_time

    @property
    def word_transfer_time(self) -> float:
        """``D_tr`` of the host link."""
        return self.board.word_transfer_time

    @property
    def handshake_time(self) -> float:
        """Per-invocation host handshake cost of the link."""
        return self.board.link.handshake_time

    def with_reconfiguration_time(self, reconfiguration_time: float) -> "RtrSystem":
        """Copy of this system with the FPGA's ``CT`` replaced."""
        return RtrSystem(
            board=self.board.with_reconfiguration_time(reconfiguration_time),
            host=self.host,
        )

    def describe(self) -> str:
        """Multi-line human readable summary."""
        return self.board.describe() + f"\n  host:   {self.host.describe()}"
