"""On-board memory models.

The RTR architecture of the paper (Figure 1) places a memory bank next to the
FPGA.  Data flowing between temporal partitions is stored there, and the host
reads/writes it over the system bus.  The temporal partitioner only needs the
capacity ``M_max`` in words; the memory mapper and the simulator additionally
use the word width and (optionally) an access time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..errors import ArchitectureError
from ..units import format_words


@dataclass(frozen=True)
class MemoryBank:
    """A single on-board memory bank.

    Parameters
    ----------
    name:
        Bank name, e.g. ``"bank0"``.
    capacity_words:
        Number of addressable words (the paper's board has a 64K bank).
    word_bits:
        Width of each word in bits (32 on the paper's board).
    access_time:
        Time for one word access from the FPGA side, in seconds.  Only used by
        the cycle-accurate portions of the simulator; the paper folds memory
        access into the task delay estimates.
    """

    name: str
    capacity_words: int
    word_bits: int = 32
    access_time: float = 0.0

    def __post_init__(self) -> None:
        if self.capacity_words <= 0:
            raise ArchitectureError(
                f"memory bank {self.name!r} must have positive capacity"
            )
        if self.word_bits <= 0:
            raise ArchitectureError(
                f"memory bank {self.name!r} must have positive word width"
            )
        if self.access_time < 0:
            raise ArchitectureError(
                f"memory bank {self.name!r} has negative access time"
            )

    @property
    def capacity_bytes(self) -> int:
        """Capacity in bytes (word width rounded up to whole bytes)."""
        return self.capacity_words * ((self.word_bits + 7) // 8)

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.name}: {format_words(self.capacity_words)} x {self.word_bits} bit"
        )


@dataclass(frozen=True)
class MemorySubsystem:
    """The collection of memory banks attached to the reconfigurable device.

    The paper's case-study board has a single 64K x 32 bank; other boards (and
    our synthetic architectures) may have several.  The temporal partitioner
    treats the subsystem as a single pool of ``M_max`` words, which matches the
    paper's single-constraint formulation; the memory mapper is the component
    that knows about individual banks.
    """

    banks: tuple

    def __post_init__(self) -> None:
        if not self.banks:
            raise ArchitectureError("memory subsystem must have at least one bank")
        names = [bank.name for bank in self.banks]
        if len(names) != len(set(names)):
            raise ArchitectureError(f"duplicate memory bank names: {names}")
        widths = {bank.word_bits for bank in self.banks}
        if len(widths) > 1:
            raise ArchitectureError(
                f"all banks must share a word width, got {sorted(widths)}"
            )

    @property
    def total_words(self) -> int:
        """Total capacity across all banks, the paper's ``M_max``."""
        return sum(bank.capacity_words for bank in self.banks)

    @property
    def word_bits(self) -> int:
        """Word width shared by all banks."""
        return self.banks[0].word_bits

    @property
    def bank_names(self) -> List[str]:
        """Names of the banks in declaration order."""
        return [bank.name for bank in self.banks]

    def bank(self, name: str) -> MemoryBank:
        """Look up a bank by name."""
        for bank in self.banks:
            if bank.name == name:
                return bank
        raise ArchitectureError(f"unknown memory bank {name!r}")

    def describe(self) -> str:
        """One-line human readable summary."""
        return "; ".join(bank.describe() for bank in self.banks)


def single_bank(
    capacity_words: int,
    word_bits: int = 32,
    name: str = "bank0",
    access_time: float = 0.0,
) -> MemorySubsystem:
    """A memory subsystem consisting of one bank (the common case)."""
    return MemorySubsystem(
        banks=(
            MemoryBank(
                name=name,
                capacity_words=capacity_words,
                word_bits=word_bits,
                access_time=access_time,
            ),
        )
    )
