"""FPGA device models.

The temporal partitioner only needs two facts about the reconfigurable device:
its resource capacity ``R_max`` (the paper uses CLB count) and the time it
takes to load a new configuration, ``CT``.  The HLS estimator additionally
needs to know the device family so it can pick the right component
characterisation, and the achievable clock range so it can validate the user's
clock constraint.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import ArchitectureError
from ..units import ns


@dataclass(frozen=True)
class ResourceVector:
    """A bag of named FPGA resources (CLBs, function generators, DSP blocks...).

    The paper's model uses a single resource type (CLBs) but notes that
    "similar equations can be added if multiple resource types exist"; the
    partitioner therefore works with arbitrary named resources.
    """

    amounts: Dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for name, amount in self.amounts.items():
            if amount < 0:
                raise ArchitectureError(
                    f"resource {name!r} has negative amount {amount}"
                )

    def get(self, name: str, default: int = 0) -> int:
        """Amount of resource *name*, or *default* if not present."""
        return self.amounts.get(name, default)

    def __getitem__(self, name: str) -> int:
        return self.amounts.get(name, 0)

    def __add__(self, other: "ResourceVector") -> "ResourceVector":
        names = set(self.amounts) | set(other.amounts)
        return ResourceVector({n: self[n] + other[n] for n in names})

    def __mul__(self, factor: int) -> "ResourceVector":
        return ResourceVector({n: a * factor for n, a in self.amounts.items()})

    __rmul__ = __mul__

    def fits_within(self, capacity: "ResourceVector") -> bool:
        """Whether every resource amount is within *capacity*."""
        return all(self[name] <= capacity[name] for name in self.amounts)

    def dominant_utilization(self, capacity: "ResourceVector") -> float:
        """Largest per-resource utilisation fraction against *capacity*.

        Returns ``inf`` when a resource is used that *capacity* does not
        provide at all.
        """
        worst = 0.0
        for name, amount in self.amounts.items():
            if amount == 0:
                continue
            available = capacity[name]
            if available == 0:
                return float("inf")
            worst = max(worst, amount / available)
        return worst

    def names(self):
        """Resource names present in this vector."""
        return tuple(sorted(self.amounts))

    def as_dict(self) -> Dict[str, int]:
        """A plain-dict copy of the resource amounts."""
        return dict(self.amounts)


#: Conventional name of the paper's single resource type.
CLB = "clb"


def clbs(count: int) -> ResourceVector:
    """Convenience constructor for a CLB-only resource vector."""
    return ResourceVector({CLB: count})


@dataclass(frozen=True)
class FpgaDevice:
    """A single SRAM-based FPGA that can be run-time reconfigured.

    Parameters
    ----------
    name:
        Human-readable device name, e.g. ``"XC4044"``.
    family:
        Device family used by the component library to pick characterisation
        data, e.g. ``"xc4000"`` or ``"xc6200"``.
    capacity:
        Resource capacity :class:`ResourceVector`; the paper's ``R_max``.
    reconfiguration_time:
        Full-device reconfiguration time ``CT`` in seconds.
    min_clock_period / max_clock_period:
        The achievable clock-period range in seconds.  Designs requesting a
        clock outside this range are rejected by the estimator.
    """

    name: str
    family: str
    capacity: ResourceVector
    reconfiguration_time: float
    min_clock_period: float = ns(10)
    max_clock_period: float = ns(1000)

    def __post_init__(self) -> None:
        if self.reconfiguration_time < 0:
            raise ArchitectureError(
                f"reconfiguration time must be non-negative, got "
                f"{self.reconfiguration_time}"
            )
        if self.min_clock_period <= 0 or self.max_clock_period <= 0:
            raise ArchitectureError("clock periods must be positive")
        if self.min_clock_period > self.max_clock_period:
            raise ArchitectureError(
                "min_clock_period must not exceed max_clock_period"
            )
        if not self.capacity.amounts:
            raise ArchitectureError(f"device {self.name!r} declares no resources")

    @property
    def clb_count(self) -> int:
        """CLB capacity (0 when the device uses a different resource type)."""
        return self.capacity[CLB]

    def supports_clock_period(self, period: float) -> bool:
        """Whether a clock period (seconds) is achievable on this device."""
        return self.min_clock_period <= period <= self.max_clock_period

    def with_reconfiguration_time(self, reconfiguration_time: float) -> "FpgaDevice":
        """A copy of this device with a different reconfiguration time.

        Used by the reconfiguration-overhead sweeps (e.g. the paper's XC6000
        conjecture, which re-evaluates the same design at CT = 500 us).
        """
        return FpgaDevice(
            name=self.name,
            family=self.family,
            capacity=self.capacity,
            reconfiguration_time=reconfiguration_time,
            min_clock_period=self.min_clock_period,
            max_clock_period=self.max_clock_period,
        )

    def describe(self) -> str:
        """One-line human readable summary."""
        resources = ", ".join(
            f"{amount} {name}" for name, amount in sorted(self.capacity.amounts.items())
        )
        return (
            f"{self.name} ({self.family}): {resources}, "
            f"CT={self.reconfiguration_time * 1e3:.3f} ms"
        )


def make_device(
    name: str,
    clb_capacity: int,
    reconfiguration_time: float,
    family: str = "generic",
    min_clock_period: float = ns(10),
    max_clock_period: float = ns(1000),
    extra_resources: Optional[Dict[str, int]] = None,
) -> FpgaDevice:
    """Build an :class:`FpgaDevice` from scalar parameters.

    This is the most common entry point for users defining a custom device:

    >>> dev = make_device("MyFPGA", clb_capacity=1200, reconfiguration_time=0.05)
    >>> dev.clb_count
    1200
    """
    amounts = {CLB: clb_capacity}
    if extra_resources:
        amounts.update(extra_resources)
    return FpgaDevice(
        name=name,
        family=family,
        capacity=ResourceVector(amounts),
        reconfiguration_time=reconfiguration_time,
        min_clock_period=min_clock_period,
        max_clock_period=max_clock_period,
    )
