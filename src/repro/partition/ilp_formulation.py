"""The ILP formulation of temporal partitioning (paper Section 2.1, Eqs. 1-8).

For a fixed partition bound ``N`` the model contains:

* binary assignment variables ``y[t][p]`` (Eq. 1 domain),
* binary boundary-liveness variables ``w[p][(t1,t2)]`` for every edge and
  every boundary ``p`` (the data of edge ``t1 -> t2`` occupies memory across
  the boundary between partitions ``p`` and ``p+1``),
* continuous per-partition delay variables ``d[p]``,

and the constraints:

* **uniqueness** (Eq. 1): every task is placed in exactly one partition;
* **temporal order** (Eq. 2): a producer may not be placed after a consumer;
* **memory** (Eq. 3): the data crossing each boundary fits in ``M_max``;
* **linearised liveness linking** (Eqs. 4-5): ``w`` is forced to 1 whenever a
  dependent pair straddles the boundary;
* **resource** (Eq. 6): each partition fits in ``R_max``;
* **path delay** (Eq. 7): for every root-to-leaf path and every partition,
  the summed delay of the path's tasks mapped to that partition is at most
  ``d[p]``;
* **objective** (Eq. 8): minimise ``N*CT + sum_p d[p]``.

Two formulation choices are configurable (and benchmarked as ablations):

* the temporal-order constraints can be written exactly as Eq. 2
  (``order_form="paper"``) or aggregated into one position constraint per
  edge (``order_form="position"``);
* the liveness linking can use the aggregated one-constraint form
  (``linkage_form="aggregated"``, default) or the pairwise linearisation of
  the products in Eqs. 4-5 (``linkage_form="pairwise"``);
* the delay constraints can enumerate paths per the paper
  (``delay_form="path"``) or use a big-M chain-prefix formulation
  (``delay_form="chain"``) that avoids path enumeration for graphs with
  exponentially many paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from ..errors import PartitioningError
from ..ilp.expr import LinExpr, Variable, linear_sum
from ..ilp.linearize import ordered_position_chain
from ..ilp.model import Model
from ..taskgraph.analysis import (
    DEFAULT_PATH_LIMIT,
    count_root_to_leaf_paths,
    interchangeable_task_classes,
    max_tasks_per_partition,
)
from ..taskgraph.graph import TaskGraph
from ..taskgraph.kpaths import root_to_leaf_paths_by_delay
from .spec import PartitionProblem

#: Time scale used inside the ILP: delays are expressed in nanoseconds rather
#: than seconds so that delay coefficients (hundreds to thousands) are well
#: conditioned against MILP feasibility tolerances (~1e-7).  With delays in
#: seconds, a 1e-7 constraint violation is a 100 ns error — large enough for a
#: solver to "optimise away" real path-delay constraints.
MODEL_TIME_SCALE = 1e9


@dataclass(frozen=True)
class FormulationOptions:
    """Switches controlling how the model is written down."""

    order_form: str = "paper"  # "paper" (Eq. 2) or "position"
    linkage_form: str = "aggregated"  # "aggregated" or "pairwise"
    #: "path" (Eq. 7, fails over the path limit), "chain" (big-M prefix
    #: form), or "auto" (path when the DP-counted path total fits the
    #: limit, chain otherwise — the form the multilevel inner solves use,
    #: since coarse graphs can be arbitrarily reconvergent).
    delay_form: str = "path"
    path_limit: Optional[int] = DEFAULT_PATH_LIMIT
    #: Order the partition positions of interchangeable tasks (see
    #: :func:`repro.taskgraph.analysis.interchangeable_task_classes`) so
    #: permutation-symmetric optima collapse to one representative.  Off by
    #: default: scipy's HiGHS runs its own symmetry detection and the extra
    #: rows can slow it down; the built-in branch-and-bound turns it on.
    symmetry_breaking: bool = False
    #: Add per-partition cardinality cuts ``sum_t y[t,p] <= k`` where ``k``
    #: is :func:`repro.taskgraph.analysis.max_tasks_per_partition`.  The cut
    #: is implied by the resource constraints on integral solutions but
    #: tightens the LP relaxation substantially when tasks are near-uniform
    #: in size (the filter-bank case study drops ~5x in node count).  Off by
    #: default for the same reason as ``symmetry_breaking``: HiGHS derives
    #: its own clique cuts; the built-in branch-and-bound turns it on.
    cardinality_cuts: bool = False

    def __post_init__(self) -> None:
        if self.order_form not in ("paper", "position"):
            raise PartitioningError(f"unknown order_form {self.order_form!r}")
        if self.linkage_form not in ("aggregated", "pairwise"):
            raise PartitioningError(f"unknown linkage_form {self.linkage_form!r}")
        if self.delay_form not in ("path", "chain", "auto"):
            raise PartitioningError(f"unknown delay_form {self.delay_form!r}")


class TemporalPartitioningFormulation:
    """Builds and holds the ILP model for a fixed partition bound ``N``."""

    def __init__(
        self,
        problem: PartitionProblem,
        partition_bound: int,
        options: Optional[FormulationOptions] = None,
    ) -> None:
        if partition_bound < 1:
            raise PartitioningError("partition bound N must be at least 1")
        self.problem = problem
        self.partition_bound = partition_bound
        self.options = options or FormulationOptions()
        self.model = Model(
            name=f"temporal-partitioning-{problem.graph.name}-N{partition_bound}"
        )
        self.y: Dict[Tuple[str, int], Variable] = {}
        self.w: Dict[Tuple[int, str, str], Variable] = {}
        self.d: Dict[int, Variable] = {}
        #: Interchangeability classes the symmetry-breaking constraints cover
        #: (empty when the option is off or no class has two members).
        self.symmetry_classes: List[List[str]] = []
        self._accumulated: Dict[Tuple[str, int], Variable] = {}
        self._build()

    # ------------------------------------------------------------------
    # Model construction
    # ------------------------------------------------------------------

    def _build(self) -> None:
        graph = self.problem.graph
        n = self.partition_bound
        self._create_variables()
        self._add_uniqueness_constraints()
        self._add_temporal_order_constraints()
        if n > 1:
            self._add_liveness_linking_constraints()
            self._add_memory_constraints()
        self._add_resource_constraints()
        if self._resolved_delay_form() == "path":
            self._add_path_delay_constraints()
        else:
            self._add_chain_delay_constraints()
        if self.options.cardinality_cuts:
            self._add_cardinality_cuts()
        if self.options.symmetry_breaking and n > 1:
            self._add_symmetry_breaking_constraints()
        objective = (
            n * self.problem.reconfiguration_time * MODEL_TIME_SCALE
            + linear_sum([self.d[p] for p in range(1, n + 1)])
        )
        self.model.minimize(objective)
        # Unused: keep a reference to the graph for result extraction.
        self._graph = graph

    def _resolved_delay_form(self) -> str:
        """The concrete delay form, resolving ``"auto"`` by path count."""
        if self.options.delay_form != "auto":
            return self.options.delay_form
        limit = self.options.path_limit
        if limit is None:
            return "path"
        count = count_root_to_leaf_paths(self.problem.graph)
        return "path" if count <= limit else "chain"

    def _create_variables(self) -> None:
        graph = self.problem.graph
        n = self.partition_bound
        max_delay = graph.total_delay() * MODEL_TIME_SCALE
        for task_name in graph.task_names():
            for p in range(1, n + 1):
                self.y[(task_name, p)] = self.model.add_binary(f"y[{task_name},{p}]")
        for p in range(1, n):  # boundaries 1..N-1
            for producer, consumer in graph.edges():
                self.w[(p, producer, consumer)] = self.model.add_binary(
                    f"w[{p},{producer},{consumer}]"
                )
        for p in range(1, n + 1):
            self.d[p] = self.model.add_continuous(f"d[{p}]", 0.0, max_delay)

    def _add_uniqueness_constraints(self) -> None:
        """Eq. 1: every task is placed in exactly one partition."""
        n = self.partition_bound
        for task_name in self.problem.graph.task_names():
            terms = [self.y[(task_name, p)] for p in range(1, n + 1)]
            self.model.add_constraint(
                linear_sum(terms) == 1, name=f"unique[{task_name}]"
            )

    def _add_temporal_order_constraints(self) -> None:
        """Eq. 2: a producer may not be placed later than its consumer."""
        n = self.partition_bound
        graph = self.problem.graph
        if self.options.order_form == "paper":
            # For every edge t1 -> t2 and every partition p2 < N:
            #   y[t2,p2] + sum_{p1 > p2} y[t1,p1] <= 1
            for producer, consumer in graph.edges():
                for p2 in range(1, n):
                    later = [self.y[(producer, p1)] for p1 in range(p2 + 1, n + 1)]
                    if not later:
                        continue
                    self.model.add_constraint(
                        self.y[(consumer, p2)] + linear_sum(later) <= 1,
                        name=f"order[{producer}->{consumer},{p2}]",
                    )
        else:
            # Aggregated "position" form: sum_p p*y[t1,p] <= sum_p p*y[t2,p].
            for producer, consumer in graph.edges():
                producer_pos = linear_sum(
                    [p * self.y[(producer, p)] for p in range(1, n + 1)]
                )
                consumer_pos = linear_sum(
                    [p * self.y[(consumer, p)] for p in range(1, n + 1)]
                )
                self.model.add_constraint(
                    producer_pos <= consumer_pos,
                    name=f"order[{producer}->{consumer}]",
                )

    def _add_liveness_linking_constraints(self) -> None:
        """Eqs. 4-5 (linearised): force ``w`` to 1 when an edge straddles a boundary."""
        n = self.partition_bound
        graph = self.problem.graph
        for producer, consumer in graph.edges():
            for p in range(1, n):
                w_var = self.w[(p, producer, consumer)]
                if self.options.linkage_form == "aggregated":
                    before = [self.y[(producer, p1)] for p1 in range(1, p + 1)]
                    after = [self.y[(consumer, p2)] for p2 in range(p + 1, n + 1)]
                    self.model.add_constraint(
                        w_var >= linear_sum(before) + linear_sum(after) - 1,
                        name=f"link[{p},{producer}->{consumer}]",
                    )
                else:
                    for p1 in range(1, p + 1):
                        for p2 in range(p + 1, n + 1):
                            self.model.add_constraint(
                                w_var
                                >= self.y[(producer, p1)] + self.y[(consumer, p2)] - 1,
                                name=f"link[{p},{producer}@{p1}->{consumer}@{p2}]",
                            )

    def _add_memory_constraints(self) -> None:
        """Eq. 3: the data stored across each boundary fits in ``M_max``."""
        n = self.partition_bound
        graph = self.problem.graph
        memory = self.problem.memory_words
        for p in range(1, n):
            terms: List[LinExpr] = []
            for producer, consumer in graph.edges():
                words = graph.edge_words(producer, consumer)
                if words:
                    terms.append(words * self.w[(p, producer, consumer)])
            if terms:
                self.model.add_constraint(
                    linear_sum(terms) <= memory, name=f"memory[{p}]"
                )

    def _add_resource_constraints(self) -> None:
        """Eq. 6: each partition's resource usage fits in ``R_max``."""
        n = self.partition_bound
        graph = self.problem.graph
        capacity = self.problem.resource_capacity
        resource_names = set()
        for task in graph.tasks():
            resource_names.update(task.resources.names())
        for resource_name in sorted(resource_names):
            limit = capacity[resource_name]
            for p in range(1, n + 1):
                terms = []
                for task in graph.tasks():
                    amount = task.resources[resource_name]
                    if amount:
                        terms.append(amount * self.y[(task.name, p)])
                if terms:
                    self.model.add_constraint(
                        linear_sum(terms) <= limit,
                        name=f"resource[{resource_name},{p}]",
                    )

    def _add_path_delay_constraints(self) -> None:
        """Eq. 7: per root-to-leaf path and partition, the in-partition delay
        along the path is at most ``d[p]``.

        The path set is generated nonenumeratively (sorted by path delay,
        most critical first) so that over-limit graphs are rejected in
        ``O(V + E)`` time and the solver sees the binding constraints at
        the top of the constraint matrix.  Exactness needs the *complete*
        path set — a globally short path can still own the longest
        in-partition segment — so no path is dropped.
        """
        n = self.partition_bound
        graph = self.problem.graph
        paths = root_to_leaf_paths_by_delay(graph, limit=self.options.path_limit)
        for path_index, path in enumerate(paths):
            for p in range(1, n + 1):
                terms = [
                    graph.task(task_name).delay * MODEL_TIME_SCALE * self.y[(task_name, p)]
                    for task_name in path
                ]
                self.model.add_constraint(
                    linear_sum(terms) <= self.d[p],
                    name=f"pathdelay[{path_index},{p}]",
                )

    def _add_chain_delay_constraints(self) -> None:
        """Big-M prefix formulation equivalent to Eq. 7 without path enumeration.

        ``a[t,p]`` is (an upper bound on) the longest chain of same-partition
        tasks ending at ``t`` when ``t`` is in partition ``p``:

        * ``a[t,p] >= D(t) * y[t,p]``
        * ``a[t,p] >= a[t',p] + D(t) - M * (1 - y[t,p])`` for every edge
          ``t' -> t``
        * ``d[p] >= a[t,p]``
        """
        n = self.partition_bound
        graph = self.problem.graph
        big_m = graph.total_delay() * MODEL_TIME_SCALE
        accumulated: Dict[Tuple[str, int], Variable] = {}
        for task_name in graph.task_names():
            for p in range(1, n + 1):
                accumulated[(task_name, p)] = self.model.add_continuous(
                    f"a[{task_name},{p}]", 0.0, big_m
                )
        self._accumulated = accumulated
        for task_name in graph.task_names():
            delay = graph.task(task_name).delay * MODEL_TIME_SCALE
            for p in range(1, n + 1):
                a_var = accumulated[(task_name, p)]
                self.model.add_constraint(
                    a_var >= delay * self.y[(task_name, p)],
                    name=f"chain_base[{task_name},{p}]",
                )
                for pred in graph.predecessors(task_name):
                    self.model.add_constraint(
                        a_var
                        >= accumulated[(pred, p)]
                        + delay
                        - big_m * (1 - self.y[(task_name, p)]),
                        name=f"chain_step[{pred}->{task_name},{p}]",
                    )
                self.model.add_constraint(
                    self.d[p] >= a_var, name=f"chain_bound[{task_name},{p}]"
                )

    def _add_cardinality_cuts(self) -> None:
        """Per-partition cardinality cut ``sum_t y[t,p] <= k``.

        ``k`` comes from :func:`max_tasks_per_partition`: if the ``k+1``
        smallest consumers of some resource already overflow the capacity,
        no partition can hold more than ``k`` tasks.  Skipped when the cut
        would be slack even with every task in one partition.
        """
        graph = self.problem.graph
        limit = max_tasks_per_partition(graph, self.problem.resource_capacity)
        if limit >= len(graph):
            return
        for p in range(1, self.partition_bound + 1):
            self.model.add_constraint(
                linear_sum([self.y[(name, p)] for name in graph.task_names()])
                <= limit,
                name=f"card[{p}]",
            )

    def _add_symmetry_breaking_constraints(self) -> None:
        """Order the partition positions of interchangeable tasks.

        For every class of mutually interchangeable tasks (same delay,
        resources, neighbours and data volumes) the members' positions
        ``sum_p p * y[t,p]`` are constrained to be non-decreasing in task-name
        order.  Each symmetric family of solutions keeps exactly its sorted
        representative, so the optimal objective is untouched while the
        search tree loses the permutation copies.
        """
        n = self.partition_bound
        self.symmetry_classes = interchangeable_task_classes(self.problem.graph)
        for class_index, members in enumerate(self.symmetry_classes):
            positions = [
                linear_sum([p * self.y[(name, p)] for p in range(1, n + 1)])
                for name in members
            ]
            ordered_position_chain(
                self.model, positions, name_prefix=f"sym[{class_index}]"
            )

    # ------------------------------------------------------------------
    # Warm starts
    # ------------------------------------------------------------------

    def incumbent_from_assignment(
        self, assignment: Mapping[str, int]
    ) -> Dict[Variable, float]:
        """Map a feasible task->partition assignment onto the model variables.

        Produces the full ``(y, w, d)`` (and, for the chain delay form,
        ``a``) point the assignment induces, suitable as a warm-start
        incumbent for the branch-and-bound backend.  When symmetry breaking
        is active the assignment is canonicalised first so the point
        satisfies the ordering constraints.

        The assignment must use partitions ``1..N`` for this formulation's
        bound ``N``; a :class:`PartitioningError` is raised otherwise.
        Feasibility against the remaining constraints is *not* checked here
        — the solver validates the point and silently drops an infeasible
        incumbent.
        """
        graph = self.problem.graph
        n = self.partition_bound
        if self.options.symmetry_breaking:
            assignment = canonical_assignment(graph, assignment)
        for task_name, partition in assignment.items():
            if not 1 <= partition <= n:
                raise PartitioningError(
                    f"incumbent places {task_name!r} in partition {partition}, "
                    f"outside this formulation's bound 1..{n}"
                )
        values: Dict[Variable, float] = {}
        for (task_name, p), variable in self.y.items():
            values[variable] = 1.0 if assignment[task_name] == p else 0.0
        for (p, producer, consumer), variable in self.w.items():
            straddles = assignment[producer] <= p < assignment[consumer]
            values[variable] = 1.0 if straddles else 0.0
        chain_delays = _in_partition_chain_delays(graph, assignment)
        for p in range(1, n + 1):
            members = [name for name, where in assignment.items() if where == p]
            partition_delay = max(
                (chain_delays[name] for name in members), default=0.0
            )
            values[self.d[p]] = partition_delay * MODEL_TIME_SCALE
        for (task_name, p), variable in self._accumulated.items():
            if assignment[task_name] == p:
                values[variable] = chain_delays[task_name] * MODEL_TIME_SCALE
            else:
                values[variable] = 0.0
        return values

    # ------------------------------------------------------------------
    # Solution extraction
    # ------------------------------------------------------------------

    def extract_assignment(self, solution) -> Dict[str, int]:
        """Read the task -> partition assignment out of a solver solution."""
        assignment: Dict[str, int] = {}
        for task_name in self.problem.graph.task_names():
            chosen = None
            for p in range(1, self.partition_bound + 1):
                if solution.binary_value(self.y[(task_name, p)]):
                    if chosen is not None:
                        raise PartitioningError(
                            f"task {task_name!r} assigned to two partitions "
                            f"({chosen} and {p}) — solver returned an invalid point"
                        )
                    chosen = p
            if chosen is None:
                raise PartitioningError(
                    f"task {task_name!r} is not assigned to any partition"
                )
            assignment[task_name] = chosen
        return assignment

    def statistics(self) -> Dict[str, int]:
        """Model-size statistics (variables/constraints) for reporting."""
        return self.model.statistics()


def _in_partition_chain_delays(
    graph: TaskGraph, assignment: Mapping[str, int]
) -> Dict[str, float]:
    """Longest same-partition dependency chain ending at each task (seconds).

    The per-partition maximum of these is exactly the Eq. 7 delay ``d_p`` the
    result layer recomputes (:meth:`TemporalPartitioning._partition_delay`).
    """
    longest: Dict[str, float] = {}
    for name in graph.topological_order():
        partition = assignment[name]
        best_pred = 0.0
        for pred in graph.predecessors(name):
            if assignment[pred] == partition:
                best_pred = max(best_pred, longest[pred])
        longest[name] = best_pred + graph.task(name).delay
    return longest


def canonical_assignment(
    graph: TaskGraph, assignment: Mapping[str, int]
) -> Dict[str, int]:
    """Permute interchangeable tasks into the symmetry-broken representative.

    Within every interchangeability class the sorted member names receive the
    class's partition indices in ascending order.  Because class members are
    mutually interchangeable, the result is feasible exactly when the input
    is and has the identical objective — it is the representative the
    symmetry-breaking constraints keep.
    """
    canonical = dict(assignment)
    for members in interchangeable_task_classes(graph):
        partitions = sorted(canonical[name] for name in members)
        for name, partition in zip(members, partitions):
            canonical[name] = partition
    return canonical
