"""Multilevel clustering pre-partitioner for huge task graphs.

The flat partitioners see every task: the ILP's variable count and the
heuristics' bookkeeping both grow with the task count, so 10k-100k-node
graphs are out of reach.  The classic answer — METIS-style multilevel
partitioning, restricted to *acyclic* clusterings because temporal
partitions are ordered — is to

1. **coarsen**: repeatedly merge pairs of tasks into clusters until the
   graph is small, choosing merges by timing criticality (from the k-paths
   up/down tables) so the chains that determine partition delays survive
   coarsening, and capping every cluster at a fraction of the device
   capacity so the coarse problem stays packable;
2. **partition** the coarse graph with any registered inner partitioner
   (portfolio by default — the accelerated solver stack is the inner
   engine, exactly as on small graphs);
3. **uncoarsen**: expand every cluster into its member tasks (all members
   inherit the cluster's partition) and run a bounded greedy refinement
   pass that shortens the longest partition-internal chain when a legal
   move exists.

Acyclicity is the load-bearing invariant.  A merge pass contracts a set of
disjoint cluster pairs, each safe by one of two rules:

* **serial**: an edge ``u -> v`` with ``outdeg(u) == 1`` or
  ``indeg(v) == 1`` — any alternate ``u`` ⇝ ``v`` path would have to leave
  ``u`` through (or enter ``v`` from) the contracted edge itself, so none
  exists, and no coarse cycle can traverse the merged cluster backwards;
* **sibling**: two tasks with the same ASAP level — levels strictly
  increase along every path, so equal-level tasks are independent.

Contracting any set of such pairs simultaneously keeps the graph acyclic:
a coarse cycle would have to alternate original edges (ASAP level strictly
increases) and within-cluster hops (level equal for siblings; serial
clusters can only be crossed through their contracted edge, level up
again), so the level would strictly increase around the cycle.  Each
pass's topological fold doubles as a cycle check regardless, and the
final coarse graph is validated once when it is materialised.

Coarsening runs on plain adjacency dicts, not :class:`TaskGraph`
instances: ``TaskGraph.add_edge`` re-checks acyclicity per edge, which is
``O(V + E)`` *per edge* and made per-pass graph reconstruction the
dominant cost on 10k+ node graphs.  Only the final coarse level (at most
``max_coarse_tasks`` clusters) becomes a real :class:`TaskGraph`.

Because clusters are convex, a coarse-feasible partitioning uncoarsens to
a valid flat one with *exactly* the same partition resources and boundary
words (intra-cluster edges never cross a boundary); only the delays are
re-measured on the real graph.  The scheme is incomplete — an original
problem can be feasible while the coarse one is not — which the portfolio
/ verification layers treat like any other heuristic dead end.

Determinism: merges are ordered by (criticality, name), every tie-break is
name-based, the inner engines are themselves deterministic, and no
wall-clock value feeds a decision, so the same problem always produces a
byte-identical assignment.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..arch.device import ResourceVector
from ..errors import CycleError, PartitioningError
from ..taskgraph.graph import TaskGraph
from ..taskgraph.task import Task, TaskCost
from ..ilp.solver import DEFAULT_BACKEND
from .anneal_partitioner import AnnealTemporalPartitioner
from .greedy_partitioner import LevelClusteringPartitioner
from .ilp_formulation import FormulationOptions
from .ilp_partitioner import IlpTemporalPartitioner
from .list_partitioner import ListTemporalPartitioner
from .portfolio import PortfolioPartitioner
from .result import TemporalPartitioning
from .spec import PartitionProblem
from .validate import validate_partitioning

#: Inner engines the multilevel scheme can drive on the coarse graph.
MULTILEVEL_INNER_CHOICES = ("portfolio", "ilp", "list", "level", "anneal")

#: Inner engine used when none is named (``"multilevel"`` without a suffix).
DEFAULT_MULTILEVEL_INNER = "portfolio"


def multilevel_inner(partitioner: str) -> Optional[str]:
    """The inner engine named by a ``multilevel[:inner]`` partitioner string.

    Returns ``None`` when *partitioner* is not a multilevel name at all,
    the default inner for the bare ``"multilevel"``, and raises
    :class:`PartitioningError` for an unknown ``multilevel:<inner>`` suffix
    — so callers validate the full spelling with one call.
    """
    if partitioner == "multilevel":
        return DEFAULT_MULTILEVEL_INNER
    if partitioner.startswith("multilevel:"):
        inner = partitioner.split(":", 1)[1]
        if inner not in MULTILEVEL_INNER_CHOICES:
            raise PartitioningError(
                f"unknown multilevel inner partitioner {inner!r}; "
                f"choose from {MULTILEVEL_INNER_CHOICES}"
            )
        return inner
    return None


def _topological_order(
    succ: Dict[str, List[str]], pred: Dict[str, List[str]]
) -> List[str]:
    """Kahn's algorithm over plain adjacency dicts; raises on a cycle."""
    indegree = {name: len(pred[name]) for name in pred}
    ready = [name for name in pred if not indegree[name]]
    order: List[str] = []
    while ready:
        name = ready.pop()
        order.append(name)
        for successor in succ[name]:
            indegree[successor] -= 1
            if not indegree[successor]:
                ready.append(successor)
    if len(order) != len(pred):
        raise CycleError("coarse graph contains a cycle")
    return order


def _fits(a: Dict[str, int], b: Dict[str, int], cap: Dict[str, int]) -> bool:
    """Whether the summed resource dicts fit the per-cluster cap.

    Same semantics as ``(ResourceVector(a) + ResourceVector(b))
    .fits_within(ResourceVector(cap))`` without the object churn.
    """
    for name in a.keys() | b.keys():
        if a.get(name, 0) + b.get(name, 0) > cap.get(name, 0):
            return False
    return True


@dataclass
class MultilevelReport:
    """Diagnostics of one multilevel run."""

    #: Inner engine name (``"portfolio"``, ``"ilp"``, ...).
    inner: str = ""
    #: Task count per level, original graph first, coarsest last.
    level_sizes: List[int] = field(default_factory=list)
    #: Whether coarsening stalled above the target size (no safe merge left).
    stalled: bool = False
    #: Number of refinement moves actually applied.
    refinement_moves: int = 0
    #: The inner partitioner's own report, when it exposes one.
    inner_report: Optional[object] = None
    coarsen_time: float = 0.0
    inner_time: float = 0.0
    refine_time: float = 0.0
    total_time: float = 0.0

    @property
    def coarse_tasks(self) -> int:
        """Task count of the coarsest level the inner engine solved."""
        return self.level_sizes[-1] if self.level_sizes else 0

    @property
    def attempted_bounds(self) -> List[int]:
        """Partition bounds the inner exact solver tried (may be empty)."""
        if self.inner_report is None:
            return []
        return list(getattr(self.inner_report, "attempted_bounds", []) or [])


class MultilevelPartitioner:
    """Coarsen -> inner-partition -> uncoarsen+refine temporal partitioner.

    Parameters
    ----------
    inner:
        Inner engine run on the coarse graph (one of
        :data:`MULTILEVEL_INNER_CHOICES`).
    ilp_backend / seed / time_limit:
        Forwarded to the inner engine where applicable (``seed`` pins the
        annealer, ``time_limit`` the exact solver).
    max_coarse_tasks:
        Coarsening stops once the graph is at most this many tasks (or when
        no safe merge remains; the inner engine then runs on the stalled
        graph as-is).
    cluster_cap_fraction:
        No cluster may exceed this fraction of any capacity resource, so
        the coarse problem keeps enough packing freedom to stay feasible.
    max_refine_moves:
        Upper bound on accepted uncoarsening refinement moves (each move
        re-validates the full partitioning, so this bounds the refinement
        cost on huge graphs).
    """

    def __init__(
        self,
        inner: str = DEFAULT_MULTILEVEL_INNER,
        *,
        ilp_backend: Optional[str] = None,
        seed: int = 0,
        time_limit: Optional[float] = None,
        max_coarse_tasks: int = 48,
        cluster_cap_fraction: float = 0.5,
        max_refine_moves: int = 4,
    ) -> None:
        if inner not in MULTILEVEL_INNER_CHOICES:
            raise PartitioningError(
                f"unknown multilevel inner partitioner {inner!r}; "
                f"choose from {MULTILEVEL_INNER_CHOICES}"
            )
        if max_coarse_tasks < 1:
            raise PartitioningError("max_coarse_tasks must be at least 1")
        if not 0.0 < cluster_cap_fraction <= 1.0:
            raise PartitioningError("cluster_cap_fraction must be in (0, 1]")
        if max_refine_moves < 0:
            raise PartitioningError("max_refine_moves must be non-negative")
        self.inner = inner
        self.ilp_backend = ilp_backend
        self.seed = seed
        self.time_limit = time_limit
        self.max_coarse_tasks = max_coarse_tasks
        self.cluster_cap_fraction = cluster_cap_fraction
        self.max_refine_moves = max_refine_moves
        self.last_report: Optional[MultilevelReport] = None

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------

    def partition(self, problem: PartitionProblem) -> TemporalPartitioning:
        """Solve *problem* through the coarsen/partition/refine cycle."""
        report = MultilevelReport(inner=self.inner)
        start = time.perf_counter()

        cluster_of, coarse = self._coarsen(problem, report)
        report.coarsen_time = time.perf_counter() - start

        coarse_problem = PartitionProblem(
            graph=coarse,
            resource_capacity=problem.resource_capacity,
            memory_words=problem.memory_words,
            reconfiguration_time=problem.reconfiguration_time,
            max_partitions=problem.max_partitions,
        )
        inner_engine = self._build_inner()
        inner_start = time.perf_counter()
        try:
            coarse_result = inner_engine.partition(coarse_problem)
        except PartitioningError as exc:
            report.inner_time = time.perf_counter() - inner_start
            report.total_time = time.perf_counter() - start
            self.last_report = report
            raise PartitioningError(
                f"multilevel inner {self.inner!r} found no feasible "
                f"partitioning of the {len(coarse)}-cluster coarse graph "
                f"(clustering is incomplete; a finer method may succeed): {exc}"
            ) from exc
        report.inner_time = time.perf_counter() - inner_start
        report.inner_report = getattr(inner_engine, "last_report", None)

        assignment = {
            name: coarse_result.assignment[cluster_of[name]]
            for name in problem.graph.task_names()
        }
        result = TemporalPartitioning(
            graph=problem.graph,
            assignment=assignment,
            partition_count=coarse_result.partition_count,
            reconfiguration_time=problem.reconfiguration_time,
            method=self._method_label(report),
            solver_backend=coarse_result.solver_backend,
        )

        refine_start = time.perf_counter()
        result = self._refine(problem, result, report)
        report.refine_time = time.perf_counter() - refine_start
        report.total_time = time.perf_counter() - start
        self.last_report = report
        return result

    def _method_label(self, report: MultilevelReport) -> str:
        levels = max(len(report.level_sizes) - 1, 0)
        return f"multilevel[{self.inner},{levels}lv,{report.coarse_tasks}t]"

    def _build_inner(self):
        # Coarse graphs can be arbitrarily reconvergent, so the exact inner
        # solves use the "auto" delay form: Eq. 7 paths when they fit the
        # limit, the chain-prefix formulation otherwise.  The symmetry /
        # cut switches keep their backend-dependent defaults.
        backend = self.ilp_backend or DEFAULT_BACKEND
        builtin = backend == "branch-and-bound"
        ilp_options = FormulationOptions(
            delay_form="auto", symmetry_breaking=builtin, cardinality_cuts=builtin
        )
        if self.inner == "ilp":
            kwargs = {} if self.ilp_backend is None else {"backend": self.ilp_backend}
            return IlpTemporalPartitioner(
                time_limit=self.time_limit, options=ilp_options, **kwargs
            )
        if self.inner == "list":
            return ListTemporalPartitioner()
        if self.inner == "level":
            return LevelClusteringPartitioner()
        if self.inner == "anneal":
            return AnnealTemporalPartitioner(seed=self.seed)
        return PortfolioPartitioner(
            ilp_backend=self.ilp_backend,
            anneal_seed=self.seed,
            ilp_options=ilp_options,
        )

    # ------------------------------------------------------------------
    # Coarsening
    # ------------------------------------------------------------------

    def _coarsen(
        self, problem: PartitionProblem, report: MultilevelReport
    ) -> Tuple[Dict[str, str], TaskGraph]:
        """Merge tasks level by level until the graph is small enough.

        Returns the original-task -> cluster-name mapping and the coarsest
        graph.  Cluster names are the lexicographically smallest member, so
        they stay valid task names and never collide.  The merge loop works
        on plain dicts (see the module docstring); cluster delay is
        ``d(u) + d(v)`` for a serial merge (an upper bound on the merged
        internal chain) and ``max(d(u), d(v))`` for siblings (exact:
        sibling members share no edge).  The estimate only steers the
        coarse solve — final delays are re-measured on the real graph.
        """
        graph = problem.graph
        capacity = problem.resource_capacity
        cap = {
            name: max(int(capacity[name] * self.cluster_cap_fraction), 1)
            for name in capacity.names()
        }
        res: Dict[str, Dict[str, int]] = {}
        delay: Dict[str, float] = {}
        env_in: Dict[str, int] = {}
        env_out: Dict[str, int] = {}
        size: Dict[str, int] = {}
        for name in graph.task_names():
            task = graph.task(name)
            res[name] = dict(task.resources.amounts)
            delay[name] = task.delay
            env_in[name] = graph.env_input_words(name)
            env_out[name] = graph.env_output_words(name)
            size[name] = 1
        words: Dict[Tuple[str, str], int] = {
            (u, v): graph.edge_words(u, v) for u, v in graph.edges()
        }
        succ: Dict[str, List[str]] = {name: [] for name in res}
        pred: Dict[str, List[str]] = {name: [] for name in res}
        for u, v in words:
            succ[u].append(v)
            pred[v].append(u)
        members: Dict[str, List[str]] = {name: [name] for name in res}

        report.level_sizes.append(len(res))
        while len(res) > self.max_coarse_tasks:
            pairs = self._merge_pass(res, delay, succ, pred, cap)
            if not pairs:
                report.stalled = True
                break
            relabel: Dict[str, str] = {}
            for u, v, kind in pairs:
                winner, loser = (u, v) if u < v else (v, u)
                relabel[u] = winner
                relabel[v] = winner
                members[winner] = sorted(members[u] + members[v])
                del members[loser]
                merged = dict(res[u])
                for rname, amount in res[v].items():
                    merged[rname] = merged.get(rname, 0) + amount
                merged_delay = (
                    delay[u] + delay[v]
                    if kind == "serial"
                    else max(delay[u], delay[v])
                )
                merged_env = (env_in[u] + env_in[v], env_out[u] + env_out[v])
                merged_size = size[u] + size[v]
                res[winner] = merged
                delay[winner] = merged_delay
                env_in[winner], env_out[winner] = merged_env
                size[winner] = merged_size
                del res[loser], delay[loser], env_in[loser]
                del env_out[loser], size[loser]
            new_words: Dict[Tuple[str, str], int] = {}
            for (u, v), volume in words.items():
                producer = relabel.get(u, u)
                consumer = relabel.get(v, v)
                if producer == consumer:
                    continue
                key = (producer, consumer)
                new_words[key] = new_words.get(key, 0) + volume
            words = new_words
            succ = {name: [] for name in res}
            pred = {name: [] for name in res}
            for u, v in words:
                succ[u].append(v)
                pred[v].append(u)
            report.level_sizes.append(len(res))

        cluster_of = {
            name: cluster
            for cluster, names in members.items()
            for name in names
        }
        if len(res) == len(graph):
            return cluster_of, graph
        coarse = self._materialise(graph, res, delay, env_in, env_out, size, words)
        return cluster_of, coarse

    def _merge_pass(
        self,
        res: Dict[str, Dict[str, int]],
        delay: Dict[str, float],
        succ: Dict[str, List[str]],
        pred: Dict[str, List[str]],
        cap: Dict[str, int],
    ) -> List[Tuple[str, str, str]]:
        """One maximal set of disjoint safe merges, most critical first.

        Returns ``(u, v, kind)`` triples where ``kind`` is ``"serial"``
        (contracted edge ``u -> v``) or ``"sibling"`` (independent tasks
        on the same ASAP level).  The topological fold below is also the
        per-pass cycle check: it raises if a merge bug ever broke the
        acyclicity invariant.
        """
        order = _topological_order(succ, pred)
        up: Dict[str, float] = {}
        level: Dict[str, int] = {}
        for name in order:
            preds = pred[name]
            if preds:
                up[name] = max(up[p] for p in preds) + delay[name]
                level[name] = max(level[p] for p in preds) + 1
            else:
                up[name] = delay[name]
                level[name] = 0
        down: Dict[str, float] = {}
        for name in reversed(order):
            succs = succ[name]
            down[name] = (max(down[s] for s in succs) if succs else 0.0) + delay[name]

        matched: set = set()
        pairs: List[Tuple[str, str, str]] = []
        # Edge criticality up(u) + down(v): the longest path through the
        # edge, exactly what kpaths.edge_criticalities computes on a graph.
        ranked = sorted(
            ((u, v) for u in succ for v in succ[u]),
            key=lambda edge: (-(up[edge[0]] + down[edge[1]]), edge),
        )
        for u, v in ranked:
            if u in matched or v in matched:
                continue
            if len(succ[u]) != 1 and len(pred[v]) != 1:
                continue
            if not _fits(res[u], res[v], cap):
                continue
            matched.update((u, v))
            pairs.append((u, v, "serial"))

        groups: Dict[int, List[str]] = {}
        for name, asap in level.items():
            if name not in matched:
                groups.setdefault(asap, []).append(name)
        for asap in sorted(groups):
            group = sorted(groups[asap])
            index = 0
            while index + 1 < len(group):
                u, v = group[index], group[index + 1]
                if _fits(res[u], res[v], cap):
                    matched.update((u, v))
                    pairs.append((u, v, "sibling"))
                    index += 2
                else:
                    index += 1
        return pairs

    @staticmethod
    def _materialise(
        graph: TaskGraph,
        res: Dict[str, Dict[str, int]],
        delay: Dict[str, float],
        env_in: Dict[str, int],
        env_out: Dict[str, int],
        size: Dict[str, int],
        words: Dict[Tuple[str, str], int],
    ) -> TaskGraph:
        """Build the final coarse :class:`TaskGraph` from the dict state.

        Unmerged tasks keep their original :class:`Task` object (type and
        metadata intact); clusters become ``"cluster"``-typed tasks whose
        metadata records how many original tasks they absorbed.
        """
        coarse = TaskGraph(f"{graph.name}-coarse")
        for name in sorted(res):
            if size[name] == 1:
                coarse.add_task(
                    graph.task(name),
                    env_input_words=env_in[name],
                    env_output_words=env_out[name],
                )
            else:
                coarse.add_task(
                    Task(
                        name,
                        cost=TaskCost(
                            resources=ResourceVector(res[name]), delay=delay[name]
                        ),
                        task_type="cluster",
                        metadata={"cluster_size": size[name]},
                    ),
                    env_input_words=env_in[name],
                    env_output_words=env_out[name],
                )
        for (producer, consumer), volume in sorted(words.items()):
            coarse.add_edge(producer, consumer, volume)
        coarse.validate()
        return coarse

    # ------------------------------------------------------------------
    # Refinement
    # ------------------------------------------------------------------

    def _refine(
        self,
        problem: PartitionProblem,
        result: TemporalPartitioning,
        report: MultilevelReport,
    ) -> TemporalPartitioning:
        """Bounded greedy boundary refinement on the uncoarsened assignment.

        Each round targets the partition with the largest delay, extracts
        its longest internal chain, and tries to move the chain's first
        task one partition earlier or its last task one partition later.  A
        move is kept only when the full partitioning stays valid and the
        computation latency strictly decreases (the partition count never
        changes, so that is exactly the objective delta).  Stops at the
        first round with no improving move.
        """
        for _ in range(self.max_refine_moves):
            moved = self._improving_move(problem, result)
            if moved is None:
                break
            result = moved
            report.refinement_moves += 1
        return result

    def _improving_move(
        self, problem: PartitionProblem, result: TemporalPartitioning
    ) -> Optional[TemporalPartitioning]:
        delays = result.partition_delays
        worst = max(range(len(delays)), key=lambda i: (delays[i], -i)) + 1
        chain = self._longest_chain(result, worst)
        if not chain:
            return None
        candidates = []
        if worst > 1:
            candidates.append((chain[0], worst - 1))
        if worst < result.partition_count:
            candidates.append((chain[-1], worst + 1))
        for task_name, target in candidates:
            if len(result.tasks_in_partition(worst)) < 2:
                continue
            trial_assignment = dict(result.assignment)
            trial_assignment[task_name] = target
            trial = TemporalPartitioning(
                graph=result.graph,
                assignment=trial_assignment,
                partition_count=result.partition_count,
                reconfiguration_time=result.reconfiguration_time,
                method=result.method,
                solver_backend=result.solver_backend,
            )
            if not validate_partitioning(problem, trial).is_valid:
                continue
            if trial.computation_latency < result.computation_latency:
                return trial
        return None

    @staticmethod
    def _longest_chain(result: TemporalPartitioning, index: int) -> List[str]:
        """The longest dependency chain inside partition *index*."""
        members = set(result.tasks_in_partition(index))
        graph = result.graph
        longest: Dict[str, float] = {}
        best_pred: Dict[str, Optional[str]] = {}
        for name in graph.topological_order():
            if name not in members:
                continue
            delay = graph.task(name).delay
            chosen: Optional[str] = None
            best = 0.0
            for pred in graph.predecessors(name):
                if pred in members and longest[pred] > best:
                    best = longest[pred]
                    chosen = pred
            longest[name] = best + delay
            best_pred[name] = chosen
        if not longest:
            return []
        end = max(longest, key=lambda n: (longest[n], n))
        chain = [end]
        while best_pred[chain[-1]] is not None:
            chain.append(best_pred[chain[-1]])
        chain.reverse()
        return chain
