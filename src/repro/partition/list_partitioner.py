"""List-based temporal partitioner (the heuristic baseline).

This is the "list based temporal partitioner" the paper contrasts against:
tasks are visited in dependency order and greedily packed into the current
temporal partition as long as they fit the resource and memory constraints;
when nothing more fits, the partition is closed and a new one is opened.

The heuristic is latency-blind — it will happily top a partition up with any
task that fits, even when doing so lengthens the partition's critical path —
which is exactly the failure mode the paper's DCT case study illustrates (a
list partitioner puts two T2 tasks into partition 1 because 480 CLBs are
unused there, increasing the overall latency).
"""

from __future__ import annotations

from typing import Dict, List

from ..arch.device import ResourceVector
from ..errors import PartitioningError
from .result import TemporalPartitioning
from .spec import PartitionProblem


class ListTemporalPartitioner:
    """Greedy list-scheduling-style temporal partitioner.

    Parameters
    ----------
    priority:
        Order in which ready tasks are considered within a level of the ready
        list: ``"resource"`` (largest resource first — classic bin-packing
        flavour), ``"delay"`` (longest delay first) or ``"topological"``
        (task-graph insertion order).
    """

    def __init__(self, priority: str = "resource") -> None:
        if priority not in ("resource", "delay", "topological"):
            raise PartitioningError(f"unknown priority rule {priority!r}")
        self.priority = priority

    def partition(self, problem: PartitionProblem) -> TemporalPartitioning:
        """Greedily pack tasks into successive temporal partitions."""
        graph = problem.graph
        capacity = problem.resource_capacity
        order = graph.topological_order()
        topo_rank = {name: rank for rank, name in enumerate(order)}

        remaining_preds: Dict[str, int] = {
            name: len(graph.predecessors(name)) for name in order
        }
        ready: List[str] = [name for name in order if remaining_preds[name] == 0]
        assignment: Dict[str, int] = {}
        assigned_count = 0

        current_partition = 1
        current_usage = ResourceVector({})

        def sort_key(name: str):
            task = graph.task(name)
            if self.priority == "resource":
                return (-task.clbs, topo_rank[name])
            if self.priority == "delay":
                return (-task.delay, topo_rank[name])
            return (topo_rank[name], 0)

        max_partitions = problem.partition_cap() + len(order)
        while assigned_count < len(order):
            ready.sort(key=sort_key)
            placed_any = False
            for name in list(ready):
                task = graph.task(name)
                trial_usage = current_usage + task.resources
                if not trial_usage.fits_within(capacity):
                    continue
                if not self._memory_allows(problem, assignment, name, current_partition):
                    continue
                assignment[name] = current_partition
                current_usage = trial_usage
                assigned_count += 1
                ready.remove(name)
                placed_any = True
                for successor in graph.successors(name):
                    remaining_preds[successor] -= 1
                    if remaining_preds[successor] == 0:
                        ready.append(successor)
            if assigned_count == len(order):
                break
            if not placed_any:
                # Nothing fits in the current partition: close it, open the next.
                if not ready:
                    raise PartitioningError(
                        "list partitioner ran out of ready tasks before assigning "
                        "everything — the task graph is inconsistent"
                    )
                current_partition += 1
                current_usage = ResourceVector({})
                if current_partition > max_partitions:
                    raise PartitioningError(
                        "list partitioner could not place all tasks; a task may "
                        "exceed the device capacity or the memory constraint"
                    )
        partition_count = max(assignment.values())
        return TemporalPartitioning(
            graph=graph,
            assignment=assignment,
            partition_count=partition_count,
            reconfiguration_time=problem.reconfiguration_time,
            method=f"list-{self.priority}",
        )

    # ------------------------------------------------------------------

    def _memory_allows(
        self,
        problem: PartitionProblem,
        assignment: Dict[str, int],
        candidate: str,
        partition: int,
    ) -> bool:
        """Whether placing *candidate* in *partition* keeps every boundary
        (as known so far) within the memory constraint.

        Data of an edge whose consumer is not yet placed is conservatively
        assumed to cross every boundary after the producer's partition.
        """
        graph = problem.graph
        memory = problem.memory_words
        trial = dict(assignment)
        trial[candidate] = partition
        # Evaluate boundaries 1..partition (later boundaries only gain data
        # from tasks we have not reached yet; they are checked when those
        # tasks are placed).
        for boundary in range(1, partition + 1):
            words = 0
            for producer, consumer in graph.edges():
                producer_partition = trial.get(producer)
                if producer_partition is None or producer_partition > boundary:
                    continue
                consumer_partition = trial.get(consumer)
                if consumer_partition is None or consumer_partition > boundary:
                    words += graph.edge_words(producer, consumer)
            if words > memory:
                return False
        return True
