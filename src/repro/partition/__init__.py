"""Temporal partitioning: the paper's core contribution plus baselines.

* :class:`IlpTemporalPartitioner` — the optimal ILP approach of Section 2.1
  (preprocessing lower bound, relax-N loop, Eqs. 1-8);
* :class:`ListTemporalPartitioner` — the latency-blind greedy baseline the
  paper argues against;
* :class:`LevelClusteringPartitioner` — a scheduling/clustering style
  heuristic in the spirit of the prior work the paper cites;
* :class:`AnnealTemporalPartitioner` — seeded simulated-annealing refinement
  of the list solution (latency-aware, still cheap);
* :class:`PortfolioPartitioner` — deterministic ladder over all of the above
  plus an optimality certificate, ILP fallback warm-started from the best
  heuristic;
* :class:`MultilevelPartitioner` — criticality-driven multilevel clustering
  pre-partitioner for 10k-100k-node graphs (coarsen, solve with any inner
  engine, uncoarsen + refine);
* validation and metrics shared by all of them.
"""

from .anneal_partitioner import AnnealTemporalPartitioner
from .greedy_partitioner import LevelClusteringPartitioner
from .hierarchy import (
    MULTILEVEL_INNER_CHOICES,
    MultilevelPartitioner,
    MultilevelReport,
    multilevel_inner,
)
from .ilp_formulation import FormulationOptions, TemporalPartitioningFormulation
from .ilp_partitioner import IlpPartitionerReport, IlpTemporalPartitioner
from .list_partitioner import ListTemporalPartitioner
from .metrics import (
    PartitioningComparison,
    PartitioningMetrics,
    compare_partitionings,
    compute_metrics,
    partition_summary_rows,
)
from .portfolio import PortfolioPartitioner, PortfolioReport
from .result import PartitionInfo, TemporalPartitioning
from .spec import PartitionProblem
from .validate import ValidationReport, assert_valid, validate_partitioning

__all__ = [
    "AnnealTemporalPartitioner",
    "FormulationOptions",
    "IlpPartitionerReport",
    "IlpTemporalPartitioner",
    "LevelClusteringPartitioner",
    "ListTemporalPartitioner",
    "MULTILEVEL_INNER_CHOICES",
    "MultilevelPartitioner",
    "MultilevelReport",
    "PartitionInfo",
    "PartitionProblem",
    "PartitioningComparison",
    "PartitioningMetrics",
    "PortfolioPartitioner",
    "PortfolioReport",
    "TemporalPartitioning",
    "TemporalPartitioningFormulation",
    "ValidationReport",
    "assert_valid",
    "compare_partitionings",
    "compute_metrics",
    "multilevel_inner",
    "partition_summary_rows",
    "validate_partitioning",
]
