"""Level-clustering temporal partitioner (second heuristic baseline).

This baseline mirrors the scheduling/clustering style of earlier temporal
partitioning work the paper cites (GajjalaPurna & Bhatia, Trimberger): tasks
are grouped by ASAP level, levels are concatenated into a partition until the
resource constraint would be violated, then a new partition starts.  Unlike
the list partitioner it never mixes "deep" tasks into an earlier partition, so
it tends to produce more partitions but shorter per-partition critical paths.
"""

from __future__ import annotations

from typing import Dict

from ..arch.device import ResourceVector
from ..errors import PartitioningError
from ..taskgraph.analysis import tasks_by_level
from .result import TemporalPartitioning
from .spec import PartitionProblem


class LevelClusteringPartitioner:
    """Greedy level-by-level clustering into temporal partitions."""

    def __init__(self, split_levels: bool = True) -> None:
        #: Whether a single level that does not fit in an empty partition may
        #: be split across partitions (tasks within a level are independent,
        #: so splitting preserves the temporal-order constraint).
        self.split_levels = split_levels

    def partition(self, problem: PartitionProblem) -> TemporalPartitioning:
        """Cluster ASAP levels into successive temporal partitions."""
        graph = problem.graph
        capacity = problem.resource_capacity
        levels = tasks_by_level(graph)

        assignment: Dict[str, int] = {}
        current_partition = 1
        current_usage = ResourceVector({})

        for level in levels:
            level_usage = ResourceVector({})
            for name in level:
                level_usage = level_usage + graph.task(name).resources

            if (current_usage + level_usage).fits_within(capacity):
                for name in level:
                    assignment[name] = current_partition
                current_usage = current_usage + level_usage
                continue

            # The whole level does not fit on top of the current contents.
            if not self.split_levels:
                if current_usage.amounts:
                    current_partition += 1
                    current_usage = ResourceVector({})
                if not level_usage.fits_within(capacity):
                    raise PartitioningError(
                        "a whole level exceeds the device capacity and "
                        "split_levels is disabled"
                    )
                for name in level:
                    assignment[name] = current_partition
                current_usage = level_usage
                continue

            # Split the level task by task.
            for name in level:
                task = graph.task(name)
                if not task.resources.fits_within(capacity):
                    raise PartitioningError(
                        f"task {name!r} does not fit on the device by itself"
                    )
                trial = current_usage + task.resources
                if not trial.fits_within(capacity):
                    current_partition += 1
                    current_usage = ResourceVector({})
                    trial = task.resources
                assignment[name] = current_partition
                current_usage = trial

        partition_count = max(assignment.values())
        result = TemporalPartitioning(
            graph=graph,
            assignment=assignment,
            partition_count=partition_count,
            reconfiguration_time=problem.reconfiguration_time,
            method="level-clustering",
        )
        self._check_memory(problem, result)
        return result

    @staticmethod
    def _check_memory(problem: PartitionProblem, result: TemporalPartitioning) -> None:
        """Level clustering ignores the memory constraint while packing; verify
        it afterwards and fail loudly rather than return an invalid result."""
        for boundary in range(1, result.partition_count):
            words = result.boundary_words(boundary)
            if words > problem.memory_words:
                raise PartitioningError(
                    f"level clustering produced a partitioning that needs {words} "
                    f"words across boundary {boundary}, exceeding the memory "
                    f"constraint of {problem.memory_words} words"
                )
