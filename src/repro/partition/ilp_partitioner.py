"""The ILP-based temporal partitioner (the paper's tool).

Implements the preprocessing / model-generation / relax-N loop of Section 2.1:

1. compute the resource lower bound on the number of partitions;
2. build the ILP for that bound and solve it;
3. if infeasible, relax the bound by one and repeat;
4. return the optimal assignment for the first feasible bound (optionally
   also exploring a few larger bounds and keeping the best objective).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import PartitioningError
from ..ilp.solution import SolveStatus
from ..ilp.solver import DEFAULT_BACKEND, solve
from .ilp_formulation import FormulationOptions, TemporalPartitioningFormulation
from .list_partitioner import ListTemporalPartitioner
from .result import TemporalPartitioning
from .spec import PartitionProblem


@dataclass
class IlpPartitionerReport:
    """Diagnostics of one partitioning run (which bounds were tried, timings)."""

    attempted_bounds: List[int] = field(default_factory=list)
    infeasible_bounds: List[int] = field(default_factory=list)
    chosen_bound: Optional[int] = None
    model_variables: int = 0
    model_constraints: int = 0
    solve_time: float = 0.0
    total_time: float = 0.0
    backend: str = ""
    #: Whether a heuristic incumbent was handed to the solver for at least
    #: one bound, and the incumbent's partition count if one was found.
    warm_started: bool = False
    incumbent_partitions: Optional[int] = None


class IlpTemporalPartitioner:
    """Optimal (minimum-latency) temporal partitioning via ILP.

    Parameters
    ----------
    backend:
        ILP solver backend name (see :mod:`repro.ilp.solver`).
    options:
        Formulation switches (:class:`FormulationOptions`).
    explore_extra_partitions:
        After the first feasible bound ``N*`` is found, additionally solve
        ``N*+1 .. N*+explore_extra_partitions`` and keep the best objective.
        The paper stops at the first feasible bound (default 0).
    time_limit:
        Optional per-solve wall-clock limit in seconds.
    warm_start:
        Seed each branch-and-bound solve with the list-scheduler solution as
        the incumbent upper bound.  ``None`` (default) enables it exactly for
        the ``"branch-and-bound"`` backend — scipy's ``milp`` has no MIP-start
        hook, so warming it would only cost the heuristic run.
    use_builtin_lp:
        Force the built-in vectorised simplex for branch-and-bound node
        relaxations (no scipy in the loop at all).
    """

    def __init__(
        self,
        backend: str = DEFAULT_BACKEND,
        options: Optional[FormulationOptions] = None,
        explore_extra_partitions: int = 0,
        time_limit: Optional[float] = None,
        warm_start: Optional[bool] = None,
        use_builtin_lp: bool = False,
    ) -> None:
        if explore_extra_partitions < 0:
            raise PartitioningError("explore_extra_partitions must be non-negative")
        self.backend = backend
        if options is None:
            # Symmetry breaking and cardinality cuts help the built-in tree
            # search; HiGHS runs its own symmetry detection and clique cuts
            # and does better without the extra rows.
            builtin = backend == "branch-and-bound"
            options = FormulationOptions(
                symmetry_breaking=builtin, cardinality_cuts=builtin
            )
        self.options = options
        self.explore_extra_partitions = explore_extra_partitions
        self.time_limit = time_limit
        if warm_start is None:
            warm_start = backend == "branch-and-bound"
        self.warm_start = warm_start
        self.use_builtin_lp = use_builtin_lp
        self.last_report: Optional[IlpPartitionerReport] = None

    def partition(self, problem: PartitionProblem) -> TemporalPartitioning:
        """Run the preprocessing + relax-N loop and return the best partitioning."""
        report = IlpPartitionerReport(backend=self.backend)
        start = time.perf_counter()
        lower_bound = problem.minimum_partitions()
        cap = problem.partition_cap()

        incumbent_assignment: Optional[Dict[str, int]] = None
        if self.warm_start:
            incumbent_assignment = self._heuristic_incumbent(problem, report)

        best: Optional[TemporalPartitioning] = None
        bound = lower_bound
        extra_remaining = self.explore_extra_partitions
        while bound <= cap:
            report.attempted_bounds.append(bound)
            candidate = self._solve_for_bound(
                problem, bound, report, incumbent_assignment
            )
            if candidate is None:
                report.infeasible_bounds.append(bound)
                bound += 1
                continue
            if best is None or candidate.total_latency < best.total_latency - 1e-15:
                best = candidate
                report.chosen_bound = candidate.partition_count
            if extra_remaining == 0:
                break
            extra_remaining -= 1
            bound += 1

        report.total_time = time.perf_counter() - start
        self.last_report = report
        if best is None:
            raise PartitioningError(
                f"no feasible temporal partitioning exists for "
                f"{problem.graph.name!r} with up to {cap} partitions "
                "(check the memory constraint and per-task resource usage)"
            )
        return best

    # ------------------------------------------------------------------

    def _heuristic_incumbent(
        self, problem: PartitionProblem, report: IlpPartitionerReport
    ) -> Optional[Dict[str, int]]:
        """The list-scheduler solution, if one exists, as a warm-start seed."""
        try:
            heuristic = ListTemporalPartitioner().partition(problem)
        except PartitioningError:
            return None
        report.incumbent_partitions = heuristic.partition_count
        return dict(heuristic.assignment)

    def _solve_for_bound(
        self,
        problem: PartitionProblem,
        bound: int,
        report: IlpPartitionerReport,
        incumbent_assignment: Optional[Dict[str, int]] = None,
    ) -> Optional[TemporalPartitioning]:
        formulation = TemporalPartitioningFormulation(problem, bound, self.options)
        stats = formulation.statistics()
        report.model_variables = stats["variables"]
        report.model_constraints = stats["constraints"]
        incumbent = None
        if (
            incumbent_assignment is not None
            and max(incumbent_assignment.values()) <= bound
        ):
            incumbent = formulation.incumbent_from_assignment(incumbent_assignment)
            report.warm_started = True
        solution = solve(
            formulation.model,
            backend=self.backend,
            time_limit=self.time_limit,
            use_builtin_lp=self.use_builtin_lp,
            incumbent=incumbent,
        )
        report.solve_time += solution.solve_time
        if solution.status is SolveStatus.INFEASIBLE:
            return None
        if solution.status is not SolveStatus.OPTIMAL:
            raise PartitioningError(
                f"ILP solve for N={bound} ended with status "
                f"{solution.status.value!r} (backend {solution.backend!r})"
            )
        assignment = formulation.extract_assignment(solution)
        assignment, used = _compress_assignment(assignment)
        objective_seconds = None
        if solution.objective is not None:
            # The model works in scaled time units (ns); report seconds.
            from .ilp_formulation import MODEL_TIME_SCALE

            objective_seconds = solution.objective / MODEL_TIME_SCALE
        return TemporalPartitioning(
            graph=problem.graph,
            assignment=assignment,
            partition_count=used,
            reconfiguration_time=problem.reconfiguration_time,
            method="ilp",
            objective_value=objective_seconds,
            solve_time=solution.solve_time,
            solver_backend=solution.backend,
        )


def _compress_assignment(assignment):
    """Renumber partitions 1..N' dropping empty ones (order is preserved).

    The ILP objective charges ``N*CT`` for the *bound* N, so the solver has no
    incentive to avoid leaving a partition empty; dropping empty partitions
    afterwards never hurts latency and never violates a constraint.
    """
    used_indices = sorted(set(assignment.values()))
    renumber = {old: new for new, old in enumerate(used_indices, start=1)}
    return {task: renumber[p] for task, p in assignment.items()}, len(used_indices)
