"""Temporal partitioning results.

A :class:`TemporalPartitioning` records the assignment of tasks to ordered
temporal partitions plus everything downstream consumers need: per-partition
delays, resource usage, the data volumes crossing each boundary, and solver
metadata.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..arch.device import ResourceVector
from ..errors import PartitioningError
from ..taskgraph.graph import TaskGraph


@dataclass
class PartitionInfo:
    """One temporal partition of the result."""

    index: int
    tasks: List[str]
    delay: float
    resources: ResourceVector

    @property
    def task_count(self) -> int:
        """Number of tasks mapped to this partition."""
        return len(self.tasks)

    @property
    def clbs(self) -> int:
        """CLB usage of this partition."""
        from ..arch.device import CLB

        return self.resources[CLB]


@dataclass
class TemporalPartitioning:
    """Assignment of every task to one of ``N`` ordered temporal partitions."""

    graph: TaskGraph
    assignment: Dict[str, int]  # task name -> partition index (1-based)
    partition_count: int
    reconfiguration_time: float
    partitions: List[PartitionInfo] = field(default_factory=list)
    method: str = ""
    objective_value: Optional[float] = None
    solve_time: float = 0.0
    solver_backend: str = ""

    def __post_init__(self) -> None:
        if self.partition_count < 1:
            raise PartitioningError("partition_count must be at least 1")
        task_names = set(self.graph.task_names())
        assigned = set(self.assignment)
        if assigned != task_names:
            missing = sorted(task_names - assigned)
            extra = sorted(assigned - task_names)
            raise PartitioningError(
                f"assignment does not cover the task graph exactly "
                f"(missing={missing}, extra={extra})"
            )
        for name, index in self.assignment.items():
            if not 1 <= index <= self.partition_count:
                raise PartitioningError(
                    f"task {name!r} assigned to partition {index}, outside "
                    f"1..{self.partition_count}"
                )
        if not self.partitions:
            self.partitions = self._build_partition_infos()

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    def _build_partition_infos(self) -> List[PartitionInfo]:
        infos: List[PartitionInfo] = []
        for index in range(1, self.partition_count + 1):
            tasks = self.tasks_in_partition(index)
            delay = self._partition_delay(tasks)
            resources = ResourceVector({})
            for name in tasks:
                resources = resources + self.graph.task(name).resources
            infos.append(
                PartitionInfo(index=index, tasks=tasks, delay=delay, resources=resources)
            )
        return infos

    def _partition_delay(self, tasks: Sequence[str]) -> float:
        """Delay of a partition: the longest dependency chain inside it.

        This recomputes the paper's Eq. 7 semantics from the assignment rather
        than trusting the solver's ``d_p`` values, so every partitioner
        (ILP, list, greedy) is measured with exactly the same rule.
        """
        members = set(tasks)
        longest: Dict[str, float] = {}
        for name in self.graph.topological_order():
            if name not in members:
                continue
            delay = self.graph.task(name).delay
            best_pred = 0.0
            for pred in self.graph.predecessors(name):
                if pred in members:
                    best_pred = max(best_pred, longest[pred])
            longest[name] = best_pred + delay
        return max(longest.values(), default=0.0)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def partition_of(self, task_name: str) -> int:
        """Partition index (1-based) the task is assigned to."""
        try:
            return self.assignment[task_name]
        except KeyError:
            raise PartitioningError(f"task {task_name!r} is not in the assignment")

    def tasks_in_partition(self, index: int) -> List[str]:
        """Tasks assigned to partition *index*, in task-graph insertion order."""
        if not 1 <= index <= self.partition_count:
            raise PartitioningError(
                f"partition index {index} outside 1..{self.partition_count}"
            )
        return [
            name for name in self.graph.task_names() if self.assignment[name] == index
        ]

    def partition(self, index: int) -> PartitionInfo:
        """The :class:`PartitionInfo` for partition *index*."""
        if not 1 <= index <= self.partition_count:
            raise PartitioningError(
                f"partition index {index} outside 1..{self.partition_count}"
            )
        return self.partitions[index - 1]

    @property
    def partition_delays(self) -> List[float]:
        """Per-partition delays ``d_p`` in partition order."""
        return [info.delay for info in self.partitions]

    @property
    def computation_latency(self) -> float:
        """``sum_p d_p`` — latency of one pass excluding reconfiguration."""
        return sum(self.partition_delays)

    @property
    def total_latency(self) -> float:
        """``N*CT + sum_p d_p`` — the paper's optimisation objective."""
        return self.partition_count * self.reconfiguration_time + self.computation_latency

    def boundary_words(self, boundary: int) -> int:
        """Words stored in memory across boundary *boundary* (after partition
        *boundary*, before partition *boundary*+1), i.e. the data of every
        edge whose producer lies in partitions ``1..boundary`` and whose
        consumer lies in partitions ``boundary+1..N``."""
        if not 1 <= boundary <= self.partition_count - 1:
            if self.partition_count == 1:
                return 0
            raise PartitioningError(
                f"boundary {boundary} outside 1..{self.partition_count - 1}"
            )
        total = 0
        for producer, consumer in self.graph.edges():
            if (
                self.assignment[producer] <= boundary
                < self.assignment[consumer]
            ):
                total += self.graph.edge_words(producer, consumer)
        return total

    def max_boundary_words(self) -> int:
        """Largest inter-partition data volume across any boundary."""
        if self.partition_count <= 1:
            return 0
        return max(
            self.boundary_words(boundary)
            for boundary in range(1, self.partition_count)
        )

    def cut_edges(self, boundary: int) -> List[tuple]:
        """Edges whose data is live across boundary *boundary*."""
        return [
            (producer, consumer)
            for producer, consumer in self.graph.edges()
            if self.assignment[producer] <= boundary < self.assignment[consumer]
        ]

    def describe(self) -> str:
        """Multi-line human readable summary."""
        lines = [
            f"temporal partitioning of {self.graph.name!r} ({self.method or 'unknown'}): "
            f"{self.partition_count} partitions, latency "
            f"{self.total_latency * 1e6:.2f} us (compute "
            f"{self.computation_latency * 1e9:.0f} ns)"
        ]
        for info in self.partitions:
            lines.append(
                f"  P{info.index}: {info.task_count} tasks, {info.clbs} CLBs, "
                f"{info.delay * 1e9:.0f} ns"
            )
        return "\n".join(lines)
