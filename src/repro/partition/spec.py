"""Problem specification for temporal partitioning.

Bundles the three inputs of the paper's Section 2.1: the behaviour
specification (task graph with synthesis costs), and the target architecture
parameters ``R_max``, ``M_max`` and ``CT``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..arch.board import ReconfigurableBoard, RtrSystem
from ..arch.device import ResourceVector
from ..errors import PartitioningError
from ..taskgraph.analysis import cardinality_lower_bound, partition_lower_bound
from ..taskgraph.graph import TaskGraph


@dataclass
class PartitionProblem:
    """A temporal-partitioning problem instance.

    Parameters
    ----------
    graph:
        The task graph; every task must carry a synthesis cost (``R(t)``,
        ``D(t)``).
    resource_capacity:
        ``R_max`` — the FPGA resource capacity.
    memory_words:
        ``M_max`` — the on-board memory size in words available for
        inter-partition data.
    reconfiguration_time:
        ``CT`` — seconds per FPGA reconfiguration, used in the objective
        ``N*CT + sum_p d_p``.
    max_partitions:
        Optional hard cap on the number of partitions explored by the
        relax-N loop (defaults to the number of tasks).
    """

    graph: TaskGraph
    resource_capacity: ResourceVector
    memory_words: int
    reconfiguration_time: float
    max_partitions: Optional[int] = None

    def __post_init__(self) -> None:
        self.graph.validate()
        if not self.graph.all_estimated():
            missing = [t.name for t in self.graph.tasks() if not t.has_cost]
            raise PartitioningError(
                "every task needs a synthesis cost before partitioning; missing: "
                f"{missing}"
            )
        if self.memory_words < 0:
            raise PartitioningError("memory_words must be non-negative")
        if self.reconfiguration_time < 0:
            raise PartitioningError("reconfiguration_time must be non-negative")
        if self.max_partitions is not None and self.max_partitions < 1:
            raise PartitioningError("max_partitions must be at least 1")

    @property
    def task_count(self) -> int:
        """Number of tasks in the problem."""
        return len(self.graph)

    def minimum_partitions(self) -> int:
        """The preprocessing lower bound on the number of partitions.

        Max of the paper's resource-sum bound and the cardinality bound
        (``ceil(tasks / max-tasks-per-partition)``).  Both are sound, so the
        relax-N loop can skip every bound below the max without solving —
        skipped bounds are provably infeasible.
        """
        return max(
            partition_lower_bound(self.graph, self.resource_capacity),
            cardinality_lower_bound(self.graph, self.resource_capacity),
        )

    def partition_cap(self) -> int:
        """Largest partition count the relax-N loop may try."""
        cap = self.max_partitions if self.max_partitions is not None else self.task_count
        return max(cap, self.minimum_partitions())

    @classmethod
    def from_system(
        cls,
        graph: TaskGraph,
        system: RtrSystem,
        max_partitions: Optional[int] = None,
    ) -> "PartitionProblem":
        """Build a problem from a task graph and an :class:`RtrSystem`."""
        return cls(
            graph=graph,
            resource_capacity=system.resource_capacity,
            memory_words=system.memory_capacity_words,
            reconfiguration_time=system.reconfiguration_time,
            max_partitions=max_partitions,
        )

    @classmethod
    def from_board(
        cls,
        graph: TaskGraph,
        board: ReconfigurableBoard,
        max_partitions: Optional[int] = None,
    ) -> "PartitionProblem":
        """Build a problem from a task graph and a :class:`ReconfigurableBoard`."""
        return cls(
            graph=graph,
            resource_capacity=board.resource_capacity,
            memory_words=board.memory_capacity_words,
            reconfiguration_time=board.reconfiguration_time,
            max_partitions=max_partitions,
        )

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"PartitionProblem({self.graph.name!r}: {self.task_count} tasks, "
            f"R_max={self.resource_capacity.as_dict()}, "
            f"M_max={self.memory_words} words, CT={self.reconfiguration_time * 1e3:.1f} ms)"
        )
