"""Portfolio temporal partitioner: race heuristics against the ILP.

Runs a fixed ladder of solver arms per problem and returns the first result
that is *provably optimal*, falling back to the warm-started ILP when no
cheap arm can prove its candidate:

1. the greedy heuristics (list scheduling under two priority rules, level
   clustering) and the seeded annealer, all cheap and deterministic;
2. an optimality certificate: any feasible partitioning costs at least
   ``N_min * CT + CP`` where ``N_min`` is the preprocessing lower bound on
   the partition count and ``CP`` the graph's critical-path delay (every
   root-to-leaf path's delay is split across the ``d_p`` terms, so
   ``sum_p d_p >= CP``).  A heuristic candidate that meets this bound is
   optimal — no ILP needed;
3. the exact ILP (:class:`IlpTemporalPartitioner`), warm-started with the
   best heuristic candidate as its incumbent.

Determinism: a wall-clock race between arms would make the winner depend on
machine load, so the "race" is a fixed arm order instead — ties on the
objective are broken by the ladder position (earliest arm wins), every arm
is itself deterministic, and the annealer's seed is pinned.  The same
problem therefore always yields byte-identical assignments, which the
content-addressed stage pipeline and the differential-verification oracles
both rely on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import PartitioningError
from ..taskgraph.analysis import critical_path
from .anneal_partitioner import AnnealTemporalPartitioner
from .greedy_partitioner import LevelClusteringPartitioner
from .ilp_formulation import FormulationOptions
from .ilp_partitioner import IlpPartitionerReport, IlpTemporalPartitioner
from .list_partitioner import ListTemporalPartitioner
from .result import TemporalPartitioning
from .spec import PartitionProblem
from .validate import validate_partitioning

#: Relative tolerance for the optimality-certificate comparison.  The
#: candidate's latency and the lower bound are sums of the same task delays
#: in different association orders, so they can differ by a few ulps.
CERTIFICATE_RTOL = 1e-9


@dataclass
class PortfolioReport:
    """Diagnostics of one portfolio run."""

    #: Arm names in the order they ran (e.g. ``"list-resource"``, ``"ilp"``).
    arms_run: List[str] = field(default_factory=list)
    #: Arms that produced a feasible candidate, with their objective.
    candidates: List[tuple] = field(default_factory=list)
    #: Name of the arm whose result was returned.
    winner: str = ""
    #: Whether the lower-bound certificate proved a heuristic optimal
    #: (when True, no ILP solve happened).
    certified: bool = False
    #: The certificate lower bound ``N_min * CT + CP`` in seconds.
    lower_bound: float = 0.0
    #: The ILP partitioner's report when the ILP arm ran.
    ilp_report: Optional[IlpPartitionerReport] = None
    total_time: float = 0.0

    @property
    def attempted_bounds(self) -> List[int]:
        """Bounds the ILP arm tried (empty when a certificate decided)."""
        if self.ilp_report is None:
            return []
        return list(self.ilp_report.attempted_bounds)


class PortfolioPartitioner:
    """First-provably-optimal-wins portfolio over heuristic and exact arms.

    Parameters
    ----------
    ilp_backend:
        Backend for the exact arm (see :mod:`repro.ilp.solver`).
    anneal_seed / anneal_iterations:
        Forwarded to the :class:`AnnealTemporalPartitioner` arm.
    use_certificate:
        Allow the lower-bound certificate to short-circuit the ILP.  With
        ``False`` the portfolio always ends in the exact arm (useful for
        differential testing of the certificate itself).
    ilp_options:
        Formulation switches forwarded to the exact arm (``None`` keeps the
        backend-dependent defaults).  The multilevel partitioner passes the
        ``"auto"`` delay form here so reconvergent coarse graphs fall back
        to the chain formulation instead of failing on the path limit.
    """

    def __init__(
        self,
        ilp_backend: Optional[str] = None,
        anneal_seed: int = 0,
        anneal_iterations: int = 2000,
        use_certificate: bool = True,
        ilp_options: Optional[FormulationOptions] = None,
    ) -> None:
        self.ilp_backend = ilp_backend
        self.anneal_seed = anneal_seed
        self.anneal_iterations = anneal_iterations
        self.use_certificate = use_certificate
        self.ilp_options = ilp_options
        self.last_report: Optional[PortfolioReport] = None

    def partition(self, problem: PartitionProblem) -> TemporalPartitioning:
        """Run the arm ladder and return a provably optimal partitioning."""
        report = PortfolioReport()
        start = time.perf_counter()

        best: Optional[TemporalPartitioning] = None
        best_arm = ""
        for arm_name, candidate in self._heuristic_arms(problem, report):
            if candidate is None:
                continue
            if not validate_partitioning(problem, candidate).is_valid:
                continue
            report.candidates.append((arm_name, candidate.total_latency))
            # Strict inequality: on a tie the earliest ladder arm wins, so
            # the choice never depends on arm timing.
            if best is None or candidate.total_latency < best.total_latency:
                best = candidate
                best_arm = arm_name

        report.lower_bound = self.objective_lower_bound(problem)
        if (
            self.use_certificate
            and best is not None
            and best.total_latency
            <= report.lower_bound * (1.0 + CERTIFICATE_RTOL)
        ):
            report.winner = best_arm
            report.certified = True
            report.total_time = time.perf_counter() - start
            self.last_report = report
            return self._label(best, best_arm, certified=True)

        # No certificate: the exact arm decides, seeded with the best
        # heuristic candidate as its incumbent upper bound.
        ilp_kwargs = {} if self.ilp_backend is None else {"backend": self.ilp_backend}
        if self.ilp_options is not None:
            ilp_kwargs["options"] = self.ilp_options
        ilp = IlpTemporalPartitioner(**ilp_kwargs)
        report.arms_run.append("ilp")
        result = ilp.partition(problem)
        report.ilp_report = ilp.last_report
        report.candidates.append(("ilp", result.total_latency))
        report.winner = "ilp"
        report.total_time = time.perf_counter() - start
        self.last_report = report
        return self._label(result, "ilp", certified=False)

    # ------------------------------------------------------------------

    def _heuristic_arms(self, problem: PartitionProblem, report: PortfolioReport):
        """Yield ``(arm_name, candidate-or-None)`` in the fixed ladder order."""
        arms = (
            ("list-resource", lambda: ListTemporalPartitioner("resource")),
            ("list-delay", lambda: ListTemporalPartitioner("delay")),
            ("level", lambda: LevelClusteringPartitioner()),
            (
                f"anneal[seed={self.anneal_seed}]",
                lambda: AnnealTemporalPartitioner(
                    seed=self.anneal_seed, iterations=self.anneal_iterations
                ),
            ),
        )
        for arm_name, build in arms:
            report.arms_run.append(arm_name)
            try:
                yield arm_name, build().partition(problem)
            except PartitioningError:
                # A heuristic may legitimately fail (e.g. level clustering
                # violating the memory constraint); the ladder continues.
                yield arm_name, None

    @staticmethod
    def objective_lower_bound(problem: PartitionProblem) -> float:
        """``N_min * CT + CP``: a latency bound no feasible solution beats.

        ``N >= N_min`` by the preprocessing bounds, and ``sum_p d_p >= CP``
        because the critical path's delay is distributed over the partitions
        it crosses (each segment is a dependency chain inside one partition,
        hence a lower bound on that partition's ``d_p``).
        """
        _, cp_delay = critical_path(problem.graph)
        return (
            problem.minimum_partitions() * problem.reconfiguration_time + cp_delay
        )

    @staticmethod
    def _label(
        result: TemporalPartitioning, arm: str, certified: bool
    ) -> TemporalPartitioning:
        """Re-tag the winning result so downstream reports name the arm."""
        suffix = "certified" if certified else "exact"
        return TemporalPartitioning(
            graph=result.graph,
            assignment=dict(result.assignment),
            partition_count=result.partition_count,
            reconfiguration_time=result.reconfiguration_time,
            method=f"portfolio[{arm},{suffix}]",
            objective_value=result.objective_value,
            solve_time=result.solve_time,
            solver_backend=result.solver_backend,
        )
