"""Validation of temporal partitionings against the problem constraints.

Every partitioner (ILP, list, level-clustering) funnels its result through
the same validator in tests and in the synthesis flow, so an invalid
assignment can never silently reach RTL generation or the simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..errors import PartitionValidationError
from .result import TemporalPartitioning
from .spec import PartitionProblem


@dataclass
class ValidationReport:
    """Outcome of validating a partitioning."""

    violations: List[str] = field(default_factory=list)

    @property
    def is_valid(self) -> bool:
        """Whether no violations were found."""
        return not self.violations

    def raise_if_invalid(self) -> None:
        """Raise :class:`PartitionValidationError` when violations exist."""
        if self.violations:
            raise PartitionValidationError(
                "invalid temporal partitioning:\n  " + "\n  ".join(self.violations)
            )


def validate_partitioning(
    problem: PartitionProblem, result: TemporalPartitioning
) -> ValidationReport:
    """Check *result* against every constraint of *problem*."""
    report = ValidationReport()
    graph = problem.graph

    # The assignment must cover exactly the problem's task graph.
    if set(result.assignment) != set(graph.task_names()):
        report.violations.append(
            "assignment does not cover the problem's task set exactly"
        )
        return report

    # Temporal order (Eq. 2): producer partition <= consumer partition.
    for producer, consumer in graph.edges():
        if result.partition_of(producer) > result.partition_of(consumer):
            report.violations.append(
                f"temporal order violated: {producer!r} (P{result.partition_of(producer)}) "
                f"feeds {consumer!r} (P{result.partition_of(consumer)})"
            )

    # Resource constraint (Eq. 6) per partition and resource type.
    capacity = problem.resource_capacity
    for info in result.partitions:
        for resource_name in info.resources.names():
            used = info.resources[resource_name]
            available = capacity[resource_name]
            if used > available:
                report.violations.append(
                    f"partition {info.index} uses {used} {resource_name}, "
                    f"exceeding the capacity of {available}"
                )

    # Memory constraint (Eq. 3) per boundary.
    for boundary in range(1, result.partition_count):
        words = result.boundary_words(boundary)
        if words > problem.memory_words:
            report.violations.append(
                f"boundary {boundary} stores {words} words, exceeding the memory "
                f"constraint of {problem.memory_words} words"
            )

    # Partition indices must be contiguous starting at 1 (no empty partition
    # should survive — empty partitions only waste reconfiguration time).
    used_indices = sorted(set(result.assignment.values()))
    expected = list(range(1, result.partition_count + 1))
    if used_indices != expected:
        report.violations.append(
            f"partition indices {used_indices} are not contiguous 1..{result.partition_count}"
        )

    return report


def assert_valid(problem: PartitionProblem, result: TemporalPartitioning) -> None:
    """Convenience wrapper: validate and raise on any violation."""
    validate_partitioning(problem, result).raise_if_invalid()
