"""Simulated-annealing temporal partitioner (stochastic refinement arm).

Starts from the list-scheduler solution and performs single-task moves
between partitions, accepting worsening moves with the usual Metropolis
probability under a geometric cooling schedule.  Unlike the list and level
heuristics it is latency-aware — the score is the paper's objective
``N*CT + sum_p d_p`` — so it can undo exactly the greedy packing mistakes
the DCT case study illustrates, without paying for an ILP solve.

Determinism: the random stream is ``random.Random(seed)`` with a fixed
default seed, every candidate set is iterated in sorted order, and no
wall-clock input enters any decision, so the same problem and seed always
produce byte-identical assignments.  The portfolio partitioner relies on
this for reproducible racing.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional

from ..arch.device import ResourceVector
from ..errors import PartitioningError
from .list_partitioner import ListTemporalPartitioner
from .result import TemporalPartitioning
from .spec import PartitionProblem


class AnnealTemporalPartitioner:
    """Seeded simulated annealing over task-to-partition assignments.

    Parameters
    ----------
    seed:
        Seed of the private random stream; the same seed reproduces the
        same result bit for bit.
    iterations:
        Number of proposed moves.
    initial_temperature:
        Starting temperature as a fraction of the initial objective (so the
        schedule adapts to the problem's latency scale).
    cooling:
        Geometric cooling factor applied every iteration.
    """

    def __init__(
        self,
        seed: int = 0,
        iterations: int = 2000,
        initial_temperature: float = 0.1,
        cooling: float = 0.995,
    ) -> None:
        if iterations < 0:
            raise PartitioningError("iterations must be non-negative")
        if not 0.0 < cooling < 1.0:
            raise PartitioningError("cooling must lie strictly between 0 and 1")
        self.seed = seed
        self.iterations = iterations
        self.initial_temperature = initial_temperature
        self.cooling = cooling

    def partition(self, problem: PartitionProblem) -> TemporalPartitioning:
        """Refine the list-scheduler solution by annealed single-task moves."""
        start = ListTemporalPartitioner().partition(problem)
        assignment = dict(start.assignment)
        bound = start.partition_count
        graph = problem.graph
        names = graph.task_names()
        rng = random.Random(self.seed)

        best_assignment = dict(assignment)
        current_score = self._score(problem, assignment)
        best_score = current_score
        temperature = max(current_score * self.initial_temperature, 1e-30)

        for _ in range(self.iterations):
            name = names[rng.randrange(len(names))]
            target = rng.randint(1, bound)
            if target == assignment[name]:
                temperature *= self.cooling
                continue
            if not self._move_is_feasible(problem, assignment, name, target):
                temperature *= self.cooling
                continue
            previous = assignment[name]
            assignment[name] = target
            score = self._score(problem, assignment)
            delta = score - current_score
            if delta <= 0 or rng.random() < math.exp(-delta / temperature):
                current_score = score
                if score < best_score - 1e-30:
                    best_score = score
                    best_assignment = dict(assignment)
            else:
                assignment[name] = previous
            temperature *= self.cooling

        compressed, used = _compress(best_assignment)
        return TemporalPartitioning(
            graph=graph,
            assignment=compressed,
            partition_count=used,
            reconfiguration_time=problem.reconfiguration_time,
            method=f"anneal[seed={self.seed}]",
        )

    # ------------------------------------------------------------------

    @staticmethod
    def _move_is_feasible(
        problem: PartitionProblem,
        assignment: Dict[str, int],
        name: str,
        target: int,
    ) -> bool:
        """Whether moving *name* to partition *target* keeps every constraint."""
        graph = problem.graph
        # Temporal order: stay at or after every producer, at or before
        # every consumer (Eq. 2).
        for pred in graph.predecessors(name):
            if assignment[pred] > target:
                return False
        for succ in graph.successors(name):
            if assignment[succ] < target:
                return False
        # Resource constraint of the receiving partition (Eq. 6).
        usage = ResourceVector({})
        for other in graph.task_names():
            if other != name and assignment[other] == target:
                usage = usage + graph.task(other).resources
        usage = usage + graph.task(name).resources
        if not usage.fits_within(problem.resource_capacity):
            return False
        # Memory constraint on every boundary the move touches (Eq. 3).
        trial = dict(assignment)
        trial[name] = target
        low = min(assignment[name], target)
        high = max(assignment[name], target)
        for boundary in range(low, high):
            words = 0
            for producer, consumer in graph.edges():
                if trial[producer] <= boundary < trial[consumer]:
                    words += graph.edge_words(producer, consumer)
            if words > problem.memory_words:
                return False
        return True

    @staticmethod
    def _score(problem: PartitionProblem, assignment: Dict[str, int]) -> float:
        """The paper's objective for *assignment*, empty partitions dropped.

        Recomputes per-partition delays with the same longest-chain rule as
        :meth:`TemporalPartitioning._partition_delay`, so accepting a move
        can never disagree with how the final result will be measured.
        """
        graph = problem.graph
        used = set(assignment.values())
        longest: Dict[str, float] = {}
        per_partition: Dict[int, float] = {}
        for name in graph.topological_order():
            partition = assignment[name]
            chain = graph.task(name).delay
            best_pred = 0.0
            for pred in graph.predecessors(name):
                if assignment[pred] == partition:
                    best_pred = max(best_pred, longest[pred])
            longest[name] = best_pred + chain
            per_partition[partition] = max(
                per_partition.get(partition, 0.0), longest[name]
            )
        return len(used) * problem.reconfiguration_time + sum(per_partition.values())


def _compress(assignment: Dict[str, int]):
    """Renumber partitions 1..N' dropping empty indices (order preserved)."""
    used = sorted(set(assignment.values()))
    renumber = {old: new for new, old in enumerate(used, start=1)}
    return {task: renumber[p] for task, p in assignment.items()}, len(used)
