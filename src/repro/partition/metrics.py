"""Metrics and comparisons over temporal partitionings.

These are the quantities the evaluation section talks about: latency with and
without the reconfiguration overhead, per-partition device utilisation, the
memory pressure at each boundary, and head-to-head comparisons between the
ILP partitioner and the heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..arch.device import CLB, ResourceVector
from .result import TemporalPartitioning


@dataclass
class PartitioningMetrics:
    """Summary metrics of a single temporal partitioning."""

    method: str
    partition_count: int
    computation_latency: float
    total_latency: float
    reconfiguration_overhead: float
    partition_delays: List[float] = field(default_factory=list)
    partition_clbs: List[int] = field(default_factory=list)
    utilisations: List[float] = field(default_factory=list)
    boundary_words: List[int] = field(default_factory=list)
    max_boundary_words: int = 0

    @property
    def delay_imbalance(self) -> float:
        """Max partition delay divided by mean partition delay (1.0 = balanced)."""
        if not self.partition_delays:
            return 0.0
        mean = sum(self.partition_delays) / len(self.partition_delays)
        if mean == 0:
            return 0.0
        return max(self.partition_delays) / mean

    @property
    def mean_utilisation(self) -> float:
        """Mean CLB utilisation across partitions."""
        if not self.utilisations:
            return 0.0
        return sum(self.utilisations) / len(self.utilisations)


def compute_metrics(
    result: TemporalPartitioning, capacity: ResourceVector
) -> PartitioningMetrics:
    """Compute :class:`PartitioningMetrics` for *result* against *capacity*."""
    clb_capacity = max(1, capacity[CLB])
    partition_clbs = [info.clbs for info in result.partitions]
    utilisations = [clbs / clb_capacity for clbs in partition_clbs]
    boundaries = [
        result.boundary_words(boundary)
        for boundary in range(1, result.partition_count)
    ]
    return PartitioningMetrics(
        method=result.method,
        partition_count=result.partition_count,
        computation_latency=result.computation_latency,
        total_latency=result.total_latency,
        reconfiguration_overhead=result.partition_count * result.reconfiguration_time,
        partition_delays=list(result.partition_delays),
        partition_clbs=partition_clbs,
        utilisations=utilisations,
        boundary_words=boundaries,
        max_boundary_words=max(boundaries, default=0),
    )


@dataclass
class PartitioningComparison:
    """Head-to-head comparison of two partitionings of the same task graph."""

    baseline_method: str
    candidate_method: str
    baseline_latency: float
    candidate_latency: float
    baseline_computation_latency: float
    candidate_computation_latency: float
    baseline_partitions: int
    candidate_partitions: int

    @property
    def latency_improvement(self) -> float:
        """Fractional total-latency improvement of the candidate over the baseline."""
        if self.baseline_latency == 0:
            return 0.0
        return (self.baseline_latency - self.candidate_latency) / self.baseline_latency

    @property
    def computation_latency_improvement(self) -> float:
        """Fractional computation-latency improvement (reconfiguration excluded)."""
        if self.baseline_computation_latency == 0:
            return 0.0
        return (
            self.baseline_computation_latency - self.candidate_computation_latency
        ) / self.baseline_computation_latency

    @property
    def candidate_wins(self) -> bool:
        """Whether the candidate achieves strictly lower total latency."""
        return self.candidate_latency < self.baseline_latency


def compare_partitionings(
    baseline: TemporalPartitioning, candidate: TemporalPartitioning
) -> PartitioningComparison:
    """Compare *candidate* against *baseline* (same task graph expected)."""
    return PartitioningComparison(
        baseline_method=baseline.method,
        candidate_method=candidate.method,
        baseline_latency=baseline.total_latency,
        candidate_latency=candidate.total_latency,
        baseline_computation_latency=baseline.computation_latency,
        candidate_computation_latency=candidate.computation_latency,
        baseline_partitions=baseline.partition_count,
        candidate_partitions=candidate.partition_count,
    )


def partition_summary_rows(result: TemporalPartitioning) -> List[Dict[str, object]]:
    """Per-partition rows for tabular reports (used by examples and benches)."""
    rows: List[Dict[str, object]] = []
    for info in result.partitions:
        type_histogram: Dict[str, int] = {}
        for name in info.tasks:
            task_type = result.graph.task(name).task_type or "untyped"
            type_histogram[task_type] = type_histogram.get(task_type, 0) + 1
        rows.append(
            {
                "partition": info.index,
                "tasks": info.task_count,
                "task_types": dict(sorted(type_histogram.items())),
                "clbs": info.clbs,
                "delay_ns": info.delay * 1e9,
            }
        )
    return rows
