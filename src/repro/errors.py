"""Exception hierarchy for the :mod:`repro` library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while still
being able to distinguish the individual failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class SpecificationError(ReproError):
    """An input specification (task graph, DFG, architecture) is malformed."""


class GraphError(SpecificationError):
    """A task graph or data-flow graph violates a structural requirement."""


class CycleError(GraphError):
    """A graph that must be acyclic contains a cycle."""


class UnknownTaskError(GraphError):
    """A task name was referenced that is not present in the task graph."""


class UnknownOperationError(SpecificationError):
    """An operation kind is not recognised by the component library."""


class ArchitectureError(SpecificationError):
    """A target-architecture description is inconsistent or incomplete."""


class WorkloadError(SpecificationError):
    """A workload registration or lookup in the workload registry failed."""


class EstimationError(ReproError):
    """The HLS estimator could not produce an estimate for a task."""


class SchedulingError(EstimationError):
    """A schedule could not be constructed under the given constraints."""


class AllocationError(EstimationError):
    """Resource allocation/binding failed for a data-flow graph."""


class IlpError(ReproError):
    """Base class for errors from the ILP modelling and solving layer."""


class ModelError(IlpError):
    """An ILP model is malformed (unknown variable, bad bounds, ...)."""


class InfeasibleError(IlpError):
    """The ILP/LP instance admits no feasible solution."""


class UnboundedError(IlpError):
    """The LP relaxation (and hence the problem) is unbounded."""


class SolverError(IlpError):
    """The solver failed for a reason other than infeasibility."""


class PartitioningError(ReproError):
    """Temporal partitioning failed or produced an invalid result."""


class PartitionValidationError(PartitioningError):
    """A temporal partitioning violates one of the problem constraints."""


class MemoryMappingError(ReproError):
    """Inter-partition data could not be mapped onto the on-board memory."""


class FissionError(ReproError):
    """Loop-fission analysis or transformation failed."""


class SynthesisError(ReproError):
    """RTL/controller synthesis for a temporal partition failed."""


class SimulationError(ReproError):
    """The RTR/static execution simulator detected an inconsistency."""


class CodecError(ReproError):
    """The JPEG-style codec was given invalid data."""


class ExplorationError(ReproError):
    """A design-space exploration (search space, strategy or run store) failed."""


class ExperimentError(ReproError):
    """An experiment driver was configured inconsistently."""
