"""The persistent, resumable exploration run store.

A :class:`RunStore` is an append-only JSONL file: one meta line (schema
version + search-space fingerprint) followed by one line per evaluated
design point, keyed by the point's content fingerprint.  Appends are
flushed line-by-line, so an interrupted exploration loses at most the
record being written; a truncated trailing line is tolerated (logged and
ignored) on the next open, and a resumed run serves every completed point
from the store instead of re-running its flow.

``path=None`` gives the same interface backed by memory only — the
exploration engine always talks to a store, persistent or not.
"""

from __future__ import annotations

import json
import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Tuple, Union

from ..errors import ExplorationError
from .space import DesignPoint

logger = logging.getLogger(__name__)

#: Schema version of the JSONL records; a store written under a different
#: version never silently resumes.
STORE_VERSION = 1


@dataclass
class PointRecord:
    """The stored outcome of evaluating one design point."""

    fingerprint: str
    point: DesignPoint
    status: str = "ok"  # "ok" | "failed"
    metrics: Dict[str, float] = field(default_factory=dict)
    error: str = ""
    error_kind: str = ""
    #: Per-flow-stage cache provenance of the evaluation (stage name ->
    #: ``computed`` / ``solve`` / ``memory-cache`` / ``disk-cache`` /
    #: ``batch-dedup``), persisted so warm and cold evaluations are
    #: distinguishable in stored rows.  Provenance is a deterministic
    #: function of the trajectory AND the starting cache state: two runs
    #: from the same seed, budget and cache state (e.g. both from fresh
    #: engines, as the byte-identity tests use) write identical bytes,
    #: while a run against a pre-warmed disk cache honestly records its
    #: hits and therefore differs — that difference is the telemetry this
    #: field exists to capture, never a metrics difference.
    stage_sources: Dict[str, str] = field(default_factory=dict)
    #: Evaluation wall time of THIS run; runtime-only, never persisted —
    #: same seed + budget + cache state must yield byte-identical store
    #: files, and wall time is never deterministic.
    wall_time: float = 0.0
    source: str = "flow"  # "flow" | "store" — where THIS run got the record

    @property
    def ok(self) -> bool:
        """Whether the point produced a finished, measured design."""
        return self.status == "ok"

    def cache_hits(self) -> int:
        """Number of flow stages this evaluation served from a cache."""
        return sum(
            1
            for source in self.stage_sources.values()
            if source in ("memory-cache", "disk-cache", "batch-dedup")
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form (canonically ordered for byte-stable stores)."""
        return {
            "fingerprint": self.fingerprint,
            "point": self.point.to_json_dict(),
            "status": self.status,
            "metrics": {name: self.metrics[name] for name in sorted(self.metrics)},
            "error": self.error,
            "error_kind": self.error_kind,
            "stage_sources": {
                name: self.stage_sources[name] for name in sorted(self.stage_sources)
            },
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "PointRecord":
        """Rebuild a record from its stored form."""
        try:
            return cls(
                fingerprint=str(data["fingerprint"]),
                point=DesignPoint.from_json_dict(data["point"]),  # type: ignore[arg-type]
                status=str(data.get("status", "ok")),
                metrics={
                    str(name): float(value)
                    for name, value in dict(data.get("metrics", {})).items()
                },
                error=str(data.get("error", "")),
                error_kind=str(data.get("error_kind", "")),
                stage_sources={
                    str(name): str(value)
                    for name, value in dict(data.get("stage_sources", {})).items()
                },
                source="store",
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ExplorationError(f"malformed run-store record: {error}") from error


def read_store(path: Union[str, Path]) -> Tuple[Dict[str, object], List[PointRecord]]:
    """Read a run store **read-only**: its meta line plus every intact record.

    This is the crash-tolerant loader the Pareto-merge fold uses on shard
    stores, so it must never write: a live shard worker may still hold an
    append handle on *path*.  A truncated trailing line (a worker killed
    mid-append) is logged and dropped — the record is simply not there yet;
    corrupt *complete* lines are logged and skipped; a schema-version
    mismatch is an error (the records could not be interpreted).  Records
    come back in file order, duplicates included — the fold is idempotent
    by fingerprint, so callers need no dedup of their own.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as error:
        raise ExplorationError(f"cannot read run store {path}: {error}") from error
    if raw and not raw.endswith(b"\n"):
        end = raw.rfind(b"\n") + 1
        logger.warning(
            "dropping partial trailing line of %s (interrupted write)", path
        )
        raw = raw[:end]
    meta: Dict[str, object] = {}
    records: List[PointRecord] = []
    for number, line in enumerate(
        raw.decode("utf-8", errors="replace").splitlines(), start=1
    ):
        line = line.strip()
        if not line:
            continue
        try:
            data = json.loads(line)
        except ValueError:
            logger.warning("ignoring corrupt run-store line %d of %s", number, path)
            continue
        if data.get("kind") == "meta":
            version = data.get("version")
            if version != STORE_VERSION:
                raise ExplorationError(
                    f"run store {path} was written under schema version "
                    f"{version}, this library expects {STORE_VERSION}"
                )
            meta = dict(data)
            continue
        try:
            records.append(PointRecord.from_json_dict(data))
        except ExplorationError as error:
            logger.warning(
                "ignoring malformed run-store line %d of %s (%s)",
                number, path, error,
            )
    return meta, records


class RunStore:
    """Append-only JSONL store of evaluated design points."""

    def __init__(
        self,
        path: Optional[Union[str, Path]] = None,
        space_fingerprint: str = "",
        resume: bool = True,
        context: Optional[Mapping[str, object]] = None,
    ) -> None:
        self.path = Path(path) if path is not None else None
        self.space_fingerprint = space_fingerprint
        #: Evaluation context (e.g. ``eval_blocks``) the stored metrics were
        #: computed under; a resume with a *different* context would silently
        #: serve stale numbers, so a mismatch is an error, like the version.
        self.context: Dict[str, object] = dict(context or {})
        self._records: Dict[str, PointRecord] = {}
        self._order: List[str] = []
        self._handle = None
        if self.path is None:
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
            self._handle = self.path.open("a", encoding="utf-8")
        else:
            self._handle = self.path.open("w", encoding="utf-8")
            self._write_line(self._meta_dict())

    def _meta_dict(self) -> Dict[str, object]:
        return {
            "kind": "meta",
            "version": STORE_VERSION,
            "space": self.space_fingerprint,
            "context": self.context,
        }

    def _load(self) -> None:
        """Read every intact record; heal a truncated trailing line.

        An interrupted write can only corrupt the end of the file.  The
        partial trailing line is truncated away (so the append handle
        starts on a clean line boundary and the next write cannot glue
        onto it); corrupt *complete* lines are ignored with a warning.
        """
        assert self.path is not None
        raw = self.path.read_bytes()
        if raw and not raw.endswith(b"\n"):
            end = raw.rfind(b"\n") + 1
            logger.warning(
                "truncating partial trailing line of %s (interrupted write); "
                "the lost record is re-evaluated by this run", self.path,
            )
            with self.path.open("r+b") as handle:
                handle.truncate(end)
        meta, records = read_store(self.path)
        if meta:
            self._check_meta(meta)
        for record in records:
            if record.fingerprint not in self._records:
                self._order.append(record.fingerprint)
            self._records[record.fingerprint] = record

    def _check_meta(self, data: Mapping[str, object]) -> None:
        """Validate a stored meta line against this opening's expectations."""
        version = data.get("version")
        if version != STORE_VERSION:
            raise ExplorationError(
                f"run store {self.path} was written under schema version "
                f"{version}, this library expects {STORE_VERSION}; start a "
                "fresh store"
            )
        stored_space = data.get("space", "")
        if (
            self.space_fingerprint
            and stored_space
            and stored_space != self.space_fingerprint
        ):
            logger.warning(
                "run store %s was recorded for a different search space; "
                "records are still keyed by point fingerprint and stay valid",
                self.path,
            )
        stored_context = dict(data.get("context") or {})
        if self.context and stored_context and stored_context != self.context:
            from .merge import describe_context_mismatch

            raise ExplorationError(
                f"run store {self.path} was recorded under a different "
                "evaluation context than this run — mismatching field(s): "
                f"{describe_context_mismatch(stored_context, self.context)}; "
                "resuming would silently serve stale metrics — match the "
                "context or start a fresh store"
            )

    def _write_line(self, data: Dict[str, object]) -> None:
        assert self._handle is not None
        self._handle.write(json.dumps(data, sort_keys=True, separators=(",", ":")))
        self._handle.write("\n")
        self._handle.flush()

    # ------------------------------------------------------------------
    # Mapping interface
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._records

    def get(self, fingerprint: str) -> Optional[PointRecord]:
        """The stored record for *fingerprint*, or ``None``."""
        return self._records.get(fingerprint)

    def record(self, record: PointRecord) -> None:
        """Insert one record (idempotent) and append it to the file."""
        if record.fingerprint in self._records:
            return
        self._records[record.fingerprint] = record
        self._order.append(record.fingerprint)
        if self._handle is not None:
            self._write_line(record.to_json_dict())

    def replay(self) -> List[PointRecord]:
        """Every record in first-insertion order."""
        return [self._records[fingerprint] for fingerprint in self._order]

    def close(self) -> None:
        """Close the underlying file (records stay readable in memory)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RunStore":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def describe(self) -> str:
        """One-line human readable summary."""
        where = str(self.path) if self.path is not None else "(memory)"
        failed = sum(1 for record in self._records.values() if not record.ok)
        return (
            f"run store {where}: {len(self._records)} point(s) "
            f"({failed} failed)"
        )
