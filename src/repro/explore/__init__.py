"""Design-space exploration: Pareto search over the joint design space.

The paper closes its latency/area trade-off by hand — relax the partition
bound, sweep the configuration time, compare FDH against IDH.  This package
automates that loop as a subsystem:

* :mod:`repro.explore.space` — :class:`DesignPoint` / :class:`SearchSpace`:
  the (workload + parameters, system, CT, partitioner, sequencing) product
  with deterministic enumeration, seeded sampling and neighbourhoods;
* :mod:`repro.explore.objectives` — the multi-objective criteria (latency,
  area utilisation, reconfiguration overhead, throughput) with per-objective
  min/max directions;
* :mod:`repro.explore.pareto` — strict dominance and the incremental
  :class:`ParetoFront` tracker;
* :mod:`repro.explore.strategies` — the pluggable strategy registry
  (``grid``, ``random``, ``greedy``, ``anneal``);
* :mod:`repro.explore.store` — the persistent JSONL :class:`RunStore` that
  makes interrupted explorations resumable by point fingerprint;
* :mod:`repro.explore.engine` — :class:`Explorer`, which evaluates candidate
  batches through :class:`~repro.synth.flow_engine.FlowEngine` so the
  partition caches make repeated neighbourhoods nearly free;
* :mod:`repro.explore.shard` — fingerprint-range sharding: N independent
  shard workers replaying one trajectory over disjoint slices of the space,
  each with its own ``<store>.shard-<i>-of-<n>.jsonl`` store;
* :mod:`repro.explore.merge` — the Pareto-merge fold that unions shard (or
  any) run stores into one front, order-invariantly and idempotently;
* :mod:`repro.explore.scheduler` — the work-stealing shard scheduler:
  a fine M-way range partition handed out dynamically over ``repro serve``
  with lease timeouts, re-issue and stealing, fault-tolerant because range
  evaluation is idempotent.

Quickstart::

    from repro.explore import ExploreConfig, Explorer, SearchSpace
    from repro.units import ms

    space = SearchSpace.for_workloads(
        ["jpeg_dct"], ct_values=(ms(1), ms(10), ms(100)),
        partitioners=("ilp", "list"), sequencings=("fdh", "idh"),
    )
    result = Explorer(space, strategy="random", budget=16, seed=7).run()
    for row in result.front.rows():
        print(row)
"""

from .engine import (
    ExplorationResult,
    ExploreConfig,
    Explorer,
    default_store_path,
    explore,
    is_deterministic_failure,
)
from .objectives import (
    DEFAULT_EVAL_BLOCKS,
    OBJECTIVES,
    Objective,
    evaluate_report,
    objective_names,
    objective_vector,
    resolve_objectives,
)
from .merge import (
    MergeResult,
    describe_context_mismatch,
    merge_fronts,
    merge_records,
    merge_stores,
)
from .pareto import FrontEntry, ParetoFront, dominates
from .scheduler import (
    DELAY_ENV,
    Completion,
    ExplorationPlan,
    Lease,
    ScheduledWorkerResult,
    SchedulerError,
    ShardScheduler,
    default_worker_id,
    run_scheduled_worker,
)
from .shard import (
    ShardRunSummary,
    ShardSpec,
    ShardedExplorationResult,
    run_sharded,
    shard_key,
    shard_of,
    shard_store_path,
    shard_store_paths,
)
from .space import WORKLOAD_DEFAULT_SYSTEM, DesignPoint, SearchSpace
from .store import PointRecord, RunStore, read_store
from .strategies import (
    SEARCH_STRATEGIES,
    ExhaustiveSearch,
    GreedyHillClimb,
    RandomSearch,
    Scalariser,
    SearchStrategy,
    SimulatedAnnealing,
    assert_shardable,
    make_strategy,
    register_strategy,
    shardable_strategy_names,
    strategy_names,
)

__all__ = [
    "Completion",
    "DEFAULT_EVAL_BLOCKS",
    "DELAY_ENV",
    "DesignPoint",
    "ExhaustiveSearch",
    "ExplorationPlan",
    "ExplorationResult",
    "ExploreConfig",
    "Explorer",
    "FrontEntry",
    "GreedyHillClimb",
    "Lease",
    "MergeResult",
    "OBJECTIVES",
    "Objective",
    "ParetoFront",
    "PointRecord",
    "RandomSearch",
    "RunStore",
    "SEARCH_STRATEGIES",
    "Scalariser",
    "ScheduledWorkerResult",
    "SchedulerError",
    "SearchSpace",
    "SearchStrategy",
    "ShardRunSummary",
    "ShardScheduler",
    "ShardSpec",
    "ShardedExplorationResult",
    "SimulatedAnnealing",
    "WORKLOAD_DEFAULT_SYSTEM",
    "assert_shardable",
    "default_store_path",
    "default_worker_id",
    "describe_context_mismatch",
    "dominates",
    "evaluate_report",
    "explore",
    "is_deterministic_failure",
    "make_strategy",
    "merge_fronts",
    "merge_records",
    "merge_stores",
    "objective_names",
    "objective_vector",
    "read_store",
    "register_strategy",
    "resolve_objectives",
    "run_scheduled_worker",
    "run_sharded",
    "shard_key",
    "shard_of",
    "shard_store_path",
    "shard_store_paths",
    "shardable_strategy_names",
    "strategy_names",
]
