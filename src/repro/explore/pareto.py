"""Incremental Pareto-front tracking with per-objective directions.

:func:`dominates` is the strict Pareto order: ``a`` dominates ``b`` when it
is no worse in every objective (respecting each objective's min/max
direction) and strictly better in at least one.  The relation is
irreflexive, antisymmetric and transitive — property-tested in
``tests/test_explore.py`` — which is what makes the incremental update of
:class:`ParetoFront` sound: a new entry is kept iff no current entry
dominates it, and it evicts every current entry it dominates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ExplorationError
from .objectives import Objective, objective_vector
from .space import DesignPoint


def dominates(
    a: Sequence[float], b: Sequence[float], objectives: Sequence[Objective]
) -> bool:
    """Whether objective vector *a* strictly Pareto-dominates *b*."""
    if not (len(a) == len(b) == len(objectives)):
        raise ExplorationError(
            f"vector lengths {len(a)}/{len(b)} do not match "
            f"{len(objectives)} objectives"
        )
    strictly_better = False
    for value_a, value_b, objective in zip(a, b, objectives):
        if objective.better(value_b, value_a):
            return False
        if objective.better(value_a, value_b):
            strictly_better = True
    return strictly_better


@dataclass(frozen=True)
class FrontEntry:
    """One non-dominated design on the front."""

    fingerprint: str
    point: DesignPoint
    metrics: Dict[str, float]

    def vector(self, objectives: Sequence[Objective]) -> Tuple[float, ...]:
        """The entry's objective values in objective order."""
        return objective_vector(self.metrics, objectives)


class ParetoFront:
    """The set of mutually non-dominated designs seen so far."""

    def __init__(self, objectives: Sequence[Objective]) -> None:
        if not objectives:
            raise ExplorationError("a Pareto front needs at least one objective")
        self.objectives = tuple(objectives)
        self._entries: Dict[str, FrontEntry] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def add(
        self,
        point: DesignPoint,
        metrics: Dict[str, float],
        fingerprint: Optional[str] = None,
    ) -> bool:
        """Offer one design; returns whether it is on the front afterwards.

        A design dominated by (or identical in fingerprint to) a current
        entry is rejected; an accepted design evicts every entry it
        dominates.  Objective ties survive side by side — equal vectors are
        mutually non-dominated.
        """
        fingerprint = fingerprint or point.fingerprint()
        if fingerprint in self._entries:
            return True
        vector = objective_vector(metrics, self.objectives)
        dominated: List[str] = []
        for entry in self._entries.values():
            other = entry.vector(self.objectives)
            if dominates(other, vector, self.objectives):
                return False
            if dominates(vector, other, self.objectives):
                dominated.append(entry.fingerprint)
        for key in dominated:
            del self._entries[key]
        self._entries[fingerprint] = FrontEntry(
            fingerprint=fingerprint, point=point, metrics=dict(metrics)
        )
        return True

    def entries(self) -> List[FrontEntry]:
        """Front entries sorted by fingerprint (stable across runs)."""
        return [self._entries[key] for key in sorted(self._entries)]

    def rows(self) -> List[Dict[str, object]]:
        """Per-entry rows for tabular/JSON/CSV presentation."""
        rows: List[Dict[str, object]] = []
        for entry in self.entries():
            row: Dict[str, object] = {
                "design": entry.point.label,
                "fingerprint": entry.fingerprint[:12],
            }
            for objective in self.objectives:
                row[objective.name] = entry.metrics[objective.name]
            rows.append(row)
        return rows

    def to_json_dict(self) -> Dict[str, object]:
        """Canonical JSON form (sorted entries) for persistence and diffing."""
        return {
            "objectives": [
                {"name": objective.name, "direction": objective.direction}
                for objective in self.objectives
            ],
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "point": entry.point.to_json_dict(),
                    "metrics": {
                        name: entry.metrics[name] for name in sorted(entry.metrics)
                    },
                }
                for entry in self.entries()
            ],
        }

    def describe(self) -> str:
        """One-line human readable summary."""
        names = ", ".join(
            f"{objective.name}({objective.direction})"
            for objective in self.objectives
        )
        return f"Pareto front of {len(self)} design(s) over [{names}]"
