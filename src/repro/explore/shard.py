"""Sharded distributed exploration: fingerprint-range partitioning.

A :class:`ShardSpec` names one of *N* disjoint slices of the design space,
cut by point-fingerprint range: the first 64 bits of a point's sha256
content fingerprint (already the run-store key) are mapped onto shard
``floor(h * N / 2**64)``.  Shard membership is therefore a **pure function
of the point** — no coordination, no shared state, no assignment table —
and the N ranges are a disjoint cover of the fingerprint space for any N
(property-tested in ``tests/test_explore_sharded.py``).

Each shard worker replays the *same* strategy trajectory the unsharded run
would walk (same seed, same budget, same proposal order) but evaluates only
the points whose fingerprint falls in its range; everything else is skipped
without flow work.  The union of the shards' evaluated points is therefore
exactly the unsharded run's evaluated set, which is what makes the merged
frontier byte-identical to the unsharded frontier (see
:mod:`repro.explore.merge`).  Replay is only sound for strategies whose
proposals do not depend on observed *metrics* (``grid``, ``random`` — the
:attr:`~repro.explore.strategies.SearchStrategy.shardable` flag); adaptive
strategies (``greedy``, ``anneal``) would diverge without the off-shard
outcomes and are refused up front.

Workers run as independent processes (:func:`run_sharded`), each with its
own :class:`~repro.synth.flow_engine.FlowEngine` over the shared
content-addressed disk cache and its own append-only shard store
``<store>.shard-<i>-of-<n>.jsonl``.  A killed worker loses at most one
partial JSONL line, which the store heals on resume — restarting a sharded
run re-evaluates zero already-done flow jobs.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ExplorationError
from .merge import MergeResult, merge_stores
from .space import SearchSpace

#: Bits of the sha256 fingerprint the range partition is computed over.
SHARD_KEY_BITS = 64

#: Exclusive upper bound of the shard key space.
SHARD_KEY_SPACE = 1 << SHARD_KEY_BITS


def shard_key(fingerprint: str) -> int:
    """The 64-bit range key of a point fingerprint (its leading 16 hex digits)."""
    if len(fingerprint) < SHARD_KEY_BITS // 4:
        raise ExplorationError(
            f"fingerprint {fingerprint!r} is too short for a shard key"
        )
    try:
        return int(fingerprint[: SHARD_KEY_BITS // 4], 16)
    except ValueError:
        raise ExplorationError(f"fingerprint {fingerprint!r} is not hexadecimal")


def shard_of(fingerprint: str, shard_count: int) -> int:
    """Which of *shard_count* contiguous ranges *fingerprint* falls in.

    Pure, stateless and stable across processes: ``floor(h * N / 2**64)``
    for the 64-bit key *h*.  Every key lands in exactly one shard and the
    shard boundaries are monotone in the key, so the N ranges partition the
    fingerprint space for any N >= 1.
    """
    if shard_count < 1:
        raise ExplorationError(f"shard count must be >= 1, got {shard_count}")
    return (shard_key(fingerprint) * shard_count) >> SHARD_KEY_BITS


@dataclass(frozen=True)
class ShardSpec:
    """One shard of an N-way fingerprint-range partition."""

    index: int
    count: int

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ExplorationError(f"shard count must be >= 1, got {self.count}")
        if not 0 <= self.index < self.count:
            raise ExplorationError(
                f"shard index {self.index} outside 0..{self.count - 1}"
            )

    def contains(self, fingerprint: str) -> bool:
        """Whether *fingerprint* belongs to this shard's range."""
        return shard_of(fingerprint, self.count) == self.index

    def key_range(self) -> Tuple[int, int]:
        """The half-open ``[low, high)`` 64-bit key range of this shard."""
        low = -(-self.index * SHARD_KEY_SPACE // self.count)  # ceil division
        high = -(-(self.index + 1) * SHARD_KEY_SPACE // self.count)
        return low, high

    def describe(self) -> str:
        """One-line human readable summary."""
        low, high = self.key_range()
        return (
            f"shard {self.index + 1}/{self.count} "
            f"(keys {low:#018x}..{high - 1:#018x})"
        )


def shard_store_path(
    base: Union[str, Path], index: int, count: int
) -> Path:
    """The conventional shard-store path ``<store>.shard-<i>-of-<n>.jsonl``.

    A ``.jsonl`` suffix on *base* is replaced, so ``run.jsonl`` shards to
    ``run.shard-0-of-2.jsonl`` and friends next to it.
    """
    base = Path(base)
    stem = base.name[: -len(".jsonl")] if base.name.endswith(".jsonl") else base.name
    return base.with_name(f"{stem}.shard-{index}-of-{count}.jsonl")


def shard_store_paths(base: Union[str, Path], count: int) -> List[Path]:
    """Every shard-store path of an N-way run, in shard order."""
    return [shard_store_path(base, index, count) for index in range(count)]


# ---------------------------------------------------------------------------
# The parallel shard driver
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ShardRunSummary:
    """What one shard worker did (the picklable cross-process report)."""

    index: int
    count: int
    store_path: str
    visited: int  # global trajectory positions consumed (same for all shards)
    evaluated: int  # on-shard points this worker owned
    off_shard: int  # trajectory points skipped as other shards' work
    flow_evaluated: int  # flow jobs actually run (0 on a full resume)
    store_hits: int
    failures: int
    wall_time: float


@dataclass
class ShardedExplorationResult:
    """A whole N-way sharded exploration: per-shard work plus the merged front."""

    space: SearchSpace
    shard_count: int
    merge: MergeResult
    shards: List[ShardRunSummary] = field(default_factory=list)
    wall_time: float = 0.0

    @property
    def front(self):
        """The merged union Pareto front."""
        return self.merge.front

    @property
    def flow_evaluated(self) -> int:
        """Flow jobs run across every shard."""
        return sum(shard.flow_evaluated for shard in self.shards)

    @property
    def failures(self) -> int:
        """Failed evaluations across every shard."""
        return sum(shard.failures for shard in self.shards)

    @property
    def ok(self) -> bool:
        """Whether every evaluated point produced a finished design."""
        return self.failures == 0

    def describe(self) -> str:
        """One-line human readable summary."""
        evaluated = sum(shard.evaluated for shard in self.shards)
        return (
            f"sharded exploration over {self.shard_count} shard(s): "
            f"{evaluated} point(s) evaluated ({self.flow_evaluated} "
            f"flow-evaluated, {self.failures} failed) in {self.wall_time:.2f} s; "
            f"{self.front.describe()}"
        )


def _shard_worker(payload) -> ShardRunSummary:
    """Run one shard's Explorer in this process (top level: picklable)."""
    space, config, index, count, store_path, resume = payload
    from .engine import Explorer
    from .store import RunStore

    # Shard processes ARE the parallelism: each worker keeps its flow
    # engine in-process so N shards never nest N process pools.
    config = replace(config, workers=0)
    shard = ShardSpec(index, count)
    with RunStore(
        Path(store_path),
        space.fingerprint(),
        resume=resume,
        context={"eval_blocks": config.eval_blocks},
    ) as store:
        result = Explorer(space, config=config, store=store, shard=shard).run()
    return ShardRunSummary(
        index=index,
        count=count,
        store_path=str(store_path),
        visited=result.visited,
        evaluated=result.visited - result.off_shard,
        off_shard=result.off_shard,
        flow_evaluated=result.flow_evaluated,
        store_hits=result.store_hits,
        failures=result.failures,
        wall_time=result.wall_time,
    )


def run_sharded(
    space: SearchSpace,
    config,
    shard_count: int,
    store_base: Union[str, Path],
    resume: bool = False,
    objectives: Optional[Sequence[str]] = None,
    max_parallel: Optional[int] = None,
) -> ShardedExplorationResult:
    """Explore *space* as *shard_count* parallel shard workers, then merge.

    Each worker owns one fingerprint range, runs the full strategy
    trajectory of *config* (evaluating only its own points) against its own
    ``<store_base>.shard-<i>-of-<n>.jsonl`` store, and the shard stores are
    folded into one union Pareto front.  Same seed + budget + shard count
    is byte-deterministic: the merged front is identical regardless of
    shard completion order, and identical to the unsharded run's front.
    """
    import time

    from .engine import ExploreConfig
    from .strategies import assert_shardable

    if shard_count < 1:
        raise ExplorationError(f"shard count must be >= 1, got {shard_count}")
    if not isinstance(config, ExploreConfig):
        raise ExplorationError("run_sharded needs an ExploreConfig")
    assert_shardable(config.strategy)

    start = time.perf_counter()
    paths = shard_store_paths(store_base, shard_count)
    payloads = [
        (space, config, index, shard_count, str(path), resume)
        for index, path in enumerate(paths)
    ]
    summaries: Dict[int, ShardRunSummary] = {}
    if shard_count == 1:
        summaries[0] = _shard_worker(payloads[0])
    else:
        workers = max_parallel or shard_count
        with ProcessPoolExecutor(max_workers=min(workers, shard_count)) as pool:
            for summary in pool.map(_shard_worker, payloads):
                summaries[summary.index] = summary
    merge = merge_stores(paths, objectives=objectives or config.objectives)
    return ShardedExplorationResult(
        space=space,
        shard_count=shard_count,
        merge=merge,
        shards=[summaries[index] for index in range(shard_count)],
        wall_time=time.perf_counter() - start,
    )
