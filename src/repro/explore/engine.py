"""The exploration engine: strategy loop, batch evaluation, front, store.

:class:`Explorer` drives one search strategy over a :class:`SearchSpace`:
each round the strategy proposes a batch of candidate points, points
already in the run store are served from it (zero flow work), the rest run
as one :class:`~repro.synth.flow_engine.FlowEngine` batch — so the
partition-stage dedup/LRU/disk caches make repeated neighbourhoods nearly
free — and every outcome feeds the incremental Pareto front and the
strategy's next proposal.

Determinism: the strategy draws randomness only from one seeded RNG, flow
evaluation is a pure function of the design point, and the store serialises
records canonically — so the same seed, budget and starting cache state
produce byte-identical run stores and identical fronts (metrics and
trajectory depend on the seed alone; the persisted per-stage cache
provenance additionally reflects how warm the caches were), and a resumed
run replays the identical trajectory entirely from the store.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..arch.catalog import system_by_name
from ..errors import ExplorationError, ReproError
from ..runtime.engine import EngineConfig
from ..synth.flow_engine import FlowEngine, FlowJob
from .objectives import (
    DEFAULT_EVAL_BLOCKS,
    OBJECTIVES,
    evaluate_report,
    resolve_objectives,
)
from .pareto import ParetoFront
from .shard import ShardSpec
from .space import WORKLOAD_DEFAULT_SYSTEM, DesignPoint, SearchSpace
from .store import PointRecord, RunStore
from .strategies import assert_shardable, make_strategy


def default_store_path(space: SearchSpace, directory: Union[str, Path] = ".repro-explore") -> Path:
    """The conventional store location for *space* (stable across runs)."""
    return Path(directory) / f"run-{space.fingerprint()[:16]}.jsonl"


def is_deterministic_failure(record: PointRecord) -> bool:
    """Whether a failed record would fail identically on re-evaluation.

    Library errors (:class:`~repro.errors.ReproError` subclasses — an
    infeasible problem, an unestimable task, an unknown system) are pure
    functions of the design point and worth persisting; anything else
    (worker crashes, timeouts, OS errors) is environmental and must be
    retried on resume rather than served from the store forever.
    """
    from .. import errors as errors_module

    kind = getattr(errors_module, record.error_kind, None)
    return isinstance(kind, type) and issubclass(kind, errors_module.ReproError)


@dataclass
class ExploreConfig:
    """Static configuration of one exploration run."""

    strategy: str = "grid"
    budget: int = 64
    batch_size: int = 8
    seed: int = 0
    objectives: Tuple[str, ...] = ("latency", "throughput")
    eval_blocks: int = DEFAULT_EVAL_BLOCKS
    workers: int = 0
    cache_dir: Optional[Union[str, Path]] = None

    def __post_init__(self) -> None:
        if self.budget < 1:
            raise ExplorationError("budget must be at least 1")
        if self.batch_size < 1:
            raise ExplorationError("batch_size must be at least 1")
        if self.eval_blocks < 1:
            raise ExplorationError("eval_blocks must be at least 1")


@dataclass
class ExplorationResult:
    """Everything one :meth:`Explorer.run` call produced."""

    space: SearchSpace
    config: ExploreConfig
    front: ParetoFront
    records: List[PointRecord] = field(default_factory=list)
    visited: int = 0
    flow_evaluated: int = 0
    store_hits: int = 0
    failures: int = 0
    #: Trajectory points skipped because their fingerprint belongs to
    #: another shard (always 0 for an unsharded exploration).
    off_shard: int = 0
    wall_time: float = 0.0
    engine_stats: Dict[str, int] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether every visited point produced a finished design."""
        return self.failures == 0

    def rows(self) -> List[Dict[str, object]]:
        """Per-visit rows (in visit order) for tabular/JSON/CSV output."""
        rows: List[Dict[str, object]] = []
        for record in self.records:
            row: Dict[str, object] = {
                "design": record.point.label,
                "status": record.status,
                "source": record.source,
            }
            for objective in self.front.objectives:
                row[objective.name] = record.metrics.get(objective.name, "")
            row["stage_cache_hits"] = record.cache_hits()
            row["stage_sources"] = ",".join(
                f"{stage}={source}"
                for stage, source in sorted(record.stage_sources.items())
            )
            row["error"] = record.error
            rows.append(row)
        return rows

    def describe(self) -> str:
        """One-line human readable summary."""
        sharded = (
            f", {self.off_shard} off-shard skipped" if self.off_shard else ""
        )
        return (
            f"explored {self.visited} point(s) in {self.wall_time:.2f} s "
            f"({self.flow_evaluated} flow-evaluated, {self.store_hits} served "
            f"from the run store, {self.failures} failed{sharded}); "
            f"{self.front.describe()}"
        )


class Explorer:
    """Drives one search strategy over a space through the flow engine."""

    def __init__(
        self,
        space: SearchSpace,
        config: Optional[ExploreConfig] = None,
        flow_engine: Optional[FlowEngine] = None,
        store: Optional[RunStore] = None,
        shard: Optional[ShardSpec] = None,
        **overrides,
    ) -> None:
        if config is not None and overrides:
            raise ExplorationError(
                "pass either an ExploreConfig or keyword overrides, not both"
            )
        self.space = space
        self.config = config or ExploreConfig(**overrides)
        #: When set, this explorer is one worker of an N-way sharded run: it
        #: replays the full strategy trajectory (identical seed, budget and
        #: proposal order) but evaluates only the points whose fingerprint
        #: falls in its shard's range — everything else is skipped without
        #: flow work and without touching the store.
        self.shard = shard
        if shard is not None:
            assert_shardable(self.config.strategy)
        self.flow_engine = flow_engine or FlowEngine(
            config=EngineConfig(
                workers=self.config.workers, cache_dir=self.config.cache_dir
            )
        )
        self.store = store if store is not None else RunStore()
        # Graphs and systems are pure functions of their point axes; build
        # each once per exploration however often the search revisits it.
        self._graphs: Dict[Tuple[str, Tuple[Tuple[str, object], ...]], object] = {}
        self._systems: Dict[Tuple[str, str, Optional[float]], object] = {}

    # ------------------------------------------------------------------
    # Point -> flow job plumbing
    # ------------------------------------------------------------------

    def _graph_for(self, point: DesignPoint):
        key = (point.workload, point.params)
        if key not in self._graphs:
            from ..workloads import get_workload

            workload = get_workload(point.workload)
            self._graphs[key] = workload.build_graph(**point.params_dict())
        return self._graphs[key]

    def _system_for(self, point: DesignPoint):
        # The workload-default sentinel resolves to a *per-workload* board,
        # so the workload must be part of the cache key for it.
        owner = point.workload if point.system == WORKLOAD_DEFAULT_SYSTEM else ""
        key = (owner, point.system, point.ct)
        if key not in self._systems:
            if point.system == WORKLOAD_DEFAULT_SYSTEM:
                from ..workloads import get_workload

                system = get_workload(point.workload).default_system()
            else:
                system = system_by_name(point.system)
            if point.ct is not None and point.ct != system.reconfiguration_time:
                system = system.with_reconfiguration_time(point.ct)
            self._systems[key] = system
        return self._systems[key]

    def _flow_job(self, point: DesignPoint) -> FlowJob:
        from ..workloads import get_workload

        workload = get_workload(point.workload)
        options = replace(workload.flow_options(), partitioner=point.partitioner)
        return FlowJob(
            graph=self._graph_for(point),
            system=self._system_for(point),
            options=options,
            tag=point.label,
            workload=point.workload,
        )

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def _evaluate(
        self, points: Sequence[Tuple[DesignPoint, str]]
    ) -> Tuple[Dict[str, PointRecord], int]:
        """Run the unique missing points as one flow batch.

        Returns the records keyed by fingerprint plus the number of flow
        jobs actually run (construction failures never reach the flow).
        Every record carries values for *all* registered objectives, not
        just the configured subset, so a store can be resumed under any
        objective selection.
        """
        objectives = tuple(OBJECTIVES.values())
        unique: Dict[str, DesignPoint] = {}
        for point, fingerprint in points:
            unique.setdefault(fingerprint, point)
        order = list(unique)
        jobs = []
        prepared: Dict[str, PointRecord] = {}
        for fingerprint in list(order):
            point = unique[fingerprint]
            try:
                jobs.append(self._flow_job(point))
            except ReproError as error:
                # A point whose graph or system cannot even be built is a
                # deterministic failure: record it, don't sink the batch.
                prepared[fingerprint] = PointRecord(
                    fingerprint=fingerprint,
                    point=point,
                    status="failed",
                    error=str(error),
                    error_kind=type(error).__name__,
                )
                order.remove(fingerprint)
        if jobs:
            batch = self.flow_engine.run_batch(jobs)
            for fingerprint, report in zip(order, batch):
                point = unique[fingerprint]
                stage_sources = dict(report.stage_sources)
                if report.ok:
                    try:
                        metrics = evaluate_report(
                            report, point, objectives, self.config.eval_blocks
                        )
                        prepared[fingerprint] = PointRecord(
                            fingerprint=fingerprint,
                            point=point,
                            metrics=metrics,
                            stage_sources=stage_sources,
                            wall_time=report.wall_time,
                        )
                        continue
                    except ReproError as error:
                        prepared[fingerprint] = PointRecord(
                            fingerprint=fingerprint,
                            point=point,
                            status="failed",
                            error=str(error),
                            error_kind=type(error).__name__,
                            stage_sources=stage_sources,
                            wall_time=report.wall_time,
                        )
                        continue
                prepared[fingerprint] = PointRecord(
                    fingerprint=fingerprint,
                    point=point,
                    status="failed",
                    error=f"{report.failed_stage or 'unknown'}: "
                          f"{report.error or 'no detail'}",
                    error_kind=report.error_kind,
                    stage_sources=stage_sources,
                    wall_time=report.wall_time,
                )
        return prepared, len(jobs)

    # ------------------------------------------------------------------
    # The exploration loop
    # ------------------------------------------------------------------

    def run(self) -> ExplorationResult:
        """Run the configured strategy to its budget and return the result."""
        start = time.perf_counter()
        config = self.config
        objectives = resolve_objectives(config.objectives)
        rng = random.Random(config.seed)
        strategy = make_strategy(config.strategy, self.space, objectives, rng)
        result = ExplorationResult(
            space=self.space, config=config, front=ParetoFront(objectives)
        )

        while result.visited < config.budget:
            count = min(config.batch_size, config.budget - result.visited)
            proposals = strategy.propose(count)[:count]
            if not proposals:
                break
            keyed = [(point, point.fingerprint()) for point in proposals]
            missing = [
                (point, fingerprint)
                for point, fingerprint in keyed
                if fingerprint not in self.store
                and (self.shard is None or self.shard.contains(fingerprint))
            ]
            evaluated, jobs_run = self._evaluate(missing) if missing else ({}, 0)
            result.flow_evaluated += jobs_run
            for record in evaluated.values():
                # Transient failures (crashes, timeouts) stay out of the
                # store so a resumed run retries them; deterministic
                # outcomes are persisted.
                if record.ok or is_deterministic_failure(record):
                    self.store.record(record)

            batch_records: List[PointRecord] = []
            for point, fingerprint in keyed:
                if fingerprint in evaluated:
                    record = evaluated[fingerprint]
                elif self.shard is not None and not self.shard.contains(fingerprint):
                    # Another shard's point: consume the trajectory position
                    # (so replay stays aligned with the unsharded run) but do
                    # no flow work and write nothing to this shard's store.
                    record = PointRecord(
                        fingerprint=fingerprint,
                        point=point,
                        status="skipped",
                        source="off-shard",
                    )
                    result.off_shard += 1
                    batch_records.append(record)
                    result.records.append(record)
                    result.visited += 1
                    continue
                else:
                    stored = self.store.get(fingerprint)
                    assert stored is not None
                    record = replace(stored, source="store")
                    result.store_hits += 1
                if record.ok:
                    result.front.add(record.point, record.metrics, fingerprint)
                else:
                    result.failures += 1
                batch_records.append(record)
                result.records.append(record)
                result.visited += 1
            strategy.observe(batch_records)

        result.wall_time = time.perf_counter() - start
        result.engine_stats = self.flow_engine.stats.snapshot()
        # Per-stage artifact-cache counters, flattened next to the partition
        # engine's, so run summaries show exactly which stages re-ran.
        for stage, counters in self.flow_engine.stage_stats.items():
            for name, value in counters.items():
                result.engine_stats[f"stage_{stage.replace('-', '_')}_{name}"] = value
        return result


def explore(
    space: SearchSpace,
    config: Optional[ExploreConfig] = None,
    flow_engine: Optional[FlowEngine] = None,
    store: Optional[RunStore] = None,
    **overrides,
) -> ExplorationResult:
    """One-call convenience around :class:`Explorer`."""
    return Explorer(
        space, config=config, flow_engine=flow_engine, store=store, **overrides
    ).run()
