"""The Pareto-merge fold: union shard (or any) run stores into one front.

The dominance laws proven for :class:`~repro.explore.pareto.ParetoFront`
(irreflexive, antisymmetric, transitive strict dominance with incremental
eviction) make merging a *fold*: offering every stored record to one front
yields exactly the non-dominated subset of the union, independent of the
order the stores — or the records inside them — arrive in.  The laws this
module leans on, property-tested in ``tests/test_explore_sharded.py``:

* **union law** — ``front(A ∪ B) == fold(front(A), front(B))``: merging the
  per-shard fronts equals the front of all the records together;
* **order invariance** — any permutation of stores/records folds to the
  same front (so shard completion order never matters);
* **idempotence** — folding a store in twice changes nothing (records are
  keyed by content fingerprint, and evaluation is deterministic).

Stores are read through :func:`repro.explore.store.read_store` — strictly
read-only, so merging never mutates a store a live shard worker may still
be appending to; a torn trailing line (a worker killed mid-append) is
logged and dropped, exactly as resume would heal it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..errors import ExplorationError
from .objectives import resolve_objectives
from .pareto import ParetoFront
from .store import PointRecord, read_store


@dataclass
class MergeResult:
    """One Pareto-merge fold over a set of run stores."""

    front: ParetoFront
    #: Records folded per store path, in the given store order.
    sources: Dict[str, int] = field(default_factory=dict)
    records: int = 0  # ok records offered to the front
    failed: int = 0  # failed records skipped (they carry no metrics)
    duplicates: int = 0  # same-fingerprint records seen again across stores
    merge_time: float = 0.0

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"merged {len(self.sources)} store(s): {self.records} record(s) "
            f"folded ({self.duplicates} duplicate(s), {self.failed} failed) "
            f"in {self.merge_time:.3f} s; {self.front.describe()}"
        )


def describe_context_mismatch(
    stored: Dict[str, object], expected: Dict[str, object]
) -> str:
    """Name every context field the two evaluation contexts disagree on.

    Renders ``field: stored != expected`` per mismatching field (absent
    fields show as ``<absent>``), so the error pinpoints *which* knob —
    e.g. ``eval_blocks`` — differs instead of dumping two dicts.
    """
    def render(values: Dict[str, object], name: str) -> str:
        return repr(values[name]) if name in values else "<absent>"

    mismatched = sorted(
        name
        for name in set(stored) | set(expected)
        if stored.get(name) != expected.get(name)
    )
    return ", ".join(
        f"{name}: {render(stored, name)} != {render(expected, name)}"
        for name in mismatched
    ) or "none"


def merge_records(
    records: Sequence[PointRecord],
    objectives: Sequence[str] = ("latency", "throughput"),
    front: Optional[ParetoFront] = None,
) -> ParetoFront:
    """Fold *records* into a (possibly pre-seeded) Pareto front.

    Failed records carry no metrics and are skipped; everything else is
    offered to the front under the named objectives.  The result is the
    non-dominated subset of the union — independent of record order.
    """
    if front is None:
        front = ParetoFront(resolve_objectives(tuple(objectives)))
    for record in records:
        if record.ok:
            front.add(record.point, record.metrics, record.fingerprint)
    return front


def merge_fronts(fronts: Sequence[ParetoFront]) -> ParetoFront:
    """Fold several fronts (over the same objectives) into their union front."""
    if not fronts:
        raise ExplorationError("merge_fronts needs at least one front")
    objectives = fronts[0].objectives
    for front in fronts[1:]:
        if front.objectives != objectives:
            raise ExplorationError(
                "cannot merge fronts over different objective selections"
            )
    merged = ParetoFront(objectives)
    for front in fronts:
        for entry in front.entries():
            merged.add(entry.point, entry.metrics, entry.fingerprint)
    return merged


def merge_stores(
    paths: Sequence[Union[str, Path]],
    objectives: Sequence[str] = ("latency", "throughput"),
) -> MergeResult:
    """Read every store read-only and fold them into one union front.

    Stores written under different evaluation contexts (``eval_blocks``)
    carry incomparable metrics, so a context mismatch across the given
    stores is an error rather than a silently wrong frontier.  Missing
    stores are an error too — a sharded run that lost a whole shard store
    has lost data, not just a line.
    """
    if not paths:
        raise ExplorationError("merge_stores needs at least one store path")
    start = time.perf_counter()
    result = MergeResult(
        front=ParetoFront(resolve_objectives(tuple(objectives)))
    )
    context: Optional[Dict[str, object]] = None
    context_path: Optional[Path] = None
    seen: set = set()
    for path in paths:
        path = Path(path)
        meta, records = read_store(path)
        stored_context = dict(meta.get("context") or {})
        if context is None:
            context, context_path = stored_context, path
        elif stored_context != context:
            raise ExplorationError(
                f"run store {path} was recorded under a different "
                f"evaluation context than {context_path} — mismatching "
                f"field(s): {describe_context_mismatch(stored_context, context)}; "
                "their metrics are not comparable — merge stores from one "
                "context"
            )
        result.sources[str(path)] = len(records)
        for record in records:
            if record.fingerprint in seen:
                result.duplicates += 1
            seen.add(record.fingerprint)
            if not record.ok:
                result.failed += 1
                continue
            result.records += 1
            result.front.add(record.point, record.metrics, record.fingerprint)
    result.merge_time = time.perf_counter() - start
    return result
