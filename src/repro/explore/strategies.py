"""Pluggable search strategies behind a small registry.

A strategy is a propose/observe loop driver: the exploration engine asks it
for the next batch of candidate points (:meth:`SearchStrategy.propose`),
evaluates them — through the run store and the flow engine — and feeds the
outcomes back (:meth:`SearchStrategy.observe`).  Batching matters: the flow
engine's partition-stage dedup/LRU/disk caches make a whole proposed
neighbourhood nearly free once its solves are warm.

Four strategies ship built in:

* ``grid`` — exhaustive enumeration in deterministic index order;
* ``random`` — seeded uniform sampling without replacement;
* ``greedy`` — hill-climbing over single-axis neighbourhoods with random
  restarts, guided by the scalarised objectives;
* ``anneal`` — simulated annealing with a geometric temperature schedule.

Every strategy draws randomness only from the seeded RNG the engine hands
it, so the same seed and budget replay the identical trajectory — the
property the resumable run store depends on.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Dict, List, Optional, Sequence, Set, Type

from ..errors import ExplorationError
from .objectives import Objective
from .space import DesignPoint, SearchSpace
from .store import PointRecord


class Scalariser:
    """Running min/max normalisation of objective vectors to one score.

    Local-search strategies need a total order over candidates; this folds
    the objective vector into ``sum_i normalised_cost_i`` with each
    objective scaled into ``[0, 1]`` by the range observed so far (direction
    aware, lower is better).  Failed evaluations score ``+inf`` so search
    never walks towards a broken design.
    """

    def __init__(self, objectives: Sequence[Objective]) -> None:
        self.objectives = tuple(objectives)
        self._low: Dict[str, float] = {}
        self._high: Dict[str, float] = {}

    def observe(self, record: PointRecord) -> None:
        """Fold one evaluated record into the running ranges."""
        if not record.ok:
            return
        for objective in self.objectives:
            value = record.metrics[objective.name]
            self._low[objective.name] = min(
                value, self._low.get(objective.name, value)
            )
            self._high[objective.name] = max(
                value, self._high.get(objective.name, value)
            )

    def score(self, record: PointRecord) -> float:
        """Scalar cost of one record (lower is better, ``inf`` for failures)."""
        if not record.ok:
            return math.inf
        total = 0.0
        for objective in self.objectives:
            value = record.metrics[objective.name]
            low = self._low.get(objective.name, value)
            high = self._high.get(objective.name, value)
            if high == low:
                continue
            normalised = (value - low) / (high - low)
            total += normalised if objective.minimise else 1.0 - normalised
        return total


class SearchStrategy:
    """Base class: the propose/observe protocol the engine drives."""

    name = ""

    #: Whether the strategy's proposal trajectory is independent of observed
    #: *metrics* (it may still depend on which fingerprints were proposed).
    #: Only such strategies can be sharded: a shard worker replays the full
    #: trajectory while evaluating just its own fingerprint range, so any
    #: metric-driven proposal would diverge without the off-shard outcomes.
    shardable = False

    def __init__(
        self,
        space: SearchSpace,
        objectives: Sequence[Objective],
        rng: random.Random,
    ) -> None:
        self.space = space
        self.objectives = tuple(objectives)
        self.rng = rng
        self.scalariser = Scalariser(objectives)
        self.seen: Set[str] = set()

    def propose(self, count: int) -> List[DesignPoint]:
        """Up to *count* candidate points to evaluate next (empty = done)."""
        raise NotImplementedError

    def observe(self, records: Sequence[PointRecord]) -> None:
        """Feed back the outcomes of the last proposal, in proposal order."""
        for record in records:
            self.seen.add(record.fingerprint)
            self.scalariser.observe(record)

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------

    def _unseen_random(self, count: int) -> List[DesignPoint]:
        """Up to *count* distinct unseen uniformly sampled points."""
        found: List[DesignPoint] = []
        batch_keys: Set[str] = set()
        attempts = 0
        limit = max(32, 16 * count)
        while len(found) < count and attempts < limit:
            attempts += 1
            point = self.space.random_point(self.rng)
            key = point.fingerprint()
            if key in self.seen or key in batch_keys:
                continue
            batch_keys.add(key)
            found.append(point)
        return found


class ExhaustiveSearch(SearchStrategy):
    """Deterministic full enumeration of the space, in index order."""

    name = "grid"
    shardable = True  # the cursor walk never looks at outcomes

    def __init__(self, space, objectives, rng) -> None:
        super().__init__(space, objectives, rng)
        self._cursor = 0

    def propose(self, count: int) -> List[DesignPoint]:
        end = min(self._cursor + count, self.space.size)
        points = [self.space.point_at(index) for index in range(self._cursor, end)]
        self._cursor = end
        return points


class RandomSearch(SearchStrategy):
    """Seeded uniform sampling without replacement."""

    name = "random"
    # Proposals consume only the seeded RNG and the set of proposed
    # fingerprints — both identical under shard replay — never metrics.
    shardable = True

    def propose(self, count: int) -> List[DesignPoint]:
        if len(self.seen) >= self.space.size:
            return []
        return self._unseen_random(count)


class GreedyHillClimb(SearchStrategy):
    """Best-neighbour hill climbing with random restarts.

    Each round proposes a neighbourhood of the current point; the best
    neighbour (by scalarised objectives) becomes the new current point when
    it improves, otherwise the climb restarts from a fresh random point.
    """

    name = "greedy"

    def __init__(self, space, objectives, rng) -> None:
        super().__init__(space, objectives, rng)
        self._current: Optional[PointRecord] = None
        self._restarting = True

    def propose(self, count: int) -> List[DesignPoint]:
        if self._restarting or self._current is None:
            return self._unseen_random(count) or self._any_random(count)
        neighbours = [
            point
            for point in self.space.neighbours(
                self._current.point, self.rng, count=count
            )
            if point.fingerprint() not in self.seen
        ]
        if neighbours:
            return neighbours
        # Neighbourhood exhausted: restart somewhere new (or rewalk old
        # ground when the whole space has been seen — revisits are nearly
        # free through the run store and the engine caches).
        self._restarting = True
        return self._unseen_random(count) or self._any_random(count)

    def _any_random(self, count: int) -> List[DesignPoint]:
        return [self.space.random_point(self.rng) for _ in range(max(1, count))]

    def observe(self, records: Sequence[PointRecord]) -> None:
        super().observe(records)
        if not records:
            return
        best = min(records, key=self.scalariser.score)
        best_score = self.scalariser.score(best)
        if math.isinf(best_score):
            self._restarting = True
            return
        if self._restarting or self._current is None:
            self._current = best
            self._restarting = False
            return
        if best_score < self.scalariser.score(self._current):
            self._current = best
        else:
            self._restarting = True


class SimulatedAnnealing(SearchStrategy):
    """Simulated annealing over single-axis neighbourhoods.

    Each round proposes a neighbourhood of the current point, takes its
    best member as the candidate move, and accepts uphill moves with
    probability ``exp(-delta / T)`` under a geometric temperature schedule
    (``T0 = 1.0``, ``alpha = 0.95`` per round).  Revisits are allowed — the
    run store and the engine caches make them nearly free — so the chain
    can cross previously seen ground on its way elsewhere.
    """

    name = "anneal"

    #: Initial temperature and per-round geometric decay.
    INITIAL_TEMPERATURE = 1.0
    DECAY = 0.95

    def __init__(self, space, objectives, rng) -> None:
        super().__init__(space, objectives, rng)
        self._current: Optional[PointRecord] = None
        self._temperature = self.INITIAL_TEMPERATURE

    def propose(self, count: int) -> List[DesignPoint]:
        if self._current is None:
            return self._unseen_random(count) or [
                self.space.random_point(self.rng)
            ]
        neighbours = self.space.neighbours(
            self._current.point, self.rng, count=count
        )
        if neighbours:
            return neighbours
        return [self.space.random_point(self.rng)]

    def observe(self, records: Sequence[PointRecord]) -> None:
        super().observe(records)
        if not records:
            return
        candidate = min(records, key=self.scalariser.score)
        candidate_score = self.scalariser.score(candidate)
        if math.isinf(candidate_score):
            self._temperature *= self.DECAY
            return
        if self._current is None:
            self._current = candidate
            return
        delta = candidate_score - self.scalariser.score(self._current)
        if delta <= 0 or self.rng.random() < math.exp(-delta / max(self._temperature, 1e-9)):
            self._current = candidate
        self._temperature *= self.DECAY


#: Registered strategy classes, keyed by name.
SEARCH_STRATEGIES: Dict[str, Type[SearchStrategy]] = {}


def register_strategy(
    cls: Type[SearchStrategy],
) -> Type[SearchStrategy]:
    """Register a strategy class under its ``name`` (decorator-friendly)."""
    if not cls.name:
        raise ExplorationError(f"strategy class {cls.__name__} has no name")
    if cls.name in SEARCH_STRATEGIES:
        raise ExplorationError(f"strategy {cls.name!r} is already registered")
    SEARCH_STRATEGIES[cls.name] = cls
    return cls


for _cls in (ExhaustiveSearch, RandomSearch, GreedyHillClimb, SimulatedAnnealing):
    register_strategy(_cls)


def strategy_names() -> List[str]:
    """Sorted names of every registered strategy."""
    return sorted(SEARCH_STRATEGIES)


def shardable_strategy_names() -> List[str]:
    """Sorted names of the strategies whose trajectories can be sharded."""
    return sorted(
        name for name, cls in SEARCH_STRATEGIES.items() if cls.shardable
    )


def assert_shardable(name: str) -> None:
    """Raise unless strategy *name* exists and supports shard replay."""
    try:
        cls = SEARCH_STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ExplorationError(f"unknown search strategy {name!r}; known: {known}")
    if not cls.shardable:
        raise ExplorationError(
            f"strategy {name!r} cannot be sharded: its proposals depend on "
            "observed metrics, which a shard worker does not have for other "
            f"shards' points; shardable: {', '.join(shardable_strategy_names())}"
        )


def make_strategy(
    name: str,
    space: SearchSpace,
    objectives: Sequence[Objective],
    rng: random.Random,
) -> SearchStrategy:
    """Instantiate a registered strategy by name."""
    try:
        cls: Callable[..., SearchStrategy] = SEARCH_STRATEGIES[name]
    except KeyError:
        known = ", ".join(strategy_names())
        raise ExplorationError(f"unknown search strategy {name!r}; known: {known}")
    return cls(space, objectives, rng)
