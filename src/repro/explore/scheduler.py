"""Work-stealing shard scheduler: dynamic fingerprint-range hand-out.

PR 9's sharded exploration splits the key space into N fingerprint ranges,
but assigning shard indices across machines is manual and static: a slow or
dead shard stalls the whole run.  This module makes the assignment dynamic.
The key space is cut into a *fine* M-way partition (M >> workers, each
range is one :class:`~repro.explore.shard.ShardSpec` of the M-way
partition) and a :class:`ShardScheduler` hands ranges out on demand:

* **lease** — a worker asks for work and receives the next pending range
  together with a lease that expires unless renewed;
* **renew** — a live worker extends its lease while it evaluates;
* **complete** — the worker returns the range's shard store and the range
  is accounted done;
* **expire** — a lease whose deadline passed (its worker died or stalled)
  is reclaimed and the range re-enters the pending queue for re-issue;
* **steal** — when nothing is pending, an idle worker may revoke the
  longest-held live lease (a straggler's) and run the range itself.

Re-issue and stealing are safe because range evaluation is **idempotent**:
the shard store of range *i* of *M* is a pure function of
``(space, config, i, M)`` — like the nonenumerative DAG decomposition of
arXiv 1301.0181, correctness is independent of evaluation order — so a
twice-evaluated range produces byte-identical records and the Pareto-merge
fold (:mod:`repro.explore.merge`) dedups them by content fingerprint.  The
merged frontier is therefore byte-identical to the unsharded run's no
matter which worker completed which range, how often ranges were re-issued,
or in what order completions arrived.

The scheduler itself is a pure state machine: every operation takes the
current time as an argument (the serve layer passes ``time.monotonic()``,
the property tests pass a logical clock) and the whole state round-trips
through :meth:`ShardScheduler.to_json_dict`.

:class:`ExplorationPlan` is the JSON-serialisable description of the run
(search space, strategy, budget, seed, objectives, range count) that the
scheduling daemon publishes so remote workers need nothing but its URL;
:func:`run_scheduled_worker` is the pull-worker loop behind
``repro explore --scheduler URL``.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path
from typing import Deque, Dict, List, Mapping, Optional, Union

from ..errors import ExplorationError
from .engine import ExploreConfig
from .space import SearchSpace
from .strategies import assert_shardable

#: Environment variable injecting an artificial per-range delay (seconds)
#: into :func:`run_scheduled_worker` — the straggler/chaos hook the fault
#: tests and the CI chaos smoke use to slow one worker down.
DELAY_ENV = "REPRO_SCHED_DELAY_S"

#: Lease states.  ``live`` leases are the only ones that hold a range;
#: every other state is terminal for the lease (never for the range).
LEASE_LIVE = "live"
LEASE_EXPIRED = "expired"
LEASE_REVOKED = "revoked"
LEASE_COMPLETED = "completed"

#: Range states: pending -> leased -> done (leased can fall back to
#: pending on expiry/steal as often as it takes).
RANGE_PENDING = "pending"
RANGE_LEASED = "leased"
RANGE_DONE = "done"


class SchedulerError(ExplorationError):
    """An invalid scheduler operation (unknown lease, bad range count...)."""


@dataclass
class Lease:
    """One grant of one range to one worker."""

    lease_id: str
    range_index: int
    worker: str
    granted_at: float
    deadline: float
    state: str = LEASE_LIVE
    #: Worker whose live lease this grant revoked (set on steals).
    stolen_from: str = ""

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "lease_id": self.lease_id,
            "range_index": self.range_index,
            "worker": self.worker,
            "granted_at": self.granted_at,
            "deadline": self.deadline,
            "state": self.state,
            "stolen_from": self.stolen_from,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "Lease":
        try:
            return cls(
                lease_id=str(data["lease_id"]),
                range_index=int(data["range_index"]),  # type: ignore[arg-type]
                worker=str(data["worker"]),
                granted_at=float(data["granted_at"]),  # type: ignore[arg-type]
                deadline=float(data["deadline"]),  # type: ignore[arg-type]
                state=str(data["state"]),
                stolen_from=str(data.get("stolen_from", "")),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SchedulerError(f"malformed lease record: {error}") from error


@dataclass(frozen=True)
class Completion:
    """The first accepted completion of one range (the accounting record)."""

    range_index: int
    lease_id: str
    worker: str
    #: ``completed`` for a live lease, ``late`` for an expired/revoked one
    #: whose (identical) result was still accepted.
    disposition: str
    store_path: str = ""

    def to_json_dict(self) -> Dict[str, object]:
        return {
            "range_index": self.range_index,
            "lease_id": self.lease_id,
            "worker": self.worker,
            "disposition": self.disposition,
            "store_path": self.store_path,
        }


class ShardScheduler:
    """Lease-based dynamic hand-out of an M-way fingerprint-range partition.

    Invariants (property-tested in ``tests/test_scheduler.py``):

    * every range is in exactly one of ``pending`` / ``leased`` / ``done``;
    * at most one **live** lease exists per range at any time (expiry,
      stealing and completion all revoke before re-granting);
    * every range is completed **exactly once** in the final accounting —
      later completions of a done range are counted as duplicates and
      change nothing;
    * the whole state round-trips through its JSON snapshot.
    """

    def __init__(self, range_count: int, lease_timeout: float = 30.0) -> None:
        if range_count < 1:
            raise SchedulerError(f"range count must be >= 1, got {range_count}")
        if lease_timeout <= 0:
            raise SchedulerError(
                f"lease timeout must be positive, got {lease_timeout}"
            )
        self.range_count = range_count
        self.lease_timeout = lease_timeout
        self._status: List[str] = [RANGE_PENDING] * range_count
        self._pending: Deque[int] = deque(range(range_count))
        self._live: Dict[int, Lease] = {}
        self._leases: Dict[str, Lease] = {}
        self._completions: Dict[int, Completion] = {}
        self._seq = itertools.count(1)
        # Counters surfaced by /v1/scheduler/status.
        self.granted = 0
        self.reissued = 0
        self.stolen = 0
        self.expired = 0
        self.completed = 0
        self.late = 0
        self.duplicates = 0

    # ------------------------------------------------------------------
    # The lease protocol
    # ------------------------------------------------------------------

    def expire(self, now: float) -> List[int]:
        """Reclaim every live lease whose deadline passed; returns the ranges.

        A reclaimed range re-enters the back of the pending queue, so the
        next hungry worker re-runs it — idempotently.
        """
        reclaimed: List[int] = []
        for index, lease in sorted(self._live.items()):
            if lease.deadline < now:
                lease.state = LEASE_EXPIRED
                self.expired += 1
                reclaimed.append(index)
        for index in reclaimed:
            del self._live[index]
            self._status[index] = RANGE_PENDING
            self._pending.append(index)
        return reclaimed

    def _grant(
        self, index: int, worker: str, now: float, stolen_from: str = ""
    ) -> Lease:
        lease = Lease(
            lease_id=f"lease-{next(self._seq):06d}",
            range_index=index,
            worker=worker,
            granted_at=now,
            deadline=now + self.lease_timeout,
            stolen_from=stolen_from,
        )
        self._status[index] = RANGE_LEASED
        self._live[index] = lease
        self._leases[lease.lease_id] = lease
        self.granted += 1
        if self.grants_of(index) > 1:
            self.reissued += 1
        return lease

    def grants_of(self, index: int) -> int:
        """How many leases have ever been granted on range *index*."""
        return sum(
            1 for lease in self._leases.values() if lease.range_index == index
        )

    def lease(self, worker: str, now: float) -> Optional[Lease]:
        """Grant the next pending range to *worker*, or ``None`` if none.

        Expired leases are reclaimed first, so a dead worker's range is
        re-issued the moment any live worker asks for work.
        """
        if not worker:
            raise SchedulerError("a lease needs a non-empty worker id")
        self.expire(now)
        if not self._pending:
            return None
        index = self._pending.popleft()
        return self._grant(index, worker, now)

    def steal(self, worker: str, now: float) -> Optional[Lease]:
        """Revoke the longest-held live lease and grant its range to *worker*.

        Work stealing for the end-game: only allowed once nothing is
        pending (otherwise it degrades to :meth:`lease`), never from
        *worker* itself, and safe because range evaluation is idempotent —
        the victim's eventual completion of the same range is accepted as a
        duplicate of byte-identical records.  Returns ``None`` when there
        is nothing to steal.
        """
        if not worker:
            raise SchedulerError("a steal needs a non-empty worker id")
        self.expire(now)
        if self._pending:
            index = self._pending.popleft()
            return self._grant(index, worker, now)
        victims = [
            lease for lease in self._live.values() if lease.worker != worker
        ]
        if not victims:
            return None
        victim = min(victims, key=lambda lease: (lease.granted_at, lease.lease_id))
        victim.state = LEASE_REVOKED
        del self._live[victim.range_index]
        self.stolen += 1
        return self._grant(
            victim.range_index, worker, now, stolen_from=victim.worker
        )

    def renew(self, lease_id: str, now: float) -> bool:
        """Extend a live lease's deadline; ``False`` once it is no longer live.

        A ``False`` renewal tells the worker its range was reclaimed (it
        expired, was stolen, or the range is already done) — the worker may
        abandon the evaluation or finish and complete late, both are safe.
        """
        lease = self._lease_for(lease_id)
        self.expire(now)
        if lease.state != LEASE_LIVE:
            return False
        lease.deadline = now + self.lease_timeout
        return True

    def complete(
        self,
        lease_id: str,
        now: float,
        store_path: str = "",
    ) -> str:
        """Account one range completion; returns the disposition.

        ``completed`` — the live lease finished its range; ``late`` — the
        lease had expired or been revoked but the range was still open, so
        the (byte-identical) result is accepted anyway; ``duplicate`` — the
        range was already done, nothing changes.  First accepted completion
        wins the accounting; every range is completed exactly once.
        """
        lease = self._lease_for(lease_id)
        self.expire(now)
        index = lease.range_index
        if self._status[index] == RANGE_DONE:
            self.duplicates += 1
            return "duplicate"
        disposition = "completed" if lease.state == LEASE_LIVE else "late"
        if lease.state == LEASE_LIVE:
            del self._live[index]
        else:
            self.late += 1
            # The range is pending (after expiry) or held by a thief whose
            # work just became redundant; either way it leaves that state.
            if index in self._live:
                self._live[index].state = LEASE_REVOKED
                del self._live[index]
            try:
                self._pending.remove(index)
            except ValueError:
                pass
        lease.state = LEASE_COMPLETED
        self._status[index] = RANGE_DONE
        self._completions[index] = Completion(
            range_index=index,
            lease_id=lease_id,
            worker=lease.worker,
            disposition=disposition,
            store_path=store_path,
        )
        self.completed += 1
        return disposition

    def _lease_for(self, lease_id: str) -> Lease:
        lease = self._leases.get(lease_id)
        if lease is None:
            raise SchedulerError(f"unknown lease id {lease_id!r}")
        return lease

    def lease_info(self, lease_id: str) -> Lease:
        """The lease behind *lease_id* (raising on unknown ids)."""
        return self._lease_for(lease_id)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def done(self) -> bool:
        """Whether every range has been completed."""
        return len(self._completions) == self.range_count

    def live_leases(self) -> List[Lease]:
        """Every live lease, in range order."""
        return [self._live[index] for index in sorted(self._live)]

    def completions(self) -> List[Completion]:
        """The accounting: exactly one record per completed range."""
        return [self._completions[index] for index in sorted(self._completions)]

    def store_paths(self) -> Dict[int, str]:
        """Registered shard-store path per completed range."""
        return {
            index: completion.store_path
            for index, completion in sorted(self._completions.items())
            if completion.store_path
        }

    def progress(self) -> Dict[str, object]:
        """Counters + per-state range counts for ``/v1/scheduler/status``."""
        counts = {RANGE_PENDING: 0, RANGE_LEASED: 0, RANGE_DONE: 0}
        for status in self._status:
            counts[status] += 1
        return {
            "range_count": self.range_count,
            "lease_timeout_s": self.lease_timeout,
            "pending": counts[RANGE_PENDING],
            "leased": counts[RANGE_LEASED],
            "done": counts[RANGE_DONE],
            "granted": self.granted,
            "reissued": self.reissued,
            "stolen": self.stolen,
            "expired": self.expired,
            "completed": self.completed,
            "late": self.late,
            "duplicates": self.duplicates,
            "all_done": self.done,
        }

    def describe(self) -> str:
        """One-line human readable summary."""
        progress = self.progress()
        return (
            f"scheduler over {self.range_count} range(s): "
            f"{progress['done']} done, {progress['leased']} leased, "
            f"{progress['pending']} pending ({self.reissued} reissued, "
            f"{self.stolen} stolen, {self.expired} expired, "
            f"{self.duplicates} duplicate completion(s))"
        )

    # ------------------------------------------------------------------
    # Snapshot round-trip
    # ------------------------------------------------------------------

    def to_json_dict(self) -> Dict[str, object]:
        """The whole scheduler state, JSON-stable and round-trippable."""
        return {
            "range_count": self.range_count,
            "lease_timeout_s": self.lease_timeout,
            "status": list(self._status),
            "pending": list(self._pending),
            "leases": [
                self._leases[lease_id].to_json_dict()
                for lease_id in sorted(self._leases)
            ],
            "completions": [
                completion.to_json_dict()
                for completion in self.completions()
            ],
            "next_lease_seq": self._peek_seq(),
            "counters": {
                "granted": self.granted,
                "reissued": self.reissued,
                "stolen": self.stolen,
                "expired": self.expired,
                "completed": self.completed,
                "late": self.late,
                "duplicates": self.duplicates,
            },
        }

    def _peek_seq(self) -> int:
        """The next lease sequence number, without consuming it."""
        value = next(self._seq)
        self._seq = itertools.chain([value], self._seq)
        return value

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "ShardScheduler":
        """Rebuild a scheduler from its snapshot."""
        try:
            scheduler = cls(
                range_count=int(data["range_count"]),  # type: ignore[arg-type]
                lease_timeout=float(data["lease_timeout_s"]),  # type: ignore[arg-type]
            )
            scheduler._status = [str(status) for status in data["status"]]  # type: ignore[union-attr]
            if len(scheduler._status) != scheduler.range_count:
                raise ValueError("status list length != range count")
            scheduler._pending = deque(
                int(index) for index in data["pending"]  # type: ignore[union-attr]
            )
            scheduler._live = {}
            scheduler._leases = {}
            for item in data["leases"]:  # type: ignore[union-attr]
                lease = Lease.from_json_dict(item)
                scheduler._leases[lease.lease_id] = lease
                if lease.state == LEASE_LIVE:
                    if lease.range_index in scheduler._live:
                        raise ValueError(
                            f"two live leases on range {lease.range_index}"
                        )
                    scheduler._live[lease.range_index] = lease
            scheduler._completions = {}
            for item in data["completions"]:  # type: ignore[union-attr]
                completion = Completion(
                    range_index=int(item["range_index"]),
                    lease_id=str(item["lease_id"]),
                    worker=str(item["worker"]),
                    disposition=str(item["disposition"]),
                    store_path=str(item.get("store_path", "")),
                )
                scheduler._completions[completion.range_index] = completion
            scheduler._seq = itertools.count(int(data["next_lease_seq"]))  # type: ignore[arg-type]
            counters = dict(data.get("counters", {}))  # type: ignore[arg-type]
            for name in (
                "granted", "reissued", "stolen", "expired",
                "completed", "late", "duplicates",
            ):
                setattr(scheduler, name, int(counters.get(name, 0)))
            return scheduler
        except (KeyError, TypeError, ValueError) as error:
            raise SchedulerError(
                f"malformed scheduler snapshot: {error}"
            ) from error


# ---------------------------------------------------------------------------
# The published run description
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ExplorationPlan:
    """Everything a remote worker needs to evaluate any range of the run.

    A pure value: the plan (not the scheduler) is what makes the merged
    frontier deterministic — the shard store of range *i* is a function of
    the plan and *i* alone, so any worker can produce it.
    """

    space: SearchSpace
    range_count: int
    strategy: str = "grid"
    budget: int = 64
    batch_size: int = 8
    seed: int = 0
    objectives: tuple = ("latency", "throughput")
    eval_blocks: int = 16384

    def __post_init__(self) -> None:
        if self.range_count < 1:
            raise SchedulerError(
                f"range count must be >= 1, got {self.range_count}"
            )
        assert_shardable(self.strategy)

    @classmethod
    def from_config(
        cls, space: SearchSpace, config: ExploreConfig, range_count: int
    ) -> "ExplorationPlan":
        """Build a plan from an :class:`ExploreConfig` (worker-local fields
        like ``workers`` and ``cache_dir`` deliberately do not travel)."""
        return cls(
            space=space,
            range_count=range_count,
            strategy=config.strategy,
            budget=config.budget,
            batch_size=config.batch_size,
            seed=config.seed,
            objectives=tuple(config.objectives),
            eval_blocks=config.eval_blocks,
        )

    def explore_config(
        self,
        workers: int = 0,
        cache_dir: Optional[Union[str, Path]] = None,
    ) -> ExploreConfig:
        """The worker-side :class:`ExploreConfig` this plan prescribes."""
        return ExploreConfig(
            strategy=self.strategy,
            budget=self.budget,
            batch_size=self.batch_size,
            seed=self.seed,
            objectives=tuple(self.objectives),
            eval_blocks=self.eval_blocks,
            workers=workers,
            cache_dir=cache_dir,
        )

    def to_json_dict(self) -> Dict[str, object]:
        """Wire form of the plan (round-trips via :meth:`from_json_dict`)."""
        return {
            "space": self.space.to_json_dict(),
            "range_count": self.range_count,
            "strategy": self.strategy,
            "budget": self.budget,
            "batch_size": self.batch_size,
            "seed": self.seed,
            "objectives": list(self.objectives),
            "eval_blocks": self.eval_blocks,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "ExplorationPlan":
        try:
            return cls(
                space=SearchSpace.from_json_dict(data["space"]),  # type: ignore[arg-type]
                range_count=int(data["range_count"]),  # type: ignore[arg-type]
                strategy=str(data["strategy"]),
                budget=int(data["budget"]),  # type: ignore[arg-type]
                batch_size=int(data["batch_size"]),  # type: ignore[arg-type]
                seed=int(data["seed"]),  # type: ignore[arg-type]
                objectives=tuple(
                    str(name) for name in data["objectives"]  # type: ignore[union-attr]
                ),
                eval_blocks=int(data["eval_blocks"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as error:
            raise SchedulerError(f"malformed exploration plan: {error}") from error

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"{self.strategy} exploration of {self.space.size}-point space, "
            f"budget {self.budget}, seed {self.seed}, cut into "
            f"{self.range_count} range(s)"
        )


# ---------------------------------------------------------------------------
# The pull-worker loop (repro explore --scheduler URL)
# ---------------------------------------------------------------------------

@dataclass
class ScheduledWorkerResult:
    """What one pull worker did over its whole scheduler session."""

    worker: str
    ranges_completed: int = 0
    ranges_stolen: int = 0  # ranges this worker obtained via /steal
    ranges_duplicate: int = 0  # completions the scheduler already had
    ranges_late: int = 0  # completions accepted after lease loss
    points_evaluated: int = 0
    flow_evaluated: int = 0
    failures: int = 0
    wall_time: float = 0.0

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"worker {self.worker}: {self.ranges_completed} range(s) completed "
            f"({self.ranges_stolen} stolen, {self.ranges_late} late, "
            f"{self.ranges_duplicate} duplicate) — {self.points_evaluated} "
            f"point(s), {self.flow_evaluated} flow job(s), "
            f"{self.failures} failure(s) in {self.wall_time:.2f} s"
        )


def default_worker_id() -> str:
    """A worker id unique enough across machines and processes."""
    import socket

    return f"{socket.gethostname()}-{os.getpid()}"


class _LeaseRenewer:
    """Background renewal of one lease while its range evaluates."""

    def __init__(self, client, lease_id: str, interval: float) -> None:
        self._client = client
        self._lease_id = lease_id
        self._interval = max(0.05, interval)
        self._stop = threading.Event()
        self.lost = False
        self._thread = threading.Thread(
            target=self._run, name=f"renew-{lease_id}", daemon=True
        )

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                if not self._client.scheduler_renew(self._lease_id)["live"]:
                    self.lost = True
                    return
            except Exception:  # noqa: BLE001 - transport hiccups never kill work
                pass  # the next renewal (or the lease timeout) decides

    def __enter__(self) -> "_LeaseRenewer":
        self._thread.start()
        return self

    def __exit__(self, *_exc) -> None:
        self._stop.set()
        self._thread.join(timeout=5.0)


def run_scheduled_worker(
    url: str,
    worker_id: Optional[str] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    work_dir: Optional[Union[str, Path]] = None,
    poll_s: float = 0.2,
    shared_store: Optional[Union[str, Path]] = None,
    range_delay_s: Optional[float] = None,
    max_ranges: Optional[int] = None,
    timeout_s: float = 600.0,
) -> ScheduledWorkerResult:
    """Pull ranges from the scheduler at *url* until the run is done.

    Each leased range runs the plan's full strategy trajectory as one
    :class:`~repro.explore.shard.ShardSpec` worker (evaluating only the
    range's points) into a worker-local shard store, then returns the store
    to the scheduler — streamed inline by default, or registered by path
    when *shared_store* names the scheduler's store base on a shared
    filesystem.  The lease is renewed from a background thread for as long
    as the evaluation runs; a lost lease never aborts the evaluation (the
    result is byte-identical wherever it is computed, so a late completion
    is still accepted, or counted as a duplicate).

    *range_delay_s* (or the :data:`DELAY_ENV` environment variable) sleeps
    before each range evaluation — the hook the straggler/chaos tests use
    to make one worker slow.  *max_ranges* bounds how many ranges this
    worker will run (``None`` = until the whole run is done).
    """
    from .engine import Explorer
    from .shard import ShardSpec, shard_store_path
    from .store import RunStore
    from ..serve.client import FlowServiceClient, ServeClientError

    start = time.perf_counter()
    worker = worker_id or default_worker_id()
    if range_delay_s is None:
        delay_text = os.environ.get(DELAY_ENV, "")
        range_delay_s = float(delay_text) if delay_text else 0.0
    client = FlowServiceClient(url)
    plan = ExplorationPlan.from_json_dict(client.scheduler_plan()["plan"])
    lease_timeout = float(client.scheduler_status()["lease_timeout_s"])
    config = plan.explore_config(workers=0, cache_dir=cache_dir)
    if work_dir is None:
        work_dir = Path(f".repro-explore/worker-{worker}")
    base = (
        Path(shared_store) if shared_store is not None
        else Path(work_dir) / "run.jsonl"
    )
    result = ScheduledWorkerResult(worker=worker)
    deadline = time.monotonic() + timeout_s

    while max_ranges is None or result.ranges_completed < max_ranges:
        if time.monotonic() > deadline:
            raise SchedulerError(
                f"worker {worker} exceeded its {timeout_s:.0f} s session limit"
            )
        # A transport failure mid-session means the daemon is gone — the
        # schedule either finished (it exits on completion) or died; either
        # way there is nothing left for this worker to do.
        try:
            ack = client.scheduler_lease(worker)
            if not ack.get("granted"):
                if ack.get("all_done"):
                    break
                ack = client.scheduler_steal(worker)
        except ServeClientError as error:
            if error.status == 0:
                break
            raise
        if not ack.get("granted"):
            if ack.get("all_done"):
                break
            time.sleep(max(0.01, float(ack.get("retry_after_s", poll_s))))
            continue
        if ack.get("stolen_from"):
            result.ranges_stolen += 1
        lease_id = str(ack["lease_id"])
        index = int(ack["range_index"])
        if range_delay_s > 0:
            time.sleep(range_delay_s)
        store_path = shard_store_path(base, index, plan.range_count)
        with _LeaseRenewer(client, lease_id, lease_timeout / 3.0):
            with RunStore(
                store_path,
                plan.space.fingerprint(),
                resume=store_path.exists(),
                context={"eval_blocks": config.eval_blocks},
            ) as store:
                shard_result = Explorer(
                    plan.space,
                    config=config,
                    store=store,
                    shard=ShardSpec(index, plan.range_count),
                ).run()
        result.points_evaluated += (
            shard_result.visited - shard_result.off_shard
        )
        result.flow_evaluated += shard_result.flow_evaluated
        result.failures += shard_result.failures
        try:
            if shared_store is not None:
                done = client.scheduler_complete(
                    lease_id, store_path=str(store_path)
                )
            else:
                done = client.scheduler_complete(
                    lease_id,
                    store_data=store_path.read_text(encoding="utf-8"),
                )
        except ServeClientError as error:
            if error.status == 0:
                break  # daemon gone; the local shard store is still on disk
            raise
        disposition = str(done.get("disposition"))
        result.ranges_completed += 1
        if disposition == "duplicate":
            result.ranges_duplicate += 1
        elif disposition == "late":
            result.ranges_late += 1
        if done.get("all_done"):
            break

    result.wall_time = time.perf_counter() - start
    return result
