"""Multi-objective criteria the exploration optimises.

Each :class:`Objective` names one scalar quantity computed from a finished
:class:`~repro.synth.rtr_design.RtrDesign` plus its design point, and the
direction it improves in.  The built-in registry covers the four axes of
the paper's trade-off discussion:

* ``latency`` (min) — ``N*CT + sum_p d_p``, the partitioner's objective;
* ``area`` (max) — mean CLB utilisation across the temporal partitions;
* ``overhead`` (min) — the reconfiguration share of wall-clock time at the
  evaluation workload size, under the point's own FDH/IDH sequencing;
* ``throughput`` (max) — loop iterations per second at the evaluation
  workload size, under the point's own sequencing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence, Tuple

from ..errors import ExplorationError
from ..fission.strategies import SequencingStrategy, execution_time
from ..partition.metrics import compute_metrics
from ..synth.flow_engine import FlowReport
from ..synth.rtr_design import RtrDesign
from .space import DesignPoint

#: Loop iterations the overhead/throughput objectives are evaluated at when
#: the caller does not choose a workload size (the paper's Table-2 midpoint
#: scale: enough blocks that k-batching matters, small enough to stay fast).
DEFAULT_EVAL_BLOCKS = 16_384


@dataclass(frozen=True)
class Objective:
    """One optimisation criterion: a named scalar and its direction."""

    name: str
    direction: str  # "min" or "max"
    description: str
    compute: Callable[[RtrDesign, DesignPoint, int], float]

    def __post_init__(self) -> None:
        if self.direction not in ("min", "max"):
            raise ExplorationError(
                f"objective {self.name!r} direction must be 'min' or 'max', "
                f"got {self.direction!r}"
            )

    @property
    def minimise(self) -> bool:
        """Whether smaller values are better."""
        return self.direction == "min"

    def better(self, a: float, b: float) -> bool:
        """Whether value *a* is strictly better than *b*."""
        return a < b if self.minimise else a > b


def _latency(design: RtrDesign, point: DesignPoint, eval_blocks: int) -> float:
    return design.partitioning.total_latency


def _area(design: RtrDesign, point: DesignPoint, eval_blocks: int) -> float:
    metrics = compute_metrics(design.partitioning, design.system.resource_capacity)
    return metrics.mean_utilisation


def _breakdown(design: RtrDesign, point: DesignPoint, eval_blocks: int):
    strategy = SequencingStrategy(point.sequencing)
    return execution_time(strategy, design.timing_spec, eval_blocks, design.system)


def _overhead(design: RtrDesign, point: DesignPoint, eval_blocks: int) -> float:
    breakdown = _breakdown(design, point, eval_blocks)
    if breakdown.total <= 0:
        return 0.0
    return breakdown.reconfiguration / breakdown.total


def _throughput(design: RtrDesign, point: DesignPoint, eval_blocks: int) -> float:
    breakdown = _breakdown(design, point, eval_blocks)
    if breakdown.total <= 0:
        return 0.0
    return eval_blocks / breakdown.total


#: The built-in objective registry, keyed by name.
OBJECTIVES: Dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective(
            "latency",
            "min",
            "total per-pass latency N*CT + sum_p d_p (seconds)",
            _latency,
        ),
        Objective(
            "area",
            "max",
            "mean CLB utilisation across temporal partitions (0..1)",
            _area,
        ),
        Objective(
            "overhead",
            "min",
            "reconfiguration share of execution time at the evaluation size",
            _overhead,
        ),
        Objective(
            "throughput",
            "max",
            "loop iterations per second at the evaluation size",
            _throughput,
        ),
    )
}


def objective_names() -> List[str]:
    """Sorted names of every registered objective."""
    return sorted(OBJECTIVES)


def resolve_objectives(names: Sequence[str]) -> Tuple[Objective, ...]:
    """Look up objectives by name, preserving the caller's order."""
    if not names:
        raise ExplorationError("at least one objective is required")
    resolved = []
    for name in names:
        try:
            resolved.append(OBJECTIVES[name])
        except KeyError:
            known = ", ".join(objective_names())
            raise ExplorationError(f"unknown objective {name!r}; known: {known}")
    if len({objective.name for objective in resolved}) != len(resolved):
        raise ExplorationError(f"duplicate objectives in {list(names)}")
    return tuple(resolved)


def evaluate_report(
    report: FlowReport,
    point: DesignPoint,
    objectives: Sequence[Objective],
    eval_blocks: int = DEFAULT_EVAL_BLOCKS,
) -> Dict[str, float]:
    """Objective values of one finished flow report.

    Raises :class:`~repro.errors.ExplorationError` when the report carries
    no design — failed jobs never produce objective values.
    """
    if report.design is None:
        raise ExplorationError(
            f"flow job {report.job.name!r} failed at "
            f"{report.failed_stage or 'unknown'}; no objectives to evaluate"
        )
    if eval_blocks < 1:
        raise ExplorationError("eval_blocks must be at least 1")
    return {
        objective.name: float(objective.compute(report.design, point, eval_blocks))
        for objective in objectives
    }


def objective_vector(
    metrics: Dict[str, float], objectives: Sequence[Objective]
) -> Tuple[float, ...]:
    """The metric values in objective order (raising on a missing metric)."""
    try:
        return tuple(metrics[objective.name] for objective in objectives)
    except KeyError as error:
        raise ExplorationError(f"metrics are missing objective {error}") from error
