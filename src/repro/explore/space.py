"""The design space: points and their deterministic enumeration.

A :class:`DesignPoint` names one candidate design along the five axes the
paper's evaluation walks by hand: the workload (plus its parameterisation),
the target system, the reconfiguration time, the temporal partitioner, and
the FDH/IDH sequencing strategy.  A :class:`SearchSpace` is the cartesian
product of chosen values along those axes, with a *mixed-radix index* so the
space enumerates deterministically (``point_at(i)``), samples reproducibly
from a seeded RNG, and steps to neighbours for the local-search strategies.

Every point carries a content fingerprint (sha256 over a canonical JSON
form, floats bit-exact via ``float.hex``) — the key the run store and the
Pareto front use, stable across processes and interpreter invocations.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..errors import ExplorationError

#: Version tag baked into every point/space fingerprint; bump when the
#: canonical form (or the meaning of a stored record) changes.
SPACE_VERSION = 1

#: Sentinel system name meaning "the workload's own default system".
WORKLOAD_DEFAULT_SYSTEM = "workload-default"


def _canonical_value(value: object) -> object:
    """JSON-stable form of an axis value (floats bit-exact)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        return float(value).hex()
    if isinstance(value, (int, str)):
        return value
    return repr(value)


@dataclass(frozen=True)
class DesignPoint:
    """One candidate design: a coordinate along every search axis.

    ``params`` is a sorted tuple of ``(name, value)`` pairs so the point is
    hashable and its canonical form is insertion-order independent; use
    :meth:`create` to build one from a plain mapping.
    """

    workload: str
    params: Tuple[Tuple[str, object], ...] = ()
    system: str = WORKLOAD_DEFAULT_SYSTEM
    ct: Optional[float] = None  # reconfiguration time in seconds; None = system default
    partitioner: str = "ilp"
    sequencing: str = "idh"

    @classmethod
    def create(
        cls,
        workload: str,
        params: Optional[Mapping[str, object]] = None,
        system: str = WORKLOAD_DEFAULT_SYSTEM,
        ct: Optional[float] = None,
        partitioner: str = "ilp",
        sequencing: str = "idh",
    ) -> "DesignPoint":
        """Build a point from a plain parameter mapping (sorted internally)."""
        pairs = tuple(sorted((params or {}).items()))
        return cls(
            workload=workload,
            params=pairs,
            system=system,
            ct=ct,
            partitioner=partitioner,
            sequencing=sequencing,
        )

    def params_dict(self) -> Dict[str, object]:
        """The parameterisation as a plain dict."""
        return dict(self.params)

    def canonical_dict(self) -> Dict[str, object]:
        """Canonical (sorted, JSON-stable, bit-exact) form of this point."""
        return {
            "version": SPACE_VERSION,
            "workload": self.workload,
            "params": [[key, _canonical_value(value)] for key, value in self.params],
            "system": self.system,
            "ct": None if self.ct is None else float(self.ct).hex(),
            "partitioner": self.partitioner,
            "sequencing": self.sequencing,
        }

    def fingerprint(self) -> str:
        """Stable sha256 hex digest of the canonical form."""
        encoded = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form for the run store (round-trips via :meth:`from_json_dict`)."""
        return {
            "workload": self.workload,
            "params": [[key, value] for key, value in self.params],
            "system": self.system,
            "ct": self.ct,
            "partitioner": self.partitioner,
            "sequencing": self.sequencing,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "DesignPoint":
        """Rebuild a point from its :meth:`to_json_dict` form."""
        try:
            return cls.create(
                workload=str(data["workload"]),
                params={str(key): value for key, value in data.get("params", [])},
                system=str(data.get("system", WORKLOAD_DEFAULT_SYSTEM)),
                ct=data.get("ct"),  # type: ignore[arg-type]
                partitioner=str(data.get("partitioner", "ilp")),
                sequencing=str(data.get("sequencing", "idh")),
            )
        except (KeyError, TypeError, AttributeError) as error:
            raise ExplorationError(f"malformed design-point record: {error}") from error

    @property
    def label(self) -> str:
        """Compact human-readable identifier."""
        parts = [self.workload]
        if self.params:
            rendered = ",".join(f"{key}={value}" for key, value in self.params)
            parts[0] = f"{self.workload}[{rendered}]"
        if self.system != WORKLOAD_DEFAULT_SYSTEM:
            parts.append(self.system)
        if self.ct is not None:
            parts.append(f"ct={self.ct * 1e3:g}ms")
        parts.append(self.partitioner)
        parts.append(self.sequencing)
        return "/".join(parts)


@dataclass(frozen=True)
class SearchSpace:
    """The cartesian product of axis values, with deterministic indexing.

    Axes (in index order, slowest-varying first): workload variants, target
    systems, reconfiguration times, partitioners, sequencing strategies.
    ``workloads`` pairs each workload name with one parameterisation; a
    swept workload contributes one entry per variant.
    """

    workloads: Tuple[Tuple[str, Tuple[Tuple[str, object], ...]], ...]
    systems: Tuple[str, ...] = (WORKLOAD_DEFAULT_SYSTEM,)
    ct_values: Tuple[Optional[float], ...] = (None,)
    partitioners: Tuple[str, ...] = ("ilp",)
    sequencings: Tuple[str, ...] = ("idh",)
    #: Per-axis value lists in index order, derived once in __post_init__.
    _axes: Tuple[Tuple[object, ...], ...] = field(
        default=(), repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for name, values in (
            ("workloads", self.workloads),
            ("systems", self.systems),
            ("ct_values", self.ct_values),
            ("partitioners", self.partitioners),
            ("sequencings", self.sequencings),
        ):
            if not values:
                raise ExplorationError(f"search-space axis {name!r} must not be empty")
            if len(set(values)) != len(values):
                raise ExplorationError(
                    f"search-space axis {name!r} contains duplicate values"
                )
        # Sequencing is consumed deep inside objective evaluation (after the
        # flow work is already done), so a bad value must be caught here.
        from ..fission.strategies import SequencingStrategy

        known = {strategy.value for strategy in SequencingStrategy}
        unknown = [value for value in self.sequencings if value not in known]
        if unknown:
            raise ExplorationError(
                f"unknown sequencing strategies {unknown}; known: {sorted(known)}"
            )
        object.__setattr__(
            self,
            "_axes",
            (
                tuple(self.workloads),
                tuple(self.systems),
                tuple(self.ct_values),
                tuple(self.partitioners),
                tuple(self.sequencings),
            ),
        )

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def for_workloads(
        cls,
        names: Sequence[str],
        variants: bool = False,
        systems: Sequence[str] = (WORKLOAD_DEFAULT_SYSTEM,),
        ct_values: Sequence[Optional[float]] = (None,),
        partitioners: Sequence[str] = ("ilp",),
        sequencings: Sequence[str] = ("idh",),
    ) -> "SearchSpace":
        """Build a space over registered workloads (optionally their sweeps)."""
        from ..workloads import get_workload

        axis: List[Tuple[str, Tuple[Tuple[str, object], ...]]] = []
        for name in names:
            workload = get_workload(name)
            if variants:
                for variant in workload.variants():
                    axis.append((workload.name, tuple(sorted(variant.params.items()))))
            else:
                axis.append(
                    (workload.name, tuple(sorted(workload.default_params.items())))
                )
        return cls(
            workloads=tuple(axis),
            systems=tuple(systems),
            ct_values=tuple(ct_values),
            partitioners=tuple(partitioners),
            sequencings=tuple(sequencings),
        )

    # ------------------------------------------------------------------
    # Indexing
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of distinct points in the space."""
        total = 1
        for axis in self._axes:
            total *= len(axis)
        return total

    def __len__(self) -> int:
        return self.size

    def point_at(self, index: int) -> DesignPoint:
        """The point at mixed-radix *index* (0-based, deterministic)."""
        if not 0 <= index < self.size:
            raise ExplorationError(f"point index {index} outside 0..{self.size - 1}")
        coordinates: List[int] = []
        remainder = index
        for axis in reversed(self._axes):
            coordinates.append(remainder % len(axis))
            remainder //= len(axis)
        coordinates.reverse()
        return self._point_from_coordinates(coordinates)

    def _point_from_coordinates(self, coordinates: Sequence[int]) -> DesignPoint:
        workload_name, params = self.workloads[coordinates[0]]
        return DesignPoint(
            workload=workload_name,
            params=params,
            system=self.systems[coordinates[1]],
            ct=self.ct_values[coordinates[2]],
            partitioner=self.partitioners[coordinates[3]],
            sequencing=self.sequencings[coordinates[4]],
        )

    def coordinates_of(self, point: DesignPoint) -> Tuple[int, ...]:
        """Per-axis indices of *point* (raising when not in the space)."""
        try:
            return (
                self.workloads.index((point.workload, point.params)),
                self.systems.index(point.system),
                self.ct_values.index(point.ct),
                self.partitioners.index(point.partitioner),
                self.sequencings.index(point.sequencing),
            )
        except ValueError:
            raise ExplorationError(
                f"design point {point.label!r} is not in this search space"
            )

    def index_of(self, point: DesignPoint) -> int:
        """The mixed-radix index of *point*."""
        index = 0
        for coordinate, axis in zip(self.coordinates_of(point), self._axes):
            index = index * len(axis) + coordinate
        return index

    def enumerate(self) -> Iterator[DesignPoint]:
        """Every point, in deterministic index order."""
        for index in range(self.size):
            yield self.point_at(index)

    # ------------------------------------------------------------------
    # Sampling and neighbourhoods
    # ------------------------------------------------------------------

    def random_point(self, rng: random.Random) -> DesignPoint:
        """One uniformly sampled point (reproducible given the RNG state)."""
        return self.point_at(rng.randrange(self.size))

    def neighbours(
        self, point: DesignPoint, rng: random.Random, count: int = 1
    ) -> List[DesignPoint]:
        """Up to *count* distinct single-axis mutations of *point*.

        Ordered numeric axes (the reconfiguration times) step to an adjacent
        value; categorical axes jump to a uniformly chosen different value.
        A point whose every axis is singleton has no neighbours.
        """
        coordinates = list(self.coordinates_of(point))
        mutable = [i for i, axis in enumerate(self._axes) if len(axis) > 1]
        if not mutable:
            return []
        seen = {tuple(coordinates)}
        found: List[DesignPoint] = []
        attempts = 0
        limit = max(16, 8 * count)
        while len(found) < count and attempts < limit:
            attempts += 1
            axis_index = rng.choice(mutable)
            axis = self._axes[axis_index]
            candidate = list(coordinates)
            if axis_index == 2:  # CT axis: ordered, step to an adjacent value
                step = rng.choice((-1, 1))
                candidate[axis_index] = min(
                    len(axis) - 1, max(0, coordinates[axis_index] + step)
                )
            else:
                candidate[axis_index] = rng.randrange(len(axis))
            key = tuple(candidate)
            if key in seen:
                continue
            seen.add(key)
            found.append(self._point_from_coordinates(candidate))
        return found

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------

    def canonical_dict(self) -> Dict[str, object]:
        """Canonical (JSON-stable) description of the whole space."""
        return {
            "version": SPACE_VERSION,
            "workloads": [
                [name, [[key, _canonical_value(value)] for key, value in params]]
                for name, params in self.workloads
            ],
            "systems": list(self.systems),
            "ct_values": [
                None if ct is None else float(ct).hex() for ct in self.ct_values
            ],
            "partitioners": list(self.partitioners),
            "sequencings": list(self.sequencings),
        }

    def fingerprint(self) -> str:
        """Stable sha256 hex digest of the canonical space description."""
        encoded = json.dumps(
            self.canonical_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(encoded.encode("utf-8")).hexdigest()

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form of the space (round-trips via :meth:`from_json_dict`).

        Unlike :meth:`canonical_dict` (fingerprint material, floats as hex)
        this keeps values as native JSON so a remote worker can rebuild the
        exact space — Python's JSON float round-trip is exact, so the
        rebuilt space has an identical :meth:`fingerprint`.
        """
        return {
            "workloads": [
                [name, [[key, value] for key, value in params]]
                for name, params in self.workloads
            ],
            "systems": list(self.systems),
            "ct_values": list(self.ct_values),
            "partitioners": list(self.partitioners),
            "sequencings": list(self.sequencings),
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "SearchSpace":
        """Rebuild a space from its :meth:`to_json_dict` form."""
        try:
            return cls(
                workloads=tuple(
                    (
                        str(name),
                        tuple((str(key), value) for key, value in params),
                    )
                    for name, params in data["workloads"]  # type: ignore[union-attr]
                ),
                systems=tuple(str(system) for system in data["systems"]),  # type: ignore[union-attr]
                ct_values=tuple(
                    None if ct is None else float(ct)
                    for ct in data["ct_values"]  # type: ignore[union-attr]
                ),
                partitioners=tuple(
                    str(name) for name in data["partitioners"]  # type: ignore[union-attr]
                ),
                sequencings=tuple(
                    str(name) for name in data["sequencings"]  # type: ignore[union-attr]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ExplorationError(
                f"malformed search-space record: {error}"
            ) from error

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"search space of {self.size} points: {len(self.workloads)} workload "
            f"variant(s) x {len(self.systems)} system(s) x {len(self.ct_values)} "
            f"CT value(s) x {len(self.partitioners)} partitioner(s) x "
            f"{len(self.sequencings)} sequencing(s)"
        )
