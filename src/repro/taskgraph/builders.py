"""Builders and generators for task graphs.

Besides programmatic helpers (pipelines, fork-join shapes), this module
provides:

* :func:`figure4_example` — the 7-task, 2-partition worked example the paper
  uses to illustrate per-partition delay estimation (Figure 4);
* :func:`random_dsp_task_graph` — a reproducible generator of layered,
  DSP-looking task graphs used by the synthetic benchmarks and the
  property-based tests.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from ..errors import SpecificationError
from ..units import ns
from .graph import TaskGraph
from .task import Task, clb_cost


def linear_pipeline(
    stage_clbs: Sequence[int],
    stage_delays: Sequence[float],
    words_per_edge: int = 16,
    env_input_words: int = 16,
    env_output_words: int = 16,
    name: str = "pipeline",
) -> TaskGraph:
    """A linear chain of tasks, stage ``i`` feeding stage ``i+1``.

    This is the canonical shape for image-processing pipelines (filter ->
    transform -> quantise ...), and the easiest shape to reason about in
    tests: the minimum-latency partitioning of a chain is always a set of
    contiguous chunks.
    """
    if len(stage_clbs) != len(stage_delays):
        raise SpecificationError("stage_clbs and stage_delays must have equal length")
    if not stage_clbs:
        raise SpecificationError("pipeline must have at least one stage")
    graph = TaskGraph(name)
    previous: Optional[str] = None
    last_index = len(stage_clbs) - 1
    for index, (clbs_needed, delay) in enumerate(zip(stage_clbs, stage_delays)):
        task_name = f"stage{index}"
        graph.add_task(
            Task(task_name, cost=clb_cost(clbs_needed, delay), task_type="stage"),
            env_input_words=env_input_words if index == 0 else 0,
            env_output_words=env_output_words if index == last_index else 0,
        )
        if previous is not None:
            graph.add_edge(previous, task_name, words=words_per_edge)
        previous = task_name
    return graph


def fork_join(
    branch_count: int = 4,
    branch_clbs: int = 100,
    branch_delay: float = ns(200),
    join_clbs: int = 150,
    join_delay: float = ns(300),
    words_per_edge: int = 8,
    name: str = "fork_join",
) -> TaskGraph:
    """A source task fanning out to *branch_count* branches joined by a sink."""
    if branch_count < 1:
        raise SpecificationError("branch_count must be >= 1")
    graph = TaskGraph(name)
    graph.add_task(
        Task("source", cost=clb_cost(branch_clbs, branch_delay), task_type="source"),
        env_input_words=words_per_edge,
    )
    graph.add_task(
        Task("sink", cost=clb_cost(join_clbs, join_delay), task_type="sink"),
        env_output_words=words_per_edge,
    )
    for index in range(branch_count):
        branch = f"branch{index}"
        graph.add_task(
            Task(branch, cost=clb_cost(branch_clbs, branch_delay), task_type="branch")
        )
        graph.add_edge("source", branch, words=words_per_edge)
        graph.add_edge(branch, "sink", words=words_per_edge)
    return graph


def figure4_example() -> TaskGraph:
    """The delay-estimation example of the paper's Figure 4.

    Two temporal partitions are drawn in the figure; partition 1 contains
    three root-to-leaf paths with delays 350 ns, 400 ns and 150 ns (so its
    delay is 400 ns) and partition 2 has a maximum path delay of 300 ns.  The
    figure does not label every node, so we reconstruct the smallest graph
    with exactly those path delays:

    * partition 1: ``a(100) -> b(250)`` (350 ns), ``a(100) -> c(300)``
      (400 ns), ``d(150)`` alone (150 ns);
    * partition 2: ``e(100) -> f(200)`` (300 ns) fed by partition 1, plus
      ``g(100)`` fed by ``d``.

    The intended mapping (used by tests and the Figure-4 bench) is stored in
    each task's metadata under ``"figure4_partition"``.
    """
    graph = TaskGraph("figure4")
    specs = [
        ("a", 100, ns(100), 1),
        ("b", 100, ns(250), 1),
        ("c", 100, ns(300), 1),
        ("d", 100, ns(150), 1),
        ("e", 100, ns(100), 2),
        ("f", 100, ns(200), 2),
        ("g", 100, ns(100), 2),
    ]
    for name, clbs_needed, delay, partition in specs:
        graph.add_task(
            Task(
                name,
                cost=clb_cost(clbs_needed, delay),
                metadata={"figure4_partition": partition},
            ),
            env_input_words=4 if name in ("a", "d") else 0,
            env_output_words=4 if name in ("f", "g") else 0,
        )
    graph.add_edge("a", "b", words=4)
    graph.add_edge("a", "c", words=4)
    graph.add_edge("b", "e", words=4)
    graph.add_edge("c", "e", words=4)
    graph.add_edge("e", "f", words=4)
    graph.add_edge("d", "g", words=4)
    return graph


def figure4_partition_assignment(graph: TaskGraph) -> Dict[str, int]:
    """The partition assignment drawn in Figure 4 (from task metadata)."""
    return {
        name: graph.task(name).metadata["figure4_partition"]
        for name in graph.task_names()
    }


def random_dsp_task_graph(
    task_count: int = 20,
    seed: int = 0,
    max_level_width: int = 6,
    clb_range: tuple = (40, 250),
    delay_range_ns: tuple = (100, 800),
    words_range: tuple = (1, 32),
    edge_probability: float = 0.5,
    env_io_words: int = 8,
    name: Optional[str] = None,
) -> TaskGraph:
    """A reproducible random layered task graph with DSP-like statistics.

    Tasks are organised into levels (like filter stages); each task draws its
    CLB cost, delay and output data volume from the given ranges, and is wired
    to a random subset of the previous level so that the graph stays acyclic
    and (weakly) connected.  The same *seed* always yields the same graph.
    """
    if task_count < 1:
        raise SpecificationError("task_count must be >= 1")
    if max_level_width < 1:
        raise SpecificationError("max_level_width must be >= 1")
    if not 0.0 <= edge_probability <= 1.0:
        raise SpecificationError("edge_probability must be within [0, 1]")
    rng = random.Random(seed)
    graph = TaskGraph(name or f"random-dsp-{task_count}-{seed}")

    # Slice tasks into levels.
    levels: List[List[str]] = []
    created = 0
    while created < task_count:
        width = min(rng.randint(1, max_level_width), task_count - created)
        level = [f"t{created + offset}" for offset in range(width)]
        created += width
        levels.append(level)

    for level_index, level in enumerate(levels):
        for task_name in level:
            clbs_needed = rng.randint(*clb_range)
            delay = ns(rng.randint(*delay_range_ns))
            graph.add_task(
                Task(
                    task_name,
                    cost=clb_cost(clbs_needed, delay),
                    task_type=f"level{level_index}",
                ),
                env_input_words=env_io_words if level_index == 0 else 0,
                env_output_words=env_io_words if level_index == len(levels) - 1 else 0,
            )

    # Wire levels: every non-root task gets at least one predecessor from the
    # previous level; extra edges are added with edge_probability.  Edges go
    # in through the bulk path (one acyclicity check) so generating 10k+-node
    # graphs stays linear in the edge count.
    edges: List[tuple] = []
    for level_index in range(1, len(levels)):
        previous = levels[level_index - 1]
        for task_name in levels[level_index]:
            mandatory = rng.choice(previous)
            edges.append((mandatory, task_name, rng.randint(*words_range)))
            for candidate in previous:
                if candidate == mandatory:
                    continue
                if rng.random() < edge_probability:
                    edges.append((candidate, task_name, rng.randint(*words_range)))
    graph.add_edges(edges)
    return graph


def image_pipeline_task_graph(name: str = "edge_detect") -> TaskGraph:
    """A small, realistic image-processing pipeline (used in examples).

    Models a 3x3-window edge-detection chain on 8x8 tiles: row buffer,
    horizontal gradient, vertical gradient, magnitude, threshold.  Costs are
    representative mid-90s FPGA numbers (hand-characterised, not estimated).
    """
    graph = TaskGraph(name)
    graph.add_task(
        Task("window", cost=clb_cost(220, ns(640)), task_type="linebuffer"),
        env_input_words=64,
    )
    graph.add_task(Task("grad_x", cost=clb_cost(260, ns(900)), task_type="conv3x3"))
    graph.add_task(Task("grad_y", cost=clb_cost(260, ns(900)), task_type="conv3x3"))
    graph.add_task(Task("magnitude", cost=clb_cost(340, ns(700)), task_type="cordic"))
    graph.add_task(
        Task("threshold", cost=clb_cost(120, ns(320)), task_type="compare"),
        env_output_words=64,
    )
    graph.add_edge("window", "grad_x", words=64)
    graph.add_edge("window", "grad_y", words=64)
    graph.add_edge("grad_x", "magnitude", words=64)
    graph.add_edge("grad_y", "magnitude", words=64)
    graph.add_edge("magnitude", "threshold", words=64)
    return graph
