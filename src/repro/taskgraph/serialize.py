"""Serialisation of task graphs to and from plain dictionaries / JSON.

The on-disk format is intentionally simple and versioned so that workloads and
case-study graphs can be checked into a repository and diffed:

.. code-block:: json

    {
      "format": "repro-taskgraph",
      "version": 1,
      "name": "dct4x4",
      "tasks": [
        {"name": "t0", "clbs": 70, "delay_ns": 3400.0, "type": "T1",
         "env_input_words": 4, "env_output_words": 0}
      ],
      "edges": [
        {"from": "t0", "to": "t16", "words": 1}
      ]
    }

Only the partitioner-visible attributes are serialised; operation-level DFGs
are reconstructed by the builders when needed.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from ..errors import SpecificationError
from ..units import ns, to_ns
from .graph import TaskGraph
from .task import Task, clb_cost

FORMAT_NAME = "repro-taskgraph"
FORMAT_VERSION = 1


def to_dict(graph: TaskGraph) -> Dict[str, Any]:
    """Convert *graph* to a JSON-serialisable dictionary."""
    tasks = []
    for name in graph.task_names():
        task = graph.task(name)
        entry: Dict[str, Any] = {
            "name": name,
            "type": task.task_type,
            "env_input_words": graph.env_input_words(name),
            "env_output_words": graph.env_output_words(name),
        }
        if task.has_cost:
            entry["clbs"] = task.clbs
            entry["delay_ns"] = to_ns(task.delay)
            if task.cost.cycles is not None:
                entry["cycles"] = task.cost.cycles
            if task.cost.clock_period is not None:
                entry["clock_period_ns"] = to_ns(task.cost.clock_period)
        if task.metadata:
            entry["metadata"] = dict(task.metadata)
        tasks.append(entry)
    edges = [
        {"from": producer, "to": consumer, "words": graph.edge_words(producer, consumer)}
        for producer, consumer in graph.edges()
    ]
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "tasks": tasks,
        "edges": edges,
    }


def from_dict(data: Dict[str, Any]) -> TaskGraph:
    """Reconstruct a :class:`TaskGraph` from :func:`to_dict` output."""
    if data.get("format") != FORMAT_NAME:
        raise SpecificationError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise SpecificationError(
            f"unsupported task graph format version {data.get('version')!r}"
        )
    graph = TaskGraph(data.get("name", "taskgraph"))
    for entry in data.get("tasks", []):
        if "name" not in entry:
            raise SpecificationError(f"task entry without a name: {entry!r}")
        cost = None
        if "clbs" in entry or "delay_ns" in entry:
            if "clbs" not in entry or "delay_ns" not in entry:
                raise SpecificationError(
                    f"task {entry['name']!r} must give both 'clbs' and 'delay_ns' "
                    "or neither"
                )
            cycles = entry.get("cycles")
            clock_period = entry.get("clock_period_ns")
            cost = clb_cost(
                int(entry["clbs"]),
                ns(float(entry["delay_ns"])),
                cycles=int(cycles) if cycles is not None else None,
                clock_period=ns(float(clock_period)) if clock_period is not None else None,
            )
        graph.add_task(
            Task(
                entry["name"],
                cost=cost,
                task_type=entry.get("type", ""),
                metadata=dict(entry.get("metadata", {})),
            ),
            env_input_words=int(entry.get("env_input_words", 0)),
            env_output_words=int(entry.get("env_output_words", 0)),
        )
    for entry in data.get("edges", []):
        try:
            producer, consumer = entry["from"], entry["to"]
        except KeyError:
            raise SpecificationError(f"edge entry missing 'from'/'to': {entry!r}")
        graph.add_edge(producer, consumer, words=int(entry.get("words", 1)))
    return graph


def to_json(graph: TaskGraph, indent: int = 2) -> str:
    """Serialise *graph* to a JSON string."""
    return json.dumps(to_dict(graph), indent=indent, sort_keys=False)


def from_json(text: str) -> TaskGraph:
    """Parse a task graph from a JSON string."""
    return from_dict(json.loads(text))


def save(graph: TaskGraph, path: Union[str, Path]) -> None:
    """Write *graph* to *path* as JSON."""
    Path(path).write_text(to_json(graph), encoding="utf-8")


def load(path: Union[str, Path]) -> TaskGraph:
    """Read a task graph from a JSON file at *path*."""
    return from_json(Path(path).read_text(encoding="utf-8"))
