"""Task objects: the nodes of the behaviour-level task graph.

Each task corresponds to a coarse-grain computation (in the case study, one
4x4 vector product).  The temporal partitioner consumes two numbers per task —
the FPGA resources ``R(t)`` and the execution delay ``D(t)`` — which are
produced by the HLS estimator (or supplied directly, e.g. when reproducing the
paper's reported estimates).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..arch.device import CLB, ResourceVector
from ..dfg.graph import DataFlowGraph
from ..errors import SpecificationError


@dataclass
class TaskCost:
    """Synthesis cost of a task: resources ``R(t)`` and delay ``D(t)``.

    Parameters
    ----------
    resources:
        FPGA resources the task's datapath occupies (CLBs in the paper).
    delay:
        Execution delay of the task in seconds for one invocation.
    cycles / clock_period:
        Optional cycle-accurate breakdown (``delay = cycles * clock_period``)
        kept when the estimate comes from a scheduler; the partitioner only
        uses :attr:`delay`.
    """

    resources: ResourceVector
    delay: float
    cycles: Optional[int] = None
    clock_period: Optional[float] = None

    def __post_init__(self) -> None:
        if self.delay < 0:
            raise SpecificationError(f"task delay must be non-negative, got {self.delay}")
        if self.cycles is not None and self.cycles < 0:
            raise SpecificationError("cycle count must be non-negative")
        if self.clock_period is not None and self.clock_period <= 0:
            raise SpecificationError("clock period must be positive")
        if (
            self.cycles is not None
            and self.clock_period is not None
            and abs(self.cycles * self.clock_period - self.delay) > 1e-12
        ):
            raise SpecificationError(
                "inconsistent task cost: cycles * clock_period != delay "
                f"({self.cycles} * {self.clock_period} != {self.delay})"
            )

    @property
    def clbs(self) -> int:
        """CLB count of the resource vector (0 if CLBs are not used)."""
        return self.resources[CLB]


def clb_cost(
    clb_count: int,
    delay: float,
    cycles: Optional[int] = None,
    clock_period: Optional[float] = None,
) -> TaskCost:
    """Convenience constructor for the common CLB-only cost."""
    return TaskCost(
        resources=ResourceVector({CLB: clb_count}),
        delay=delay,
        cycles=cycles,
        clock_period=clock_period,
    )


@dataclass
class Task:
    """A node of the behaviour task graph.

    Parameters
    ----------
    name:
        Unique task name within the task graph.
    cost:
        Synthesis cost (may be ``None`` until the estimator has run).
    dfg:
        Optional operation-level behaviour of the task, used by the HLS
        estimator and by functional simulation.
    task_type:
        Free-form label grouping tasks that share behaviour and cost (the
        case study has types ``"T1"`` and ``"T2"``).
    metadata:
        Arbitrary user annotations (row/column indices, kernel names...).
    """

    name: str
    cost: Optional[TaskCost] = None
    dfg: Optional[DataFlowGraph] = None
    task_type: str = ""
    metadata: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise SpecificationError("task name must not be empty")

    @property
    def has_cost(self) -> bool:
        """Whether the task already carries a synthesis cost."""
        return self.cost is not None

    @property
    def resources(self) -> ResourceVector:
        """``R(t)``; raises if the task has not been estimated yet."""
        self._require_cost()
        return self.cost.resources

    @property
    def delay(self) -> float:
        """``D(t)`` in seconds; raises if the task has not been estimated yet."""
        self._require_cost()
        return self.cost.delay

    @property
    def clbs(self) -> int:
        """CLB count of ``R(t)``."""
        self._require_cost()
        return self.cost.clbs

    def with_cost(self, cost: TaskCost) -> "Task":
        """A copy of this task with *cost* attached."""
        return Task(
            name=self.name,
            cost=cost,
            dfg=self.dfg,
            task_type=self.task_type,
            metadata=dict(self.metadata),
        )

    def _require_cost(self) -> None:
        if self.cost is None:
            raise SpecificationError(
                f"task {self.name!r} has no synthesis cost; run the estimator "
                "or attach a TaskCost before partitioning"
            )

    def describe(self) -> str:
        """One-line human readable summary."""
        if self.cost is None:
            return f"{self.name} (unestimated)"
        return (
            f"{self.name}: {self.cost.clbs} CLBs, "
            f"{self.cost.delay * 1e9:.1f} ns"
            + (f" [{self.task_type}]" if self.task_type else "")
        )
