"""Analyses over task graphs: paths, critical paths, levels, bounds.

Two of these are load-bearing for the reproduction:

* :func:`root_to_leaf_paths` enumerates the path set ``P_rl`` used by the
  ILP's path-delay constraints (Eq. 7);
* :func:`partition_lower_bound` is the preprocessing step that seeds the
  partition-count search (sum of task resources divided by the FPGA
  capacity, rounded up).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx

from ..arch.device import ResourceVector
from ..errors import GraphError
from .graph import TaskGraph

#: Default cap on the number of enumerated root-to-leaf paths before the ILP
#: formulation falls back to the prefix-delay formulation.
DEFAULT_PATH_LIMIT = 20000


def root_to_leaf_paths(
    graph: TaskGraph, limit: Optional[int] = DEFAULT_PATH_LIMIT
) -> List[Tuple[str, ...]]:
    """All simple paths from a root task to a leaf task (the paper's ``P_rl``).

    Isolated tasks (both root and leaf) yield a single one-task path.  When
    *limit* is given and the graph has more paths than the limit, a
    :class:`GraphError` is raised so the caller can switch to the fallback
    delay formulation instead of silently dropping constraints.  The count
    is checked by :func:`count_root_to_leaf_paths` before any enumeration
    starts, so an over-limit graph fails in ``O(V + E)`` time instead of
    after grinding through *limit* simple paths.
    """
    graph.validate()
    if limit is not None and count_root_to_leaf_paths(graph) > limit:
        raise GraphError(
            f"task graph {graph.name!r} has more than {limit} "
            "root-to-leaf paths; use the prefix-delay formulation"
        )
    nx_graph = graph.to_networkx()
    paths: List[Tuple[str, ...]] = []
    leaves = set(graph.leaves())
    for root in graph.roots():
        if root in leaves:
            paths.append((root,))
            continue
        for path in nx.all_simple_paths(nx_graph, root, leaves):
            paths.append(tuple(path))
    return paths


def count_root_to_leaf_paths(graph: TaskGraph) -> int:
    """Number of root-to-leaf paths, computed without enumerating them."""
    graph.validate()
    counts: Dict[str, int] = {}
    order = graph.topological_order()
    for name in order:
        preds = graph.predecessors(name)
        counts[name] = 1 if not preds else sum(counts[p] for p in preds)
    return sum(counts[leaf] for leaf in graph.leaves())


def path_delay(graph: TaskGraph, path: Sequence[str]) -> float:
    """Sum of task delays along *path* (seconds)."""
    return sum(graph.task(name).delay for name in path)


def critical_path(graph: TaskGraph) -> Tuple[List[str], float]:
    """The maximum-delay root-to-leaf path and its delay.

    Computed by dynamic programming over the topological order, so it is safe
    for graphs whose path count would make enumeration infeasible.
    """
    graph.validate()
    best_delay: Dict[str, float] = {}
    best_pred: Dict[str, Optional[str]] = {}
    for name in graph.topological_order():
        delay = graph.task(name).delay
        preds = graph.predecessors(name)
        if not preds:
            best_delay[name] = delay
            best_pred[name] = None
        else:
            chosen = max(preds, key=lambda p: best_delay[p])
            best_delay[name] = best_delay[chosen] + delay
            best_pred[name] = chosen
    if not best_delay:
        return [], 0.0
    end = max(best_delay, key=lambda n: best_delay[n])
    path = [end]
    while best_pred[path[-1]] is not None:
        path.append(best_pred[path[-1]])
    path.reverse()
    return path, best_delay[end]


def asap_levels(graph: TaskGraph) -> Dict[str, int]:
    """Topological level of each task (roots at level 0)."""
    levels: Dict[str, int] = {}
    for name in graph.topological_order():
        preds = graph.predecessors(name)
        levels[name] = 0 if not preds else 1 + max(levels[p] for p in preds)
    return levels


def tasks_by_level(graph: TaskGraph) -> List[List[str]]:
    """Tasks grouped by ASAP level, each group in insertion order."""
    levels = asap_levels(graph)
    depth = max(levels.values(), default=-1) + 1
    grouped: List[List[str]] = [[] for _ in range(depth)]
    for name in graph.task_names():
        grouped[levels[name]].append(name)
    return grouped


def partition_lower_bound(graph: TaskGraph, capacity: ResourceVector) -> int:
    """Paper preprocessing step: minimum number of partitions by resources.

    ``ceil( sum_t R(t) / R_max )`` taken over every resource type, with a
    floor of 1.  A single task larger than the FPGA makes the instance
    infeasible, which is reported by raising :class:`GraphError` here rather
    than deep inside the solver.
    """
    totals = graph.total_resources()
    bound = 1
    for name in totals.names():
        available = capacity[name]
        needed = totals[name]
        if needed == 0:
            continue
        if available <= 0:
            raise GraphError(
                f"task graph {graph.name!r} needs resource {name!r} but the "
                "device provides none"
            )
        bound = max(bound, math.ceil(needed / available))
    for task in graph.tasks():
        if not task.resources.fits_within(capacity):
            raise GraphError(
                f"task {task.name!r} does not fit on the device by itself; "
                "temporal partitioning cannot help"
            )
    return bound


def max_tasks_per_partition(graph: TaskGraph, capacity: ResourceVector) -> int:
    """Largest number of tasks any single partition can hold, by resources.

    For each resource type, sort the per-task usages ascending and count how
    many of the *smallest* consumers fit within the capacity; tasks that use
    none of the resource are free.  The minimum over resource types bounds
    every feasible partition's cardinality: if even the ``k+1`` cheapest
    tasks overflow some resource, no partition anywhere can hold ``k+1``
    tasks.  Returns at least 1 (single-task feasibility is checked by
    :func:`partition_lower_bound`).
    """
    names = graph.task_names()
    best = max(len(names), 1)
    for resource in capacity.names():
        available = capacity[resource]
        usages = sorted(
            usage
            for name in names
            if (usage := graph.task(name).resources[resource]) > 0
        )
        if not usages:
            continue
        consumed = 0.0
        count = 0
        for usage in usages:
            if consumed + usage > available:
                break
            consumed += usage
            count += 1
        best = min(best, count + (len(names) - len(usages)))
    return max(best, 1)


def cardinality_lower_bound(graph: TaskGraph, capacity: ResourceVector) -> int:
    """Lower bound on the partition count from per-partition cardinality.

    With at most ``k`` tasks per partition (:func:`max_tasks_per_partition`),
    any feasible solution needs at least ``ceil(|T| / k)`` partitions.  This
    bin-packing style bound is incomparable with the resource-sum bound of
    :func:`partition_lower_bound` — e.g. many same-sized tasks that pack
    poorly push this bound higher — so the preprocessing step takes the max
    of both.
    """
    if len(graph) == 0:
        return 1
    return math.ceil(len(graph) / max_tasks_per_partition(graph, capacity))


def transitive_reduction(graph: TaskGraph) -> TaskGraph:
    """A copy of *graph* with redundant (transitively implied) edges removed.

    Data volumes on removed edges are **not** discarded silently — removing an
    edge would change the memory constraint — so this helper refuses to drop
    edges that carry data and is intended for purely structural analyses
    (e.g. drawing, path counting).
    """
    graph.validate()
    nx_graph = graph.to_networkx()
    reduced = nx.transitive_reduction(nx_graph)
    result = TaskGraph(f"{graph.name}-tr")
    for name in graph.task_names():
        result.add_task(
            graph.task(name),
            env_input_words=graph.env_input_words(name),
            env_output_words=graph.env_output_words(name),
        )
    for producer, consumer in graph.edges():
        if reduced.has_edge(producer, consumer):
            result.add_edge(producer, consumer, graph.edge_words(producer, consumer))
        elif graph.edge_words(producer, consumer) > 0:
            raise GraphError(
                f"cannot reduce edge {producer!r} -> {consumer!r}: it carries "
                f"{graph.edge_words(producer, consumer)} words of data"
            )
    return result


def downstream_tasks(graph: TaskGraph, task_name: str) -> List[str]:
    """All tasks reachable from *task_name* (excluding itself)."""
    nx_graph = graph.to_networkx()
    return sorted(nx.descendants(nx_graph, task_name))


def upstream_tasks(graph: TaskGraph, task_name: str) -> List[str]:
    """All tasks from which *task_name* is reachable (excluding itself)."""
    nx_graph = graph.to_networkx()
    return sorted(nx.ancestors(nx_graph, task_name))


def interchangeable_task_classes(graph: TaskGraph) -> List[List[str]]:
    """Groups of mutually interchangeable tasks (size >= 2), sorted by name.

    Two tasks are interchangeable when swapping them in any partition
    assignment provably changes nothing the partitioning model can observe:
    same delay, same resource vector, same predecessor and successor sets,
    and the same data volume on each corresponding edge.  Such tasks induce
    symmetric solutions that differ only by a permutation — the ILP
    formulation breaks those symmetries by ordering each class's partition
    positions (see ``FormulationOptions.symmetry_breaking``).

    The grouping is deterministic: classes are ordered by their first member
    and members are sorted by task name.
    """
    graph.validate()
    signatures: Dict[tuple, List[str]] = {}
    for task in graph.tasks():
        preds = tuple(sorted(graph.predecessors(task.name)))
        succs = tuple(sorted(graph.successors(task.name)))
        in_words = tuple(graph.edge_words(pred, task.name) for pred in preds)
        out_words = tuple(graph.edge_words(task.name, succ) for succ in succs)
        signature = (
            task.delay,
            tuple(sorted(task.resources.as_dict().items())),
            preds,
            succs,
            in_words,
            out_words,
            graph.env_input_words(task.name),
            graph.env_output_words(task.name),
        )
        signatures.setdefault(signature, []).append(task.name)
    classes = [sorted(members) for members in signatures.values() if len(members) > 1]
    classes.sort(key=lambda members: members[0])
    return classes


def independent_task_pairs(graph: TaskGraph) -> List[Tuple[str, str]]:
    """Unordered pairs of tasks with no path between them in either direction."""
    names = graph.task_names()
    nx_graph = graph.to_networkx()
    reachable = {name: nx.descendants(nx_graph, name) for name in names}
    pairs: List[Tuple[str, str]] = []
    for index, first in enumerate(names):
        for second in names[index + 1:]:
            if second not in reachable[first] and first not in reachable[second]:
                pairs.append((first, second))
    return pairs
