"""Nonenumerative k-longest-paths analysis over task-graph DAGs.

:func:`root_to_leaf_paths` enumerates every simple path, which blows up
combinatorially on reconvergent graphs (a 60-node diamond chain already has
a million paths).  This module computes the **k largest root-to-leaf path
delays** — and, on demand, the paths themselves — *without* enumeration, in
the style of the nonenumerative k-longest-path DAG algorithms the delay
estimation literature uses (cf. arXiv 1301.0181): every node keeps a table
of its top-k incoming-path delays, and the tables are folded once over the
topological order.

Two properties are load-bearing for the rest of the library:

* **Bit-identical delays.**  A table entry accumulates task delays in path
  order (root first), exactly like :func:`~repro.taskgraph.analysis.path_delay`
  sums an enumerated path, so the reported delays are bit-identical to the
  enumerated ones — the equality the differential ``kpaths-vs-enum`` oracle
  asserts, and the reason the ILP formulation can generate its Eq. 7 path
  set through this module without changing any solve.
* **Determinism.**  Ties on delay are broken by task name (then by table
  position), so the same graph always yields the same entry order on every
  platform.

Complexity is ``O(E * k * log k)`` time and ``O(V * k)`` space — polynomial
in the graph size for fixed ``k``, where enumeration is exponential.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import GraphError
from .analysis import DEFAULT_PATH_LIMIT, count_root_to_leaf_paths
from .graph import TaskGraph

#: One per-node table entry: the accumulated delay of one distinct
#: root-to-this-node path, the predecessor it arrived through (``None`` for
#: a root) and the index of the predecessor's table entry it extends.
_Entry = Tuple[float, Optional[str], int]


def _topk_tables(graph: TaskGraph, k: int) -> Dict[str, List[_Entry]]:
    """Fold the per-node top-k delay tables over the topological order.

    Entry ``tables[v][i]`` describes the ``i``-th largest-delay distinct
    path from any root to ``v`` (inclusive of ``v``'s own delay).  Each
    entry records its predecessor and the predecessor-entry index, so any
    path can be reconstructed by backtracking without materialising it.
    """
    if k < 1:
        raise GraphError(f"k must be at least 1, got {k}")
    tables: Dict[str, List[_Entry]] = {}
    for name in graph.topological_order():
        delay = graph.task(name).delay
        preds = graph.predecessors(name)
        if not preds:
            tables[name] = [(delay, None, 0)]
            continue
        candidates: List[_Entry] = []
        for pred in sorted(preds):
            for index, (pred_delay, _, _) in enumerate(tables[pred]):
                candidates.append((pred_delay + delay, pred, index))
        candidates.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
        tables[name] = candidates[:k]
    return tables


def _leaf_entries(
    graph: TaskGraph, tables: Dict[str, List[_Entry]], k: int
) -> List[Tuple[float, str, int]]:
    """The global top-k entries over all leaves: ``(delay, leaf, index)``."""
    merged: List[Tuple[float, str, int]] = []
    for leaf in sorted(graph.leaves()):
        for index, (delay, _, _) in enumerate(tables[leaf]):
            merged.append((delay, leaf, index))
    merged.sort(key=lambda entry: (-entry[0], entry[1], entry[2]))
    return merged[:k]


def _reconstruct(
    tables: Dict[str, List[_Entry]], leaf: str, index: int
) -> Tuple[str, ...]:
    """Backtrack one table entry into its root-to-leaf path."""
    path: List[str] = []
    name: Optional[str] = leaf
    while name is not None:
        path.append(name)
        _, name, index = tables[name][index]
    path.reverse()
    return tuple(path)


def k_longest_path_delays(graph: TaskGraph, k: int) -> List[float]:
    """The ``k`` largest root-to-leaf path delays, descending.

    Each distinct path is counted once; fewer than ``k`` values come back
    when the graph has fewer than ``k`` root-to-leaf paths.  The values are
    bit-identical to sorting the enumerated
    :func:`~repro.taskgraph.analysis.path_delay` values (same summation
    order), but no path is ever enumerated.
    """
    graph.validate()
    tables = _topk_tables(graph, k)
    return [delay for delay, _, _ in _leaf_entries(graph, tables, k)]


def k_longest_paths(
    graph: TaskGraph, k: int
) -> List[Tuple[Tuple[str, ...], float]]:
    """The ``k`` most-critical root-to-leaf paths with their delays, descending."""
    graph.validate()
    tables = _topk_tables(graph, k)
    return [
        (_reconstruct(tables, leaf, index), delay)
        for delay, leaf, index in _leaf_entries(graph, tables, k)
    ]


def root_to_leaf_paths_by_delay(
    graph: TaskGraph, limit: Optional[int] = DEFAULT_PATH_LIMIT
) -> List[Tuple[str, ...]]:
    """The complete ``P_rl`` path set, generated nonenumeratively.

    A drop-in replacement for
    :func:`~repro.taskgraph.analysis.root_to_leaf_paths` where the caller
    needs *every* path but not the enumeration order: the paths come back
    sorted by delay (descending, name tie-breaks) instead.  The path count
    is checked by dynamic programming **before** any path is materialised,
    so an over-limit graph raises :class:`GraphError` in ``O(V + E)`` time
    rather than after grinding through ``limit`` simple paths.

    This is what the ILP's Eq. 7 constraint generation calls: soundness of
    the exact formulation needs the *full* path set (a globally short path
    can still own the longest in-partition segment), so no path is dropped —
    only the generation strategy changes.
    """
    graph.validate()
    count = count_root_to_leaf_paths(graph)
    if limit is not None and count > limit:
        raise GraphError(
            f"task graph {graph.name!r} has more than {limit} "
            "root-to-leaf paths; use the prefix-delay formulation"
        )
    return [path for path, _ in k_longest_paths(graph, count)]


def _up_down(graph: TaskGraph) -> Tuple[Dict[str, float], Dict[str, float]]:
    """Top-1 tables folded forward and backward.

    ``up[t]`` is the longest root-to-``t`` path delay and ``down[t]`` the
    longest ``t``-to-leaf path delay, both inclusive of ``t``'s own delay.
    """
    up: Dict[str, float] = {}
    order = graph.topological_order()
    for name in order:
        delay = graph.task(name).delay
        preds = graph.predecessors(name)
        up[name] = (max(up[p] for p in preds) if preds else 0.0) + delay
    down: Dict[str, float] = {}
    for name in reversed(order):
        delay = graph.task(name).delay
        succs = graph.successors(name)
        down[name] = (max(down[s] for s in succs) if succs else 0.0) + delay
    return up, down


def longest_path_through(graph: TaskGraph) -> Dict[str, float]:
    """Per-task criticality: the largest delay of any path through the task.

    ``up[t]`` plus the longest delay strictly below ``t`` (the best
    successor's ``down`` table entry), so no delay is ever subtracted back
    out and leaf criticalities are bit-identical to the critical-path DP.
    The maximum over all tasks is the critical-path delay (exactly at the
    critical path's leaf; interior tasks may differ in the last ulp because
    the summation association differs).  This is the signal the multilevel
    partitioner's coarsening orders its merges by.
    """
    graph.validate()
    up, down = _up_down(graph)
    return {
        name: up[name]
        + (max(down[s] for s in succs) if (succs := graph.successors(name)) else 0.0)
        for name in graph.task_names()
    }


def edge_criticalities(graph: TaskGraph) -> Dict[Tuple[str, str], float]:
    """Per-edge criticality: the largest delay of any path using the edge.

    For edge ``u -> v`` this is ``up[u] + down[v]`` (longest root-to-``u``
    prefix plus longest ``v``-to-leaf suffix).  Used by the multilevel
    coarsener to contract the most timing-critical chains first, so the
    coarse graph preserves the structures the partition delays depend on.
    """
    graph.validate()
    up, down = _up_down(graph)
    return {
        (producer, consumer): up[producer] + down[consumer]
        for producer, consumer in graph.edges()
    }
