"""The behaviour-level task graph (the paper's Figure 3 input specification).

A :class:`TaskGraph` is a directed acyclic graph of :class:`Task` nodes.
Edges carry the number of data words communicated between the two tasks,
``B(t1, t2)``.  Each task may additionally read words from the environment
(``B(env, t)``) and write words to the environment (``B(t, env)``) — for the
DCT case study these are the 4x4 input block and the transformed output.

The whole task graph is implicitly enclosed in an outer loop whose iteration
count ``I`` is only known at run time; that loop is what the loop-fission step
restructures.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Tuple

import networkx as nx

from ..arch.device import ResourceVector
from ..errors import CycleError, GraphError, UnknownTaskError
from .task import Task, TaskCost


class TaskGraph:
    """A DAG of tasks with data-volume annotations on edges and environment I/O."""

    def __init__(self, name: str = "taskgraph") -> None:
        if not name:
            raise GraphError("task graph name must not be empty")
        self.name = name
        self._graph = nx.DiGraph()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_task(
        self,
        task: Task,
        env_input_words: int = 0,
        env_output_words: int = 0,
    ) -> Task:
        """Add *task* to the graph.

        ``env_input_words`` and ``env_output_words`` are the environment data
        volumes ``B(env, t)`` and ``B(t, env)`` in memory words.
        """
        if task.name in self._graph:
            raise GraphError(f"duplicate task name {task.name!r} in {self.name!r}")
        if env_input_words < 0 or env_output_words < 0:
            raise GraphError("environment data volumes must be non-negative")
        self._graph.add_node(
            task.name,
            task=task,
            env_input_words=env_input_words,
            env_output_words=env_output_words,
        )
        return task

    def add_edge(self, producer: str, consumer: str, words: int = 1) -> None:
        """Add a data dependency ``producer -> consumer`` carrying *words* words."""
        self._require(producer)
        self._require(consumer)
        if producer == consumer:
            raise GraphError(f"self edge on task {producer!r}")
        if words < 0:
            raise GraphError(f"edge data volume must be non-negative, got {words}")
        if self._graph.has_edge(producer, consumer):
            raise GraphError(f"duplicate edge {producer!r} -> {consumer!r}")
        self._graph.add_edge(producer, consumer, words=words)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(producer, consumer)
            raise CycleError(
                f"edge {producer!r} -> {consumer!r} creates a cycle in task "
                f"graph {self.name!r}"
            )

    def add_edges(self, edges: Iterable[Tuple[str, str, int]]) -> None:
        """Bulk-add ``(producer, consumer, words)`` dependencies.

        Equivalent to calling :meth:`add_edge` per triple, except the
        acyclicity check runs once after all insertions rather than per
        edge — :meth:`add_edge` re-checks the whole graph on every call,
        which is ``O(V + E)`` *per edge* and makes 10k+-node graph
        construction quadratic.  On any failure every edge added by this
        call is rolled back.
        """
        added: List[Tuple[str, str]] = []
        try:
            for producer, consumer, words in edges:
                self._require(producer)
                self._require(consumer)
                if producer == consumer:
                    raise GraphError(f"self edge on task {producer!r}")
                if words < 0:
                    raise GraphError(
                        f"edge data volume must be non-negative, got {words}"
                    )
                if self._graph.has_edge(producer, consumer):
                    raise GraphError(
                        f"duplicate edge {producer!r} -> {consumer!r}"
                    )
                self._graph.add_edge(producer, consumer, words=words)
                added.append((producer, consumer))
            if not nx.is_directed_acyclic_graph(self._graph):
                raise CycleError(
                    f"bulk edge insertion creates a cycle in task graph "
                    f"{self.name!r}"
                )
        except Exception:
            self._graph.remove_edges_from(added)
            raise

    def set_env_io(
        self,
        task_name: str,
        env_input_words: Optional[int] = None,
        env_output_words: Optional[int] = None,
    ) -> None:
        """Update the environment I/O volumes of an existing task."""
        self._require(task_name)
        node = self._graph.nodes[task_name]
        if env_input_words is not None:
            if env_input_words < 0:
                raise GraphError("env_input_words must be non-negative")
            node["env_input_words"] = env_input_words
        if env_output_words is not None:
            if env_output_words < 0:
                raise GraphError("env_output_words must be non-negative")
            node["env_output_words"] = env_output_words

    def set_cost(self, task_name: str, cost: TaskCost) -> None:
        """Attach a synthesis cost to an existing task (post-estimation)."""
        task = self.task(task_name)
        self._graph.nodes[task_name]["task"] = task.with_cost(cost)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def _require(self, task_name: str) -> None:
        if task_name not in self._graph:
            raise UnknownTaskError(
                f"unknown task {task_name!r} in task graph {self.name!r}"
            )

    def task(self, name: str) -> Task:
        """The :class:`Task` stored under *name*."""
        self._require(name)
        return self._graph.nodes[name]["task"]

    def __contains__(self, name: str) -> bool:
        return name in self._graph

    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def tasks(self) -> Iterator[Task]:
        """Iterate over all tasks in insertion order."""
        for name in self._graph.nodes:
            yield self._graph.nodes[name]["task"]

    def task_names(self) -> List[str]:
        """All task names in insertion order."""
        return list(self._graph.nodes)

    def edges(self) -> List[Tuple[str, str]]:
        """All edges as (producer, consumer) pairs."""
        return list(self._graph.edges)

    def edge_count(self) -> int:
        """Number of dependency edges."""
        return self._graph.number_of_edges()

    def edge_words(self, producer: str, consumer: str) -> int:
        """``B(producer, consumer)`` in memory words."""
        self._require(producer)
        self._require(consumer)
        try:
            return self._graph.edges[producer, consumer]["words"]
        except KeyError:
            raise GraphError(f"no edge {producer!r} -> {consumer!r}")

    def env_input_words(self, task_name: str) -> int:
        """``B(env, task)`` in memory words."""
        self._require(task_name)
        return self._graph.nodes[task_name]["env_input_words"]

    def env_output_words(self, task_name: str) -> int:
        """``B(task, env)`` in memory words."""
        self._require(task_name)
        return self._graph.nodes[task_name]["env_output_words"]

    def predecessors(self, task_name: str) -> List[str]:
        """Tasks that *task_name* directly depends on."""
        self._require(task_name)
        return list(self._graph.predecessors(task_name))

    def successors(self, task_name: str) -> List[str]:
        """Tasks that directly depend on *task_name*."""
        self._require(task_name)
        return list(self._graph.successors(task_name))

    def roots(self) -> List[str]:
        """Tasks with no predecessors (the paper's ``T_r``)."""
        return [n for n in self._graph.nodes if self._graph.in_degree(n) == 0]

    def leaves(self) -> List[str]:
        """Tasks with no successors (the paper's ``T_l``)."""
        return [n for n in self._graph.nodes if self._graph.out_degree(n) == 0]

    def has_edge(self, producer: str, consumer: str) -> bool:
        """Whether the edge ``producer -> consumer`` exists."""
        return self._graph.has_edge(producer, consumer)

    # ------------------------------------------------------------------
    # Aggregates used by the partitioner
    # ------------------------------------------------------------------

    def all_estimated(self) -> bool:
        """Whether every task carries a synthesis cost."""
        return all(task.has_cost for task in self.tasks())

    def total_resources(self) -> ResourceVector:
        """Sum of ``R(t)`` over all tasks (the partition lower bound numerator)."""
        total = ResourceVector({})
        for task in self.tasks():
            total = total + task.resources
        return total

    def total_delay(self) -> float:
        """Sum of ``D(t)`` over all tasks (an upper bound on any latency)."""
        return sum(task.delay for task in self.tasks())

    def total_env_input_words(self) -> int:
        """Total environment input volume per outer-loop iteration."""
        return sum(self.env_input_words(n) for n in self._graph.nodes)

    def total_env_output_words(self) -> int:
        """Total environment output volume per outer-loop iteration."""
        return sum(self.env_output_words(n) for n in self._graph.nodes)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    def topological_order(self) -> List[str]:
        """Task names in a topological order."""
        return list(nx.topological_sort(self._graph))

    def validate(self) -> None:
        """Check structural invariants (acyclicity, non-empty)."""
        if len(self) == 0:
            raise GraphError(f"task graph {self.name!r} has no tasks")
        if not nx.is_directed_acyclic_graph(self._graph):
            raise CycleError(f"task graph {self.name!r} contains a cycle")

    def subgraph_copy(self, names: Iterable[str], name: Optional[str] = None) -> "TaskGraph":
        """A new task graph containing only the named tasks and induced edges."""
        selected = set(names)
        for task_name in selected:
            self._require(task_name)
        result = TaskGraph(name or f"{self.name}-sub")
        for node in self._graph.nodes:
            if node in selected:
                result.add_task(
                    self.task(node),
                    env_input_words=self.env_input_words(node),
                    env_output_words=self.env_output_words(node),
                )
        for producer, consumer in self._graph.edges:
            if producer in selected and consumer in selected:
                result.add_edge(producer, consumer, self.edge_words(producer, consumer))
        return result

    def copy(self, name: Optional[str] = None) -> "TaskGraph":
        """A copy of the whole task graph."""
        return self.subgraph_copy(self._graph.nodes, name or self.name)

    def to_networkx(self) -> nx.DiGraph:
        """A copy of the underlying :class:`networkx.DiGraph`."""
        return self._graph.copy()

    def __repr__(self) -> str:
        return (
            f"TaskGraph(name={self.name!r}, tasks={len(self)}, "
            f"edges={self._graph.number_of_edges()})"
        )
