"""Behaviour-level task graphs (the input specification of Figure 3).

A task graph is a DAG of coarse-grain tasks with data-volume annotations on
edges (``B(t1, t2)``) and environment I/O per task (``B(env, t)``,
``B(t, env)``), implicitly enclosed in a data-dependent outer loop.  The
temporal partitioner, loop-fission analysis and memory mapper all operate on
this representation.
"""

from .analysis import (
    DEFAULT_PATH_LIMIT,
    asap_levels,
    cardinality_lower_bound,
    count_root_to_leaf_paths,
    critical_path,
    downstream_tasks,
    independent_task_pairs,
    interchangeable_task_classes,
    max_tasks_per_partition,
    partition_lower_bound,
    path_delay,
    root_to_leaf_paths,
    tasks_by_level,
    transitive_reduction,
    upstream_tasks,
)
from .builders import (
    figure4_example,
    figure4_partition_assignment,
    fork_join,
    image_pipeline_task_graph,
    linear_pipeline,
    random_dsp_task_graph,
)
from .graph import TaskGraph
from .kpaths import (
    edge_criticalities,
    k_longest_path_delays,
    k_longest_paths,
    longest_path_through,
    root_to_leaf_paths_by_delay,
)
from .serialize import from_dict, from_json, load, save, to_dict, to_json
from .task import Task, TaskCost, clb_cost

__all__ = [
    "DEFAULT_PATH_LIMIT",
    "Task",
    "TaskCost",
    "TaskGraph",
    "asap_levels",
    "cardinality_lower_bound",
    "clb_cost",
    "count_root_to_leaf_paths",
    "critical_path",
    "downstream_tasks",
    "edge_criticalities",
    "figure4_example",
    "figure4_partition_assignment",
    "fork_join",
    "from_dict",
    "from_json",
    "image_pipeline_task_graph",
    "independent_task_pairs",
    "interchangeable_task_classes",
    "k_longest_path_delays",
    "k_longest_paths",
    "linear_pipeline",
    "load",
    "longest_path_through",
    "max_tasks_per_partition",
    "partition_lower_bound",
    "path_delay",
    "random_dsp_task_graph",
    "root_to_leaf_paths",
    "root_to_leaf_paths_by_delay",
    "save",
    "tasks_by_level",
    "to_dict",
    "to_json",
    "transitive_reduction",
    "upstream_tasks",
]
