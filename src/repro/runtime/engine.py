"""The batched, parallel, caching partitioning engine.

:class:`PartitionEngine` turns "solve this partitioning problem" from a
blocking single call into a throughput-oriented service primitive:

* **batching** — a whole list of jobs is accepted at once and reported on
  together, in input order;
* **dedup** — jobs that canonicalise to the same fingerprint are solved once
  per batch, the copies served as ``batch-dedup`` hits;
* **caching** — solved outcomes land in a bounded in-memory LRU and,
  optionally, an on-disk JSON cache shared across processes and runs;
* **parallelism** — cache misses fan out across a ``ProcessPoolExecutor``
  with per-job solver selection, per-job wall-clock timeouts and structured
  crash reports (a dead worker marks its job ``crashed``, it does not take
  the batch down).

The module-level :func:`shared_engine` is the process-wide default used by
the experiment drivers, so repeated case-study builds reuse one solve.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Union

from ..errors import PartitioningError, ReproError
from ..partition.result import TemporalPartitioning
from ..partition.spec import PartitionProblem
from ..taskgraph.graph import TaskGraph
from .cache import CacheStats, ResultCache
from .jobs import (
    JobOutcome,
    JobReport,
    JobStatus,
    PartitionJob,
    ResultSource,
    SolverSpec,
)
from .worker import execute_job

JobLike = Union[PartitionJob, PartitionProblem]


@dataclass
class EngineConfig:
    """Static configuration of a :class:`PartitionEngine`.

    Parameters
    ----------
    workers:
        Worker processes for cache misses. ``0`` and ``1`` both solve
        in-process (no pool); ``>= 2`` fans out.
    partitioner / backend / time_limit:
        Defaults applied to jobs submitted as bare problems.
    job_timeout:
        Wall-clock limit (seconds) the engine enforces on the pool phase of
        a batch: any job still unfinished when the limit expires is reported
        as ``timeout`` (the solver-level ``time_limit`` additionally bounds
        each individual solve from inside the worker). Requires
        ``workers >= 2`` — in-process solves cannot be interrupted.
    lru_capacity:
        Entries kept in the in-memory result cache.
    cache_dir:
        Optional directory for the on-disk result cache; ``None`` disables
        the disk layer.
    max_disk_entries:
        Optional bound on the on-disk cache; when exceeded, oldest-mtime
        entries are pruned (``None`` = unbounded).
    """

    workers: int = 0
    partitioner: str = "ilp"
    backend: str = "scipy"
    time_limit: Optional[float] = None
    job_timeout: Optional[float] = None
    lru_capacity: int = 256
    cache_dir: Optional[Union[str, Path]] = None
    max_disk_entries: Optional[int] = None

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise PartitioningError("workers must be non-negative")
        if self.max_disk_entries is not None and self.max_disk_entries < 1:
            raise PartitioningError("max_disk_entries must be at least 1")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise PartitioningError("job_timeout must be positive")
        if self.job_timeout is not None and self.workers < 2:
            raise PartitioningError(
                "job_timeout requires workers >= 2: in-process solves cannot be "
                "interrupted (use the solver-level time_limit instead)"
            )

    def default_solver(self) -> SolverSpec:
        """The solver spec applied to bare-problem submissions."""
        return SolverSpec(
            partitioner=self.partitioner,
            backend=self.backend,
            time_limit=self.time_limit,
        )


@dataclass
class EngineStats:
    """Cumulative accounting across every batch an engine has run."""

    jobs: int = 0
    solved: int = 0
    failed: int = 0
    timeouts: int = 0
    crashes: int = 0
    deduped: int = 0
    cache: CacheStats = field(default_factory=CacheStats)

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of every counter (cache counters prefixed)."""
        return {
            "jobs": self.jobs,
            "solved": self.solved,
            "failed": self.failed,
            "timeouts": self.timeouts,
            "crashes": self.crashes,
            "deduped": self.deduped,
            "cache_memory_hits": self.cache.memory_hits,
            "cache_disk_hits": self.cache.disk_hits,
            "cache_misses": self.cache.misses,
            "cache_stores": self.cache.stores,
            "cache_disk_write_errors": self.cache.disk_write_errors,
            "cache_disk_pruned": self.cache.disk_pruned,
        }


@dataclass
class BatchReport:
    """Everything one :meth:`PartitionEngine.solve_batch` call produced."""

    reports: List[JobReport]
    wall_time: float
    workers_used: int

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __getitem__(self, index: int) -> JobReport:
        return self.reports[index]

    @property
    def ok(self) -> bool:
        """Whether every job produced a usable partitioning."""
        return all(report.ok for report in self.reports)

    def failures(self) -> List[JobReport]:
        """Jobs that did not end ``solved``."""
        return [report for report in self.reports if not report.ok]

    def rows(self) -> List[Dict[str, object]]:
        """Per-job rows for tabular/JSON/CSV output."""
        return [report.row() for report in self.reports]

    def describe(self) -> str:
        """One-line human readable summary."""
        sources: Dict[str, int] = {}
        for report in self.reports:
            sources[report.source.value] = sources.get(report.source.value, 0) + 1
        breakdown = ", ".join(f"{count} {name}" for name, count in sorted(sources.items()))
        status = "all ok" if self.ok else f"{len(self.failures())} failed"
        return (
            f"batch of {len(self.reports)} jobs in {self.wall_time:.2f} s "
            f"({self.workers_used} worker(s); {breakdown}; {status})"
        )


class PartitionEngine:
    """Batched, cached, parallel temporal partitioning."""

    def __init__(self, config: Optional[EngineConfig] = None, **overrides) -> None:
        if config is None:
            config = EngineConfig(**overrides)
        elif overrides:
            raise PartitioningError("pass either a config object or keyword overrides")
        self.config = config
        self.cache = ResultCache(
            lru_capacity=config.lru_capacity,
            cache_dir=config.cache_dir,
            max_disk_entries=config.max_disk_entries,
        )
        self.stats = EngineStats(cache=self.cache.stats)
        self.last_batch: Optional[BatchReport] = None

    # ------------------------------------------------------------------
    # Submission API
    # ------------------------------------------------------------------

    def make_job(self, problem: PartitionProblem, tag: str = "", **solver) -> PartitionJob:
        """Wrap a problem in a job, filling solver fields from the config."""
        defaults = self.config.default_solver()
        spec = SolverSpec(
            partitioner=solver.get("partitioner", defaults.partitioner),
            backend=solver.get("backend", defaults.backend),
            time_limit=solver.get("time_limit", defaults.time_limit),
            explore_extra_partitions=solver.get("explore_extra_partitions", 0),
            seed=solver.get("seed", defaults.seed),
        )
        return PartitionJob(problem=problem, solver=spec, tag=tag)

    def _coerce_jobs(self, submissions: Iterable[JobLike]) -> List[PartitionJob]:
        jobs: List[PartitionJob] = []
        for index, item in enumerate(submissions):
            if isinstance(item, PartitionJob):
                jobs.append(item)
            elif isinstance(item, PartitionProblem):
                jobs.append(self.make_job(item, tag=f"job-{index}"))
            else:
                raise PartitioningError(
                    f"batch item {index} is {type(item).__name__}, expected "
                    "PartitionProblem or PartitionJob"
                )
        return jobs

    # ------------------------------------------------------------------
    # Batch solving
    # ------------------------------------------------------------------

    def solve_batch(self, submissions: Sequence[JobLike]) -> BatchReport:
        """Solve a whole batch; the report preserves submission order."""
        start = time.perf_counter()
        jobs = self._coerce_jobs(submissions)
        fingerprints = [job.fingerprint() for job in jobs]

        # Cache pass: one lookup per *unique* fingerprint so the accounting
        # counts problems, not copies; copies become batch-dedup hits.
        cached: Dict[str, JobOutcome] = {}
        miss_order: List[str] = []
        miss_jobs: Dict[str, PartitionJob] = {}
        sources: Dict[str, ResultSource] = {}
        for job, fingerprint in zip(jobs, fingerprints):
            if fingerprint in cached or fingerprint in miss_jobs:
                continue
            before = (self.cache.stats.memory_hits, self.cache.stats.disk_hits)
            outcome = self.cache.get(fingerprint)
            if outcome is not None:
                cached[fingerprint] = outcome
                sources[fingerprint] = (
                    ResultSource.MEMORY_CACHE
                    if self.cache.stats.memory_hits > before[0]
                    else ResultSource.DISK_CACHE
                )
            else:
                miss_order.append(fingerprint)
                miss_jobs[fingerprint] = job

        workers_used = min(self.config.workers, len(miss_order))
        solved = self._run_misses(miss_order, miss_jobs, workers_used)

        reports: List[JobReport] = []
        seen: Dict[str, bool] = {}
        for job, fingerprint in zip(jobs, fingerprints):
            if fingerprint in cached:
                outcome = cached[fingerprint]
                source = sources[fingerprint] if not seen.get(fingerprint) else ResultSource.BATCH_DEDUP
            else:
                outcome = solved[fingerprint]
                source = ResultSource.SOLVE if not seen.get(fingerprint) else ResultSource.BATCH_DEDUP
            if seen.get(fingerprint):
                self.stats.deduped += 1
            seen[fingerprint] = True
            self.stats.jobs += 1
            self._count_status(outcome.status)
            reports.append(
                JobReport(
                    job=job,
                    outcome=outcome,
                    source=source,
                    # Cached/deduped rows cost (next to) nothing this batch;
                    # the original solve time stays visible in solve_time_s.
                    wall_time=outcome.worker_time if source is ResultSource.SOLVE else 0.0,
                )
            )

        batch = BatchReport(
            reports=reports,
            wall_time=time.perf_counter() - start,
            workers_used=workers_used,
        )
        self.last_batch = batch
        return batch

    def _count_status(self, status: JobStatus) -> None:
        if status is JobStatus.SOLVED:
            self.stats.solved += 1
        elif status is JobStatus.FAILED:
            self.stats.failed += 1
        elif status is JobStatus.TIMEOUT:
            self.stats.timeouts += 1
        else:
            self.stats.crashes += 1

    def _run_misses(
        self,
        miss_order: List[str],
        miss_jobs: Dict[str, PartitionJob],
        workers_used: int,
    ) -> Dict[str, JobOutcome]:
        if not miss_order:
            return {}
        # A configuration with >= 2 workers always dispatches through the
        # pool — even a single miss — so job_timeout and crash isolation
        # behave the same however large the batch happens to be.
        if self.config.workers >= 2:
            solved = self._run_pool(miss_order, miss_jobs, workers_used)
        else:
            solved = {
                fingerprint: self._run_inline(miss_jobs[fingerprint], fingerprint)
                for fingerprint in miss_order
            }
        for fingerprint, outcome in solved.items():
            self.cache.put(fingerprint, outcome)
        return solved

    def _run_inline(self, job: PartitionJob, fingerprint: str) -> JobOutcome:
        try:
            return execute_job(job)
        except ReproError as error:  # pragma: no cover - execute_job catches these
            return _failure_outcome(fingerprint, JobStatus.FAILED, error)
        except Exception as error:  # noqa: BLE001 - worker bug -> structured report
            return _failure_outcome(fingerprint, JobStatus.CRASHED, error)

    def _run_pool(
        self,
        miss_order: List[str],
        miss_jobs: Dict[str, PartitionJob],
        workers_used: int,
    ) -> Dict[str, JobOutcome]:
        solved: Dict[str, JobOutcome] = {}
        executor = ProcessPoolExecutor(max_workers=workers_used)
        timed_out = False
        try:
            futures = {}
            for fingerprint in miss_order:
                try:
                    futures[fingerprint] = executor.submit(
                        execute_job, miss_jobs[fingerprint]
                    )
                except Exception as error:  # noqa: BLE001 - e.g. unpicklable job
                    solved[fingerprint] = _failure_outcome(
                        fingerprint, JobStatus.CRASHED, error
                    )
            deadline = (
                time.monotonic() + self.config.job_timeout
                if self.config.job_timeout is not None
                else None
            )
            for fingerprint, future in futures.items():
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                try:
                    solved[fingerprint] = future.result(timeout=timeout)
                except FutureTimeoutError:
                    future.cancel()
                    timed_out = True
                    solved[fingerprint] = _failure_outcome(
                        fingerprint,
                        JobStatus.TIMEOUT,
                        TimeoutError(
                            f"job exceeded the {self.config.job_timeout:.3f} s "
                            "wall-clock limit"
                        ),
                    )
                except BrokenExecutor as error:
                    solved[fingerprint] = _failure_outcome(
                        fingerprint, JobStatus.CRASHED, error, "worker process died: "
                    )
                except Exception as error:  # noqa: BLE001 - worker bug -> report
                    solved[fingerprint] = _failure_outcome(
                        fingerprint, JobStatus.CRASHED, error
                    )
        finally:
            if timed_out:
                # A future past its deadline may still be *running*; cancel()
                # cannot stop it and concurrent.futures joins every worker at
                # interpreter exit, so a truly stuck solve would hang the
                # process. Kill the remaining workers (before shutdown clears
                # the process table) — their results have already been
                # reported as timeouts.
                for process in list((getattr(executor, "_processes", None) or {}).values()):
                    process.kill()
            executor.shutdown(wait=False, cancel_futures=True)
        return solved

    # ------------------------------------------------------------------
    # Convenience single-problem API
    # ------------------------------------------------------------------

    def solve(
        self, problem: PartitionProblem, tag: str = "", **solver
    ) -> TemporalPartitioning:
        """Solve one problem through the cache and return the partitioning.

        Raises :class:`~repro.errors.PartitioningError` when the job fails,
        carrying the structured error detail.
        """
        report = self.solve_batch([self.make_job(problem, tag=tag, **solver)])[0]
        if not report.ok:
            raise PartitioningError(
                f"engine job {report.job.tag or problem.graph.name!r} ended "
                f"{report.outcome.status.value}: {report.outcome.error or 'no detail'}"
            )
        return report.partitioning()


# ---------------------------------------------------------------------------
# Sweep helpers
# ---------------------------------------------------------------------------

def ct_sweep_jobs(
    engine: PartitionEngine,
    graph: TaskGraph,
    system,
    ct_values: Sequence[float],
    **solver,
) -> List[PartitionJob]:
    """Jobs for one graph swept across reconfiguration times (seconds)."""
    jobs = []
    for ct in ct_values:
        problem = PartitionProblem.from_system(graph, system.with_reconfiguration_time(ct))
        jobs.append(
            engine.make_job(problem, tag=f"{graph.name}@ct={ct * 1e3:g}ms", **solver)
        )
    return jobs


def system_sweep_jobs(
    engine: PartitionEngine,
    graph: TaskGraph,
    systems: Dict[str, object],
    **solver,
) -> List[PartitionJob]:
    """Jobs for one graph swept across target systems (name -> system)."""
    return [
        engine.make_job(
            PartitionProblem.from_system(graph, system),
            tag=f"{graph.name}@{name}",
            **solver,
        )
        for name, system in systems.items()
    ]


def _failure_outcome(
    fingerprint: str,
    status: JobStatus,
    error: BaseException,
    prefix: str = "",
) -> JobOutcome:
    return JobOutcome(
        fingerprint=fingerprint,
        status=status,
        error=f"{prefix}{error}",
        error_kind=type(error).__name__,
    )


# ---------------------------------------------------------------------------
# Process-wide shared engine
# ---------------------------------------------------------------------------

_shared_engine: Optional[PartitionEngine] = None


def shared_engine() -> PartitionEngine:
    """The process-wide default engine (in-memory cache, in-process solves).

    Experiment drivers route their ILP solves through this engine so that
    Table 1, Table 2 and the summary report built in one process all reuse a
    single solve of the case-study instance.
    """
    global _shared_engine
    if _shared_engine is None:
        _shared_engine = PartitionEngine(EngineConfig())
    return _shared_engine


def configure_shared_engine(config: EngineConfig) -> PartitionEngine:
    """Replace the process-wide engine (e.g. to attach a disk cache)."""
    global _shared_engine
    _shared_engine = PartitionEngine(config)
    return _shared_engine
