"""Canonical form and content hashing for stage inputs and artifacts.

The caches are keyed by *what is being computed*, not by object identity:
two :class:`~repro.partition.spec.PartitionProblem` instances (or task
graphs, or devices) that describe the same content must hash to the same
key — in the same process, across processes, and across interpreter
invocations (``PYTHONHASHSEED`` must not leak in).

The canonical form is a plain nested dict of sorted, JSON-stable primitives;
floats are encoded with ``float.hex`` so the digest captures the exact bit
pattern rather than a rounded decimal rendering.  :func:`canonical_value`
and :func:`canonical_fingerprint` are the generic entry points every stage
of the design-flow pipeline keys itself with; the partition-problem helpers
below them predate the generic layer and keep their historical shape.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Optional

from ..partition.spec import PartitionProblem

#: Version tag baked into every fingerprint; bump when the canonical form (or
#: the meaning of a cached result) changes so stale disk caches never match.
CANONICAL_VERSION = 1


def _canonical_float(value: float) -> str:
    """Bit-exact, platform-independent text form of a float."""
    return float(value).hex()


# ---------------------------------------------------------------------------
# Generic canonical encoding
# ---------------------------------------------------------------------------

def canonical_value(value: object) -> object:
    """The JSON-stable canonical form of an arbitrary nested value.

    Floats become their bit-exact ``float.hex`` text, mappings become plain
    dicts with string keys (serialised with sorted keys), and sequences
    become lists.  Anything outside the JSON family is rejected rather than
    silently ``repr``-ed: a stage key must never depend on an object's
    memory address or on a ``repr`` that can drift between versions.
    """
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return _canonical_float(value)
    if isinstance(value, Mapping):
        encoded: Dict[str, object] = {}
        for key, item in value.items():
            if not isinstance(key, str):
                raise TypeError(
                    f"canonical mapping keys must be strings, got {type(key).__name__}"
                )
            encoded[key] = canonical_value(item)
        return encoded
    if isinstance(value, (list, tuple)):
        return [canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(canonical_value(item) for item in value)
    raise TypeError(f"cannot canonicalise a {type(value).__name__} value")


def canonical_fingerprint(payload: object) -> str:
    """A stable sha256 hex digest of an arbitrary canonicalisable payload."""
    encoded = json.dumps(
        canonical_value(payload), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


def canonical_graph_dict(graph) -> Dict[str, object]:
    """The canonical description of a :class:`~repro.taskgraph.graph.TaskGraph`.

    Captures everything estimation and partitioning can observe: per-task
    costs (when present), per-task data-flow graphs (operation kinds,
    widths, constant values and dependency edges — the estimator's whole
    input), environment I/O words, and the inter-task edges with their data
    volumes.  Task and edge order is sorted so insertion order never
    changes the key; the graph *name* is deliberately excluded (renaming a
    graph does not change what any stage computes from it).
    """
    tasks = []
    for name in sorted(graph.task_names()):
        task = graph.task(name)
        entry: Dict[str, object] = {
            "name": name,
            "type": task.task_type or "",
            "env_in": graph.env_input_words(name),
            "env_out": graph.env_output_words(name),
        }
        if task.has_cost:
            entry["cost"] = {
                "resources": {
                    kind: int(amount)
                    for kind, amount in sorted(task.resources.as_dict().items())
                },
                "delay": _canonical_float(task.delay),
            }
        if task.dfg is not None:
            dfg = task.dfg
            entry["dfg"] = {
                "operations": [
                    {
                        "name": op.name,
                        "kind": op.kind.value,
                        "width": op.width,
                        "value": canonical_value(op.value),
                    }
                    for op in sorted(dfg.operations(), key=lambda op: op.name)
                ],
                "edges": sorted(list(edge) for edge in dfg.edges()),
            }
        tasks.append(entry)
    edges = sorted(
        (producer, consumer, graph.edge_words(producer, consumer))
        for producer, consumer in graph.edges()
    )
    return {"tasks": tasks, "edges": [list(edge) for edge in edges]}


def canonical_device_dict(device) -> Dict[str, object]:
    """The canonical description of an :class:`~repro.arch.device.FpgaDevice`.

    Captures the fields estimation observes — family (selects the component
    library), capacity and the clock-period window.  The reconfiguration
    time is excluded on purpose: estimation never reads it, so two devices
    differing only in ``CT`` share every estimate.
    """
    return {
        "family": device.family,
        "capacity": {
            kind: int(amount)
            for kind, amount in sorted(device.capacity.as_dict().items())
        },
        "min_clock_period": _canonical_float(device.min_clock_period),
        "max_clock_period": _canonical_float(device.max_clock_period),
    }


def canonical_problem_dict(problem: PartitionProblem) -> Dict[str, object]:
    """The canonical (sorted, primitive-only) description of *problem*.

    Task and edge order is sorted by name so insertion order — which does not
    change the optimisation problem — does not change the key.
    """
    graph = problem.graph
    tasks = []
    for name in sorted(graph.task_names()):
        task = graph.task(name)
        tasks.append(
            {
                "name": name,
                "resources": {
                    kind: int(amount)
                    for kind, amount in sorted(task.resources.as_dict().items())
                },
                "delay": _canonical_float(task.delay),
                "type": task.task_type or "",
                "env_in": graph.env_input_words(name),
                "env_out": graph.env_output_words(name),
            }
        )
    edges = sorted(
        (producer, consumer, graph.edge_words(producer, consumer))
        for producer, consumer in graph.edges()
    )
    return {
        "version": CANONICAL_VERSION,
        "tasks": tasks,
        "edges": [list(edge) for edge in edges],
        "resource_capacity": {
            kind: int(amount)
            for kind, amount in sorted(problem.resource_capacity.as_dict().items())
        },
        "memory_words": problem.memory_words,
        "reconfiguration_time": _canonical_float(problem.reconfiguration_time),
        "max_partitions": problem.max_partitions,
    }


def problem_fingerprint(
    problem: PartitionProblem,
    solver: Optional[Dict[str, object]] = None,
) -> str:
    """A stable sha256 hex digest of *problem* (plus optional solver config).

    Passing the solver configuration keys the cache by (problem, solver) so a
    ``list`` solve never shadows an ``ilp`` solve of the same instance.
    """
    payload = {"problem": canonical_problem_dict(problem)}
    if solver is not None:
        payload["solver"] = {str(k): solver[k] for k in sorted(solver)}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
