"""Canonical form and content hashing for partitioning problems.

The engine's caches are keyed by *what is being solved*, not by object
identity: two :class:`~repro.partition.spec.PartitionProblem` instances that
describe the same task graph, capacity, memory and reconfiguration time must
hash to the same key — in the same process, across processes, and across
interpreter invocations (``PYTHONHASHSEED`` must not leak in).

The canonical form is a plain nested dict of sorted, JSON-stable primitives;
floats are encoded with ``float.hex`` so the digest captures the exact bit
pattern rather than a rounded decimal rendering.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional

from ..partition.spec import PartitionProblem

#: Version tag baked into every fingerprint; bump when the canonical form (or
#: the meaning of a cached result) changes so stale disk caches never match.
CANONICAL_VERSION = 1


def _canonical_float(value: float) -> str:
    """Bit-exact, platform-independent text form of a float."""
    return float(value).hex()


def canonical_problem_dict(problem: PartitionProblem) -> Dict[str, object]:
    """The canonical (sorted, primitive-only) description of *problem*.

    Task and edge order is sorted by name so insertion order — which does not
    change the optimisation problem — does not change the key.
    """
    graph = problem.graph
    tasks = []
    for name in sorted(graph.task_names()):
        task = graph.task(name)
        tasks.append(
            {
                "name": name,
                "resources": {
                    kind: int(amount)
                    for kind, amount in sorted(task.resources.as_dict().items())
                },
                "delay": _canonical_float(task.delay),
                "type": task.task_type or "",
                "env_in": graph.env_input_words(name),
                "env_out": graph.env_output_words(name),
            }
        )
    edges = sorted(
        (producer, consumer, graph.edge_words(producer, consumer))
        for producer, consumer in graph.edges()
    )
    return {
        "version": CANONICAL_VERSION,
        "tasks": tasks,
        "edges": [list(edge) for edge in edges],
        "resource_capacity": {
            kind: int(amount)
            for kind, amount in sorted(problem.resource_capacity.as_dict().items())
        },
        "memory_words": problem.memory_words,
        "reconfiguration_time": _canonical_float(problem.reconfiguration_time),
        "max_partitions": problem.max_partitions,
    }


def problem_fingerprint(
    problem: PartitionProblem,
    solver: Optional[Dict[str, object]] = None,
) -> str:
    """A stable sha256 hex digest of *problem* (plus optional solver config).

    Passing the solver configuration keys the cache by (problem, solver) so a
    ``list`` solve never shadows an ``ilp`` solve of the same instance.
    """
    payload = {"problem": canonical_problem_dict(problem)}
    if solver is not None:
        payload["solver"] = {str(k): solver[k] for k in sorted(solver)}
    encoded = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()
