"""The function that runs inside engine worker processes.

Kept in its own module so :func:`execute_job` is importable by name in every
worker (a requirement for pickling with ``ProcessPoolExecutor``) and so the
engine module itself never has to be imported by workers.
"""

from __future__ import annotations

import time

from ..errors import ReproError
from ..partition.anneal_partitioner import AnnealTemporalPartitioner
from ..partition.greedy_partitioner import LevelClusteringPartitioner
from ..partition.hierarchy import MultilevelPartitioner, multilevel_inner
from ..partition.ilp_partitioner import IlpTemporalPartitioner
from ..partition.list_partitioner import ListTemporalPartitioner
from ..partition.portfolio import PortfolioPartitioner
from ..partition.result import TemporalPartitioning
from ..partition.spec import PartitionProblem
from .jobs import JobOutcome, JobStatus, PartitionJob, SolverSpec


def _build_partitioner(solver: SolverSpec):
    inner = multilevel_inner(solver.partitioner)
    if inner is not None:
        return MultilevelPartitioner(
            inner=inner,
            ilp_backend=solver.backend,
            seed=solver.seed,
            time_limit=solver.time_limit,
        )
    if solver.partitioner == "ilp":
        return IlpTemporalPartitioner(
            backend=solver.backend,
            explore_extra_partitions=solver.explore_extra_partitions,
            time_limit=solver.time_limit,
        )
    if solver.partitioner == "list":
        return ListTemporalPartitioner()
    if solver.partitioner == "anneal":
        return AnnealTemporalPartitioner(seed=solver.seed)
    if solver.partitioner == "portfolio":
        return PortfolioPartitioner(
            ilp_backend=solver.backend, anneal_seed=solver.seed
        )
    return LevelClusteringPartitioner()


def _solved_outcome(
    fingerprint: str,
    problem: PartitionProblem,
    result: TemporalPartitioning,
    solver: SolverSpec,
    attempted_bounds,
    elapsed: float,
) -> JobOutcome:
    return JobOutcome(
        fingerprint=fingerprint,
        status=JobStatus.SOLVED,
        assignment=dict(result.assignment),
        partition_count=result.partition_count,
        total_latency=result.total_latency,
        computation_latency=result.computation_latency,
        objective_value=result.objective_value,
        method=result.method or solver.partitioner,
        backend=result.solver_backend or solver.backend,
        solve_time=result.solve_time,
        worker_time=elapsed,
        attempted_bounds=attempted_bounds,
    )


def execute_job(job: PartitionJob) -> JobOutcome:
    """Solve one job and return its outcome; never raises library errors.

    Library failures (infeasible instance, solver error, bad spec) come back
    as structured ``FAILED`` outcomes so one poisoned problem cannot take
    down a whole batch. Only non-library exceptions propagate — those are
    bugs, and the engine converts them into ``CRASHED`` reports.
    """
    fingerprint = job.fingerprint()
    start = time.perf_counter()
    try:
        partitioner = _build_partitioner(job.solver)
        result = partitioner.partition(job.problem)
        attempted = None
        last_report = getattr(partitioner, "last_report", None)
        if last_report is not None:
            attempted = list(last_report.attempted_bounds)
        return _solved_outcome(
            fingerprint,
            job.problem,
            result,
            job.solver,
            attempted,
            time.perf_counter() - start,
        )
    except ReproError as error:
        return JobOutcome(
            fingerprint=fingerprint,
            status=JobStatus.FAILED,
            error=str(error),
            error_kind=type(error).__name__,
            worker_time=time.perf_counter() - start,
        )
