"""Job and report types for the batched partitioning engine.

A :class:`PartitionJob` pairs one problem with the solver configuration to
use on it; a :class:`JobOutcome` is the flat, JSON-serialisable record a
worker process sends back (and the unit the caches store); a
:class:`JobReport` adds where the outcome came from (fresh solve, memory
cache, disk cache, batch dedup) for accounting.
"""

from __future__ import annotations

import enum
from dataclasses import asdict, dataclass, field
from typing import Dict, Optional

from ..errors import PartitioningError
from ..partition.hierarchy import multilevel_inner
from ..partition.result import TemporalPartitioning
from ..partition.spec import PartitionProblem
from .canonical import problem_fingerprint

#: Partitioner algorithms the engine can dispatch.  ``"multilevel"`` also
#: accepts a ``multilevel:<inner>`` suffix naming the engine to run on the
#: coarse graph (validated by :func:`repro.partition.multilevel_inner`).
PARTITIONERS = ("ilp", "list", "level", "anneal", "portfolio", "multilevel")


@dataclass(frozen=True)
class SolverSpec:
    """How one job should be solved (algorithm, backend, limits)."""

    partitioner: str = "ilp"
    backend: str = "scipy"
    time_limit: Optional[float] = None
    explore_extra_partitions: int = 0
    #: Random seed for the stochastic partitioners (``anneal``, and the
    #: anneal arm inside ``portfolio``); ignored by the deterministic ones.
    seed: int = 0

    def __post_init__(self) -> None:
        if (
            self.partitioner not in PARTITIONERS
            and multilevel_inner(self.partitioner) is None
        ):
            raise PartitioningError(
                f"unknown partitioner {self.partitioner!r}; choose from {PARTITIONERS}"
            )

    def cache_key_fields(self) -> Dict[str, object]:
        """The fields that distinguish cached results.

        ``time_limit`` is deliberately excluded: a completed solve is the
        same result whatever limit it ran under.  The ``seed`` is included
        only for the partitioners whose result depends on it, so changing
        the seed never invalidates cached deterministic solves.
        """
        fields: Dict[str, object] = {
            "partitioner": self.partitioner,
            "backend": self.backend,
            "explore_extra_partitions": self.explore_extra_partitions,
        }
        if self.partitioner in ("anneal", "portfolio") or self.partitioner.startswith(
            "multilevel"
        ):
            # Multilevel's default/portfolio/anneal inners consume the seed,
            # so every multilevel spelling is treated as seed-dependent.
            fields["seed"] = self.seed
        return fields


@dataclass
class PartitionJob:
    """One unit of work: a problem plus its solver configuration."""

    problem: PartitionProblem
    solver: SolverSpec = field(default_factory=SolverSpec)
    tag: str = ""

    def fingerprint(self) -> str:
        """Content hash keying this job in the caches."""
        return problem_fingerprint(self.problem, self.solver.cache_key_fields())


class JobStatus(str, enum.Enum):
    """Terminal state of one job."""

    SOLVED = "solved"
    FAILED = "failed"
    TIMEOUT = "timeout"
    CRASHED = "crashed"


class ResultSource(str, enum.Enum):
    """Where a job's outcome came from."""

    SOLVE = "solve"
    MEMORY_CACHE = "memory-cache"
    DISK_CACHE = "disk-cache"
    BATCH_DEDUP = "batch-dedup"


@dataclass
class JobOutcome:
    """Flat, picklable/JSON-able record of one solve attempt."""

    fingerprint: str
    status: JobStatus
    assignment: Dict[str, int] = field(default_factory=dict)
    partition_count: int = 0
    total_latency: float = 0.0
    computation_latency: float = 0.0
    objective_value: Optional[float] = None
    method: str = ""
    backend: str = ""
    solve_time: float = 0.0
    worker_time: float = 0.0
    attempted_bounds: Optional[list] = None
    error: str = ""
    error_kind: str = ""

    @property
    def ok(self) -> bool:
        """Whether the job produced a usable partitioning."""
        return self.status is JobStatus.SOLVED

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form (enum flattened to its string value)."""
        data = asdict(self)
        data["status"] = self.status.value
        return data

    @classmethod
    def from_json_dict(cls, data: Dict[str, object]) -> "JobOutcome":
        """Inverse of :meth:`to_json_dict`; raises ``KeyError`` on bad data."""
        payload = dict(data)
        payload["status"] = JobStatus(payload["status"])
        return cls(**payload)


@dataclass
class JobReport:
    """One row of a batch result: the outcome plus provenance."""

    job: PartitionJob
    outcome: JobOutcome
    source: ResultSource
    wall_time: float = 0.0

    @property
    def ok(self) -> bool:
        """Whether this job produced a usable partitioning."""
        return self.outcome.ok

    @property
    def cached(self) -> bool:
        """Whether the outcome was served without running a solver."""
        return self.source is not ResultSource.SOLVE

    def partitioning(self) -> TemporalPartitioning:
        """Rehydrate the full result object from the stored assignment.

        Partition delays and boundary volumes are recomputed from the job's
        own task graph, so a cache hit yields exactly the object a fresh
        solve would have produced.
        """
        return outcome_to_partitioning(self.job.problem, self.outcome)

    def row(self) -> Dict[str, object]:
        """Flat dict for tabular/CSV/JSON presentation."""
        problem = self.job.problem
        return {
            "tag": self.job.tag or problem.graph.name,
            "status": self.outcome.status.value,
            "source": self.source.value,
            "partitioner": self.job.solver.partitioner,
            "backend": self.outcome.backend or self.job.solver.backend,
            "partitions": self.outcome.partition_count,
            "total_latency_s": self.outcome.total_latency,
            "compute_latency_s": self.outcome.computation_latency,
            "solve_time_s": self.outcome.solve_time,
            "wall_time_s": self.wall_time,
            "error": self.outcome.error,
        }


def outcome_to_partitioning(
    problem: PartitionProblem, outcome: JobOutcome
) -> TemporalPartitioning:
    """Build a :class:`TemporalPartitioning` from a stored :class:`JobOutcome`."""
    if not outcome.ok:
        raise PartitioningError(
            f"job {outcome.fingerprint[:12]} did not produce a partitioning "
            f"({outcome.status.value}: {outcome.error or 'no detail'})"
        )
    return TemporalPartitioning(
        graph=problem.graph,
        assignment=dict(outcome.assignment),
        partition_count=outcome.partition_count,
        reconfiguration_time=problem.reconfiguration_time,
        method=outcome.method,
        objective_value=outcome.objective_value,
        solve_time=outcome.solve_time,
        solver_backend=outcome.backend,
    )
