"""Batched, parallel, caching execution layer for the partitioner.

The paper's tool solves one ILP per invocation; production workloads solve
*fleets* of them — the same graph swept across devices and reconfiguration
times, or many graphs against one board.  This subsystem amortises that
work:

* :mod:`repro.runtime.canonical` — content hashing of problems;
* :mod:`repro.runtime.cache` — LRU + on-disk result caches;
* :mod:`repro.runtime.jobs` — job/outcome/report types;
* :mod:`repro.runtime.worker` — the function worker processes run;
* :mod:`repro.runtime.engine` — :class:`PartitionEngine` itself.
"""

from .cache import CacheStats, DiskCache, LruCache, ResultCache
from .canonical import canonical_problem_dict, problem_fingerprint
from .engine import (
    BatchReport,
    EngineConfig,
    EngineStats,
    PartitionEngine,
    configure_shared_engine,
    ct_sweep_jobs,
    shared_engine,
    system_sweep_jobs,
)
from .jobs import (
    JobOutcome,
    JobReport,
    JobStatus,
    PartitionJob,
    ResultSource,
    SolverSpec,
    outcome_to_partitioning,
)
from .worker import execute_job

__all__ = [
    "BatchReport",
    "CacheStats",
    "DiskCache",
    "EngineConfig",
    "EngineStats",
    "JobOutcome",
    "JobReport",
    "JobStatus",
    "LruCache",
    "PartitionEngine",
    "PartitionJob",
    "ResultCache",
    "ResultSource",
    "SolverSpec",
    "canonical_problem_dict",
    "configure_shared_engine",
    "ct_sweep_jobs",
    "execute_job",
    "outcome_to_partitioning",
    "problem_fingerprint",
    "shared_engine",
    "system_sweep_jobs",
]
