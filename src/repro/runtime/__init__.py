"""Batched, parallel, caching execution layer for the partitioner.

The paper's tool solves one ILP per invocation; production workloads solve
*fleets* of them — the same graph swept across devices and reconfiguration
times, or many graphs against one board.  This subsystem amortises that
work:

* :mod:`repro.runtime.canonical` — content hashing of problems, graphs,
  devices and arbitrary stage payloads;
* :mod:`repro.runtime.cache` — LRU + on-disk result caches;
* :mod:`repro.runtime.artifacts` — the generic content-addressed stage
  artifact store (per-stage version tags, shared cache-root layout);
* :mod:`repro.runtime.jobs` — job/outcome/report types;
* :mod:`repro.runtime.worker` — the function worker processes run;
* :mod:`repro.runtime.engine` — :class:`PartitionEngine` itself.
"""

from .artifacts import (
    ArtifactStore,
    CacheAreaReport,
    StageStats,
    clear_cache_dir,
    default_cache_dir,
    prune_cache_dir,
    scan_cache_dir,
)
from .cache import CacheStats, DiskCache, LruCache, ResultCache
from .canonical import (
    canonical_device_dict,
    canonical_fingerprint,
    canonical_graph_dict,
    canonical_problem_dict,
    canonical_value,
    problem_fingerprint,
)
from .engine import (
    BatchReport,
    EngineConfig,
    EngineStats,
    PartitionEngine,
    configure_shared_engine,
    ct_sweep_jobs,
    shared_engine,
    system_sweep_jobs,
)
from .jobs import (
    JobOutcome,
    JobReport,
    JobStatus,
    PartitionJob,
    ResultSource,
    SolverSpec,
    outcome_to_partitioning,
)
from .worker import execute_job

__all__ = [
    "ArtifactStore",
    "BatchReport",
    "CacheAreaReport",
    "CacheStats",
    "DiskCache",
    "EngineConfig",
    "EngineStats",
    "JobOutcome",
    "JobReport",
    "JobStatus",
    "LruCache",
    "PartitionEngine",
    "PartitionJob",
    "ResultCache",
    "ResultSource",
    "SolverSpec",
    "StageStats",
    "canonical_device_dict",
    "canonical_fingerprint",
    "canonical_graph_dict",
    "canonical_problem_dict",
    "canonical_value",
    "clear_cache_dir",
    "configure_shared_engine",
    "ct_sweep_jobs",
    "default_cache_dir",
    "execute_job",
    "outcome_to_partitioning",
    "problem_fingerprint",
    "prune_cache_dir",
    "scan_cache_dir",
    "shared_engine",
    "system_sweep_jobs",
]
