"""The generic content-addressed artifact store for pipeline stages.

Where :mod:`repro.runtime.cache` stores one kind of payload (partition-job
outcomes keyed by problem fingerprint), this module stores *arbitrary stage
artifacts*: every stage of the design-flow pipeline registers a name and a
version tag, keys each artifact by a content digest of its inputs, and gets

* an in-process LRU per stage (any Python object),
* an optional on-disk JSON layer per stage (only for stages that provide a
  JSON-able payload), laid out as ``<root>/stages/<stage>/<digest>.json``,
* per-stage hit/miss/store accounting the engines surface in reports.

Version tags are baked into every entry: a disk file written under an older
stage version is treated as a miss and removed, so bumping a stage's
``version`` invalidates its stale disk entries without touching the rest of
the cache.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Tuple, Union

from .cache import CacheStats, LruCache

logger = logging.getLogger(__name__)

#: Environment variable overriding the default shared cache directory.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Conventional shared disk-cache root used when no directory is chosen.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Subdirectory of a cache root holding the per-stage artifact directories
#: (the root itself holds the partition engine's outcome files).
STAGE_SUBDIR = "stages"


def default_cache_dir() -> Path:
    """The conventional shared cache root (``$REPRO_CACHE_DIR`` overrides)."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


@dataclass
class StageStats(CacheStats):
    """Cache accounting for one pipeline stage.

    Extends the result-cache counters with ``runs`` — the number of times
    the stage's transform actually executed (every miss that was followed
    by a computation, which is what "zero HLS estimations" assertions
    count).
    """

    runs: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Flat dict of every counter."""
        from dataclasses import asdict

        return asdict(self)


class ArtifactStore:
    """Per-stage memory + optional disk cache of content-addressed artifacts.

    Parameters
    ----------
    cache_dir:
        Optional shared cache root.  Stage artifacts land under
        ``<cache_dir>/stages/<stage>/``; ``None`` keeps every stage
        memory-only.
    lru_capacity:
        Entries kept per stage in the in-process LRU.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        lru_capacity: int = 256,
    ) -> None:
        self.cache_dir = Path(cache_dir) if cache_dir is not None else None
        self.lru_capacity = lru_capacity
        self._memory: Dict[str, LruCache] = {}
        self._stats: Dict[str, StageStats] = {}

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------

    def stats_for(self, stage: str) -> StageStats:
        """The (mutable) counters of one stage, created on first use."""
        if stage not in self._stats:
            self._stats[stage] = StageStats()
        return self._stats[stage]

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """Per-stage counter dicts, keyed by stage name."""
        return {
            stage: stats.snapshot() for stage, stats in sorted(self._stats.items())
        }

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def _memory_for(self, stage: str) -> LruCache:
        if stage not in self._memory:
            self._memory[stage] = LruCache(self.lru_capacity)
        return self._memory[stage]

    def _disk_path(self, stage: str, digest: str) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / STAGE_SUBDIR / stage / f"{digest}.json"

    def get(
        self, stage: str, version: int, digest: str, decode=None
    ) -> Tuple[Optional[object], str]:
        """Look one artifact up; returns ``(value, source)``.

        *source* is ``"memory-cache"``, ``"disk-cache"`` or ``""`` (miss).
        *decode* turns the stored JSON payload back into the in-memory
        artifact for disk hits; a stage without a decoder is memory-only.
        A disk entry written under a different *version* is removed and
        treated as a miss — the version tag, not the file's age, decides
        staleness.
        """
        stats = self.stats_for(stage)
        memory = self._memory_for(stage)
        cached = memory.get(digest)
        if cached is not None:
            stats.memory_hits += 1
            return cached, "memory-cache"
        path = self._disk_path(stage, digest)
        if path is not None and decode is not None:
            payload = self._read_disk(path, stage, version)
            if payload is not None:
                try:
                    value = decode(payload)
                except Exception as error:  # noqa: BLE001 - corrupt payload = miss
                    logger.warning(
                        "treating undecodable %s artifact %s as a miss (%s: %s)",
                        stage, path.name, type(error).__name__, error,
                    )
                else:
                    stats.disk_hits += 1
                    memory.put(digest, value)
                    return value, "disk-cache"
        stats.misses += 1
        return None, ""

    def put(
        self, stage: str, version: int, digest: str, value: object, encode=None
    ) -> None:
        """Store one artifact in memory and (when *encode* is given) on disk."""
        stats = self.stats_for(stage)
        stats.stores += 1
        self._memory_for(stage).put(digest, value)
        path = self._disk_path(stage, digest)
        if path is None or encode is None:
            return
        try:
            payload = encode(value)
            self._write_disk(path, stage, version, payload)
        except OSError:
            # The disk layer is an optimisation; a full or read-only volume
            # must never fail the stage that already computed its artifact.
            stats.disk_write_errors += 1

    # ------------------------------------------------------------------
    # Disk layer
    # ------------------------------------------------------------------

    def _read_disk(self, path: Path, stage: str, version: int):
        try:
            with path.open("r", encoding="utf-8") as handle:
                data = json.load(handle)
        except FileNotFoundError:
            return None
        except (OSError, ValueError) as error:
            logger.warning(
                "treating corrupt %s artifact %s as a miss (%s: %s)",
                stage, path.name, type(error).__name__, error,
            )
            self._unlink_quietly(path)
            return None
        if not isinstance(data, dict) or data.get("version") != version:
            logger.info(
                "dropping stale %s artifact %s (stored version %r, current %r)",
                stage, path.name, data.get("version") if isinstance(data, dict) else None,
                version,
            )
            self._unlink_quietly(path)
            return None
        return data.get("payload")

    def _write_disk(self, path: Path, stage: str, version: int, payload) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(path.parent),
            prefix=f".{path.stem[:12]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump({"stage": stage, "version": version, "payload": payload}, handle)
            os.replace(handle.name, path)
        except OSError:
            self._unlink_quietly(Path(handle.name))
            raise

    @staticmethod
    def _unlink_quietly(path: Path) -> None:
        try:
            path.unlink()
        except OSError:
            pass

    def clear(self) -> None:
        """Drop every stage's memory layer and remove every disk artifact."""
        for memory in self._memory.values():
            memory.clear()
        if self.cache_dir is None:
            return
        stage_root = self.cache_dir / STAGE_SUBDIR
        if not stage_root.is_dir():
            return
        for path in stage_root.glob("*/*.json"):
            self._unlink_quietly(path)


@dataclass
class CacheAreaReport:
    """One area of the shared disk-cache layout (for ``repro cache``)."""

    name: str
    directory: Path
    entries: int = 0
    bytes: int = 0
    files: list = field(default_factory=list)


def scan_cache_dir(root: Union[str, Path]) -> list:
    """Describe every area of a shared cache root.

    The root's top-level ``*.json`` files are the partition engine's outcome
    cache; each ``stages/<stage>/`` subdirectory is one pipeline stage's
    artifact cache.  Returns a :class:`CacheAreaReport` per area (always
    including ``partition``, even when empty, so output is stable).
    """
    root = Path(root)
    areas = []
    partition = CacheAreaReport(name="partition", directory=root)
    if root.is_dir():
        for path in sorted(root.glob("*.json")):
            partition.files.append(path)
            partition.entries += 1
            try:
                partition.bytes += path.stat().st_size
            except OSError:
                continue
    areas.append(partition)
    stage_root = root / STAGE_SUBDIR
    if stage_root.is_dir():
        for stage_dir in sorted(p for p in stage_root.iterdir() if p.is_dir()):
            area = CacheAreaReport(name=f"stage:{stage_dir.name}", directory=stage_dir)
            for path in sorted(stage_dir.glob("*.json")):
                area.files.append(path)
                area.entries += 1
                try:
                    area.bytes += path.stat().st_size
                except OSError:
                    continue
            areas.append(area)
    return areas


def prune_cache_dir(root: Union[str, Path], max_entries: int) -> int:
    """Prune every cache area of *root* down to *max_entries* files each.

    Oldest-mtime entries go first (the same policy as
    :class:`~repro.runtime.cache.DiskCache`).  Returns the number of files
    removed across all areas.
    """
    if max_entries < 0:
        raise ValueError("max_entries must be non-negative")
    removed = 0
    for area in scan_cache_dir(root):
        if area.entries <= max_entries:
            continue
        stamped = []
        for path in area.files:
            try:
                stamped.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue
        excess = len(stamped) - max_entries
        for _mtime, _name, path in sorted(stamped)[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed


def clear_cache_dir(root: Union[str, Path]) -> int:
    """Remove every cached file under *root*; returns the number removed."""
    removed = 0
    for area in scan_cache_dir(root):
        for path in area.files:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
    return removed
