"""Result caches for the partitioning engine.

Two layers with one façade:

* :class:`LruCache` — in-process, bounded, O(1) recency updates;
* :class:`DiskCache` — one JSON file per fingerprint, shared across
  processes and interpreter runs (atomic writes via rename);
* :class:`ResultCache` — consults memory first, then disk (promoting disk
  hits into memory), and keeps hit/miss/store counters the engine reports.
"""

from __future__ import annotations

import json
import logging
import os
import tempfile
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Union

from .jobs import JobOutcome

logger = logging.getLogger(__name__)


class LruCache:
    """A bounded least-recently-used mapping from fingerprint to outcome."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError("LRU capacity must be at least 1")
        self.capacity = capacity
        self._entries: "OrderedDict[str, JobOutcome]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self._entries

    def get(self, fingerprint: str) -> Optional[JobOutcome]:
        """The cached outcome, refreshed to most-recently-used, or ``None``."""
        outcome = self._entries.get(fingerprint)
        if outcome is not None:
            self._entries.move_to_end(fingerprint)
        return outcome

    def put(self, fingerprint: str, outcome: JobOutcome) -> None:
        """Insert/refresh an entry, evicting the least recently used one."""
        self._entries[fingerprint] = outcome
        self._entries.move_to_end(fingerprint)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def clear(self) -> None:
        """Drop every entry."""
        self._entries.clear()


class DiskCache:
    """A directory of ``<fingerprint>.json`` outcome files.

    Truncated, corrupt or schema-mismatched files are treated as misses —
    logged, removed when possible, and overwritten by the next store —
    rather than propagating errors into the solve path: a half-written
    entry (e.g. a process killed mid-write on a filesystem without atomic
    rename) must never take a whole batch down.
    """

    def __init__(
        self, directory: Union[str, Path], max_entries: Optional[int] = None
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("DiskCache max_entries must be at least 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_entries = max_entries
        self.pruned = 0

    def _path(self, fingerprint: str) -> Path:
        return self.directory / f"{fingerprint}.json"

    def get(self, fingerprint: str) -> Optional[JobOutcome]:
        """Load one outcome, or ``None`` on miss/corruption."""
        path = self._path(fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                return JobOutcome.from_json_dict(json.load(handle))
        except FileNotFoundError:
            return None
        except (OSError, ValueError, KeyError, TypeError) as error:
            logger.warning(
                "treating corrupt cache entry %s as a miss (%s: %s)",
                path.name, type(error).__name__, error,
            )
            try:
                path.unlink()
            except OSError:
                pass
            return None

    def put(self, fingerprint: str, outcome: JobOutcome) -> None:
        """Atomically persist one outcome."""
        path = self._path(fingerprint)
        handle = tempfile.NamedTemporaryFile(
            "w",
            encoding="utf-8",
            dir=str(self.directory),
            prefix=f".{fingerprint[:12]}-",
            suffix=".tmp",
            delete=False,
        )
        try:
            with handle:
                json.dump(outcome.to_json_dict(), handle)
            os.replace(handle.name, path)
        except OSError:
            try:
                os.unlink(handle.name)
            except OSError:
                pass
            raise
        self._prune(keep=fingerprint)

    def _prune(self, keep: str = "") -> int:
        """Drop oldest-mtime entries beyond ``max_entries`` (0 when unbounded).

        The entry named by *keep* (the one the caller just wrote) is never a
        pruning candidate: on filesystems with coarse mtime granularity the
        tie-break would otherwise be able to evict the entry whose store
        triggered the prune.  The walk is O(entries) per store, which is
        fine at the bounded sizes the option exists for; unbounded caches
        never pay it.
        """
        if self.max_entries is None:
            return 0
        protected = f"{keep}.json" if keep else None
        entries = []
        for path in self.directory.glob("*.json"):
            if path.name == protected:
                continue
            try:
                entries.append((path.stat().st_mtime, path.name, path))
            except OSError:
                continue  # concurrently removed by another process
        excess = len(entries) + (1 if protected else 0) - self.max_entries
        if excess <= 0:
            return 0
        removed = 0
        for _mtime, _name, path in sorted(entries)[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self.pruned += removed
        return removed

    def __len__(self) -> int:
        return sum(1 for _ in self.directory.glob("*.json"))

    def clear(self) -> None:
        """Remove every cached outcome file."""
        for path in self.directory.glob("*.json"):
            try:
                path.unlink()
            except OSError:
                pass


@dataclass
class CacheStats:
    """Counters the engine exposes for cache accounting."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    stores: int = 0
    disk_write_errors: int = 0
    disk_pruned: int = 0

    @property
    def hits(self) -> int:
        """Total hits across both layers."""
        return self.memory_hits + self.disk_hits

    @property
    def lookups(self) -> int:
        """Total lookups."""
        return self.hits + self.misses


class ResultCache:
    """Memory-over-disk cache façade with accounting."""

    def __init__(
        self,
        lru_capacity: int = 256,
        cache_dir: Optional[Union[str, Path]] = None,
        max_disk_entries: Optional[int] = None,
    ) -> None:
        self.memory = LruCache(lru_capacity)
        self.disk = (
            DiskCache(cache_dir, max_entries=max_disk_entries)
            if cache_dir is not None
            else None
        )
        self.stats = CacheStats()

    def get(self, fingerprint: str) -> Optional[JobOutcome]:
        """Look up one fingerprint (memory first, then disk)."""
        outcome = self.memory.get(fingerprint)
        if outcome is not None:
            self.stats.memory_hits += 1
            return outcome
        if self.disk is not None:
            outcome = self.disk.get(fingerprint)
            if outcome is not None:
                self.stats.disk_hits += 1
                self.memory.put(fingerprint, outcome)
                return outcome
        self.stats.misses += 1
        return None

    def put(self, fingerprint: str, outcome: JobOutcome) -> None:
        """Store a successful outcome in every layer.

        Failures are never cached: a timeout under one limit or a crash is
        not a property of the problem.
        """
        if not outcome.ok:
            return
        self.stats.stores += 1
        self.memory.put(fingerprint, outcome)
        if self.disk is not None:
            try:
                self.disk.put(fingerprint, outcome)
            except OSError:
                # The disk layer is an optimisation; a full or read-only
                # volume must not lose a batch that already solved.
                self.stats.disk_write_errors += 1
            else:
                self.stats.disk_pruned = self.disk.pruned

    def clear(self) -> None:
        """Drop both layers (counters are kept)."""
        self.memory.clear()
        if self.disk is not None:
            self.disk.clear()
