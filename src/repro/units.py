"""Unit helpers used throughout the library.

All internal computations use a single canonical unit per quantity:

* **time** — seconds (floats).  Helpers convert between nanoseconds,
  microseconds, milliseconds and seconds.
* **data** — memory *words* (integers).  The paper's board uses a 32-bit word
  memory bank; helpers convert between words, bytes, kilobytes and megabytes
  for a given word width.
* **frequency** — hertz.

Keeping conversions in one module avoids the classic "is this in ns or ms?"
bug class that plagues timing models.
"""

from __future__ import annotations

import math

from .errors import SpecificationError

#: Number of nanoseconds in one second.
NS_PER_S = 1_000_000_000
#: Number of microseconds in one second.
US_PER_S = 1_000_000
#: Number of milliseconds in one second.
MS_PER_S = 1_000


# ---------------------------------------------------------------------------
# Time conversions (canonical unit: seconds)
# ---------------------------------------------------------------------------

def ns(value: float) -> float:
    """Return *value* nanoseconds expressed in seconds."""
    return value / NS_PER_S


def us(value: float) -> float:
    """Return *value* microseconds expressed in seconds."""
    return value / US_PER_S


def ms(value: float) -> float:
    """Return *value* milliseconds expressed in seconds."""
    return value / MS_PER_S


def seconds(value: float) -> float:
    """Identity helper, for symmetry with :func:`ns` / :func:`us` / :func:`ms`."""
    return float(value)


def to_ns(seconds_value: float) -> float:
    """Express a time given in seconds as nanoseconds."""
    return seconds_value * NS_PER_S


def to_us(seconds_value: float) -> float:
    """Express a time given in seconds as microseconds."""
    return seconds_value * US_PER_S


def to_ms(seconds_value: float) -> float:
    """Express a time given in seconds as milliseconds."""
    return seconds_value * MS_PER_S


def format_time(seconds_value: float, precision: int = 3) -> str:
    """Render a time in the most readable unit (ns, us, ms or s).

    >>> format_time(0.0000001)
    '100.0 ns'
    >>> format_time(0.25)
    '250.0 ms'
    """
    if seconds_value < 0:
        return "-" + format_time(-seconds_value, precision)
    if seconds_value == 0:
        return "0 s"
    if seconds_value < 1e-6:
        return f"{round(to_ns(seconds_value), precision)} ns"
    if seconds_value < 1e-3:
        return f"{round(to_us(seconds_value), precision)} us"
    if seconds_value < 1.0:
        return f"{round(to_ms(seconds_value), precision)} ms"
    return f"{round(seconds_value, precision)} s"


# ---------------------------------------------------------------------------
# Frequency / period
# ---------------------------------------------------------------------------

def mhz(value: float) -> float:
    """Return *value* megahertz expressed in hertz."""
    return value * 1_000_000.0


def period_from_frequency(frequency_hz: float) -> float:
    """Clock period in seconds for a clock of *frequency_hz* hertz."""
    if frequency_hz <= 0:
        raise SpecificationError(f"frequency must be positive, got {frequency_hz}")
    return 1.0 / frequency_hz


def frequency_from_period(period_s: float) -> float:
    """Clock frequency in hertz for a clock period of *period_s* seconds."""
    if period_s <= 0:
        raise SpecificationError(f"clock period must be positive, got {period_s}")
    return 1.0 / period_s


# ---------------------------------------------------------------------------
# Data sizes (canonical unit: words)
# ---------------------------------------------------------------------------

#: Number of bits in a byte.
BITS_PER_BYTE = 8
#: Number of bytes in a kilobyte (binary).
BYTES_PER_KB = 1024
#: Number of bytes in a megabyte (binary).
BYTES_PER_MB = 1024 * 1024


def kilowords(value: float) -> int:
    """Return *value* x 1024 words as an integer word count."""
    return int(round(value * 1024))


def words_to_bytes(words: int, word_bits: int = 32) -> int:
    """Number of bytes occupied by *words* words of *word_bits* bits each."""
    if word_bits <= 0 or word_bits % BITS_PER_BYTE:
        raise SpecificationError(
            f"word width must be a positive multiple of 8 bits, got {word_bits}"
        )
    return words * (word_bits // BITS_PER_BYTE)


def bytes_to_words(num_bytes: int, word_bits: int = 32) -> int:
    """Number of whole words needed to hold *num_bytes* bytes."""
    bytes_per_word = words_to_bytes(1, word_bits)
    return math.ceil(num_bytes / bytes_per_word)


def format_words(words: int) -> str:
    """Render a word count using K/M suffixes when exact.

    >>> format_words(65536)
    '64K words'
    >>> format_words(100)
    '100 words'
    """
    if words and words % (1024 * 1024) == 0:
        return f"{words // (1024 * 1024)}M words"
    if words and words % 1024 == 0:
        return f"{words // 1024}K words"
    return f"{words} words"


# ---------------------------------------------------------------------------
# Misc integer helpers shared by the memory mapper and fission analysis
# ---------------------------------------------------------------------------

def next_power_of_two(value: int) -> int:
    """Smallest power of two greater than or equal to *value* (min 1).

    >>> next_power_of_two(33)
    64
    >>> next_power_of_two(32)
    32
    """
    if value < 0:
        raise SpecificationError(f"value must be non-negative, got {value}")
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def is_power_of_two(value: int) -> bool:
    """Whether *value* is a positive power of two."""
    return value > 0 and (value & (value - 1)) == 0


def ceil_div(numerator: int, denominator: int) -> int:
    """Integer ceiling division, used for ``I_sw = ceil(I / k)``."""
    if denominator <= 0:
        raise SpecificationError(f"denominator must be positive, got {denominator}")
    if numerator < 0:
        raise SpecificationError(f"numerator must be non-negative, got {numerator}")
    return -(-numerator // denominator)
