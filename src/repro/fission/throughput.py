"""Throughput analysis: static vs. RTR comparisons, breakeven, CT sweeps.

This module turns the per-strategy timing models of
:mod:`repro.fission.strategies` into the quantities the paper's evaluation
reports: improvement of the RTR design over the static design for a workload
size, the breakeven number of computations at which the reconfiguration
overhead is absorbed, and how the improvement changes as the reconfiguration
time varies (the XC6000 conjecture and the A3 ablation).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..arch.board import RtrSystem
from ..errors import FissionError
from ..memmap.mapper import MemoryMap, build_memory_map
from ..memmap.segments import SegmentKind
from ..partition.result import TemporalPartitioning
from ..units import ceil_div
from .analysis import FissionAnalysis, analyse_fission
from .strategies import (
    RtrTimingSpec,
    SequencingStrategy,
    StaticTimingSpec,
    TimingBreakdown,
    execution_time,
    static_execution_time,
)


def rtr_timing_spec(
    partitioning: TemporalPartitioning,
    analysis: FissionAnalysis,
    memory_map: Optional[MemoryMap] = None,
) -> RtrTimingSpec:
    """Build the :class:`RtrTimingSpec` for a partitioned, fissioned design."""
    if memory_map is None:
        memory_map = build_memory_map(
            partitioning, round_to_power_of_two=analysis.rounded_blocks
        )
    env_in: List[int] = []
    env_out: List[int] = []
    cross_in: List[int] = []
    cross_out: List[int] = []
    for index in range(1, partitioning.partition_count + 1):
        block = memory_map.block(index)
        env_in.append(sum(s.words for s in block.segments_of_kind(SegmentKind.ENV_INPUT)))
        env_out.append(sum(s.words for s in block.segments_of_kind(SegmentKind.ENV_OUTPUT)))
        cross_in.append(sum(s.words for s in block.segments_of_kind(SegmentKind.CROSS_INPUT)))
        cross_out.append(sum(s.words for s in block.segments_of_kind(SegmentKind.CROSS_OUTPUT)))
    return RtrTimingSpec(
        partition_delays=list(partitioning.partition_delays),
        partition_env_input_words=env_in,
        partition_env_output_words=env_out,
        partition_cross_input_words=cross_in,
        partition_cross_output_words=cross_out,
        computations_per_run=analysis.computations_per_run,
    )


def static_timing_spec(
    block_delay: float,
    env_input_words: int,
    env_output_words: int,
    blocks_per_invocation: int = 1,
) -> StaticTimingSpec:
    """Convenience constructor for the static design's timing spec."""
    return StaticTimingSpec(
        block_delay=block_delay,
        env_input_words=env_input_words,
        env_output_words=env_output_words,
        blocks_per_invocation=blocks_per_invocation,
    )


@dataclass
class StrategyComparison:
    """Static vs. RTR comparison for one workload size and one strategy."""

    strategy: SequencingStrategy
    total_computations: int
    software_loop_count: int
    static: TimingBreakdown
    rtr: TimingBreakdown

    @property
    def improvement(self) -> float:
        """Fractional improvement of the RTR design over the static design.

        Positive when the RTR design is faster; negative when the static
        design wins (the situation the paper reports for FDH).
        """
        if self.static.total == 0:
            return 0.0
        return (self.static.total - self.rtr.total) / self.static.total

    @property
    def speedup(self) -> float:
        """Static time divided by RTR time."""
        if self.rtr.total == 0:
            return float("inf")
        return self.static.total / self.rtr.total

    @property
    def rtr_wins(self) -> bool:
        """Whether the RTR design beats the static design."""
        return self.rtr.total < self.static.total


def compare_static_vs_rtr(
    strategy: SequencingStrategy,
    static_spec: StaticTimingSpec,
    rtr_spec: RtrTimingSpec,
    total_computations: int,
    system: RtrSystem,
    include_transfers: bool = True,
) -> StrategyComparison:
    """Time both designs on the same workload and wrap the result."""
    static_time = static_execution_time(
        static_spec, total_computations, system, include_transfers
    )
    rtr_time = execution_time(
        strategy, rtr_spec, total_computations, system, include_transfers
    )
    runs = (
        ceil_div(total_computations, rtr_spec.computations_per_run)
        if total_computations
        else 0
    )
    return StrategyComparison(
        strategy=strategy,
        total_computations=total_computations,
        software_loop_count=runs,
        static=static_time,
        rtr=rtr_time,
    )


def sweep_workload_sizes(
    strategy: SequencingStrategy,
    static_spec: StaticTimingSpec,
    rtr_spec: RtrTimingSpec,
    workload_sizes: Sequence[int],
    system: RtrSystem,
    include_transfers: bool = True,
) -> List[StrategyComparison]:
    """Compare static and RTR across several workload sizes (a table's rows)."""
    return [
        compare_static_vs_rtr(
            strategy, static_spec, rtr_spec, size, system, include_transfers
        )
        for size in workload_sizes
    ]


def breakeven_computations(
    strategy: SequencingStrategy,
    static_spec: StaticTimingSpec,
    rtr_spec: RtrTimingSpec,
    system: RtrSystem,
    upper_bound: int = 1 << 34,
    include_transfers: bool = True,
) -> Optional[int]:
    """Smallest workload size for which the RTR design beats the static design.

    Returns ``None`` when no workload up to *upper_bound* ever breaks even
    (for example FDH with a 100 ms reconfiguration and a small memory — the
    situation of Table 1, where the per-batch reconfiguration cost grows as
    fast as the savings).
    """
    if upper_bound < 1:
        raise FissionError("upper_bound must be at least 1")

    def rtr_wins(size: int) -> bool:
        return compare_static_vs_rtr(
            strategy, static_spec, rtr_spec, size, system, include_transfers
        ).rtr_wins

    if not rtr_wins(upper_bound):
        return None
    low, high = 1, upper_bound
    while low < high:
        mid = (low + high) // 2
        if rtr_wins(mid):
            high = mid
        else:
            low = mid + 1
    return low


def reconfiguration_absorption_point(
    rtr_spec: RtrTimingSpec, system: RtrSystem
) -> int:
    """Computations per partition run at which execution time equals the
    per-run reconfiguration overhead (``N*CT``) — the quantity behind the
    paper's "roughly 42,553 blocks" remark."""
    per_block = rtr_spec.block_delay
    if per_block <= 0:
        raise FissionError("the RTR design has zero per-block delay")
    overhead = rtr_spec.partition_count * system.reconfiguration_time
    return ceil_div(int(overhead * 1e12), int(per_block * 1e12))


def reconfiguration_time_sweep(
    strategy: SequencingStrategy,
    static_spec: StaticTimingSpec,
    rtr_spec: RtrTimingSpec,
    total_computations: int,
    system: RtrSystem,
    reconfiguration_times: Sequence[float],
    include_transfers: bool = True,
) -> List[Dict[str, float]]:
    """Improvement of the RTR design as the reconfiguration time varies.

    Used for the XC6000 conjecture (CT = 500 us) and the A3 ablation that
    sweeps CT from the Time-Multiplexed-FPGA regime (ns) to the WildForce
    regime (100 ms).
    """
    rows: List[Dict[str, float]] = []
    for ct in reconfiguration_times:
        swept_system = system.with_reconfiguration_time(ct)
        comparison = compare_static_vs_rtr(
            strategy, static_spec, rtr_spec, total_computations, swept_system,
            include_transfers,
        )
        rows.append(
            {
                "reconfiguration_time": ct,
                "static_total": comparison.static.total,
                "rtr_total": comparison.rtr.total,
                "improvement": comparison.improvement,
            }
        )
    return rows


def full_analysis(
    partitioning: TemporalPartitioning,
    memory_words: int,
    system: RtrSystem,
    static_spec: StaticTimingSpec,
    workload_sizes: Sequence[int],
    round_blocks_to_power_of_two: bool = False,
) -> Dict[str, object]:
    """One-call convenience: fission analysis + both strategy sweeps.

    Returns a dictionary with the :class:`FissionAnalysis`, the
    :class:`RtrTimingSpec`, and the FDH/IDH comparison rows — everything the
    Table 1 / Table 2 drivers need.
    """
    memory_map = build_memory_map(
        partitioning, round_to_power_of_two=round_blocks_to_power_of_two
    )
    analysis = analyse_fission(
        partitioning, memory_words, memory_map=memory_map,
        round_blocks_to_power_of_two=round_blocks_to_power_of_two,
    )
    spec = rtr_timing_spec(partitioning, analysis, memory_map)
    fdh_rows = sweep_workload_sizes(
        SequencingStrategy.FDH, static_spec, spec, workload_sizes, system
    )
    idh_rows = sweep_workload_sizes(
        SequencingStrategy.IDH, static_spec, spec, workload_sizes, system
    )
    return {
        "analysis": analysis,
        "memory_map": memory_map,
        "rtr_spec": spec,
        "fdh": fdh_rows,
        "idh": idh_rows,
    }
