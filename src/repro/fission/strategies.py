"""FDH and IDH sequencing strategies and their analytic timing models.

Section 2.2 defines two ways to sequence a loop-fissioned RTR design from the
host:

* **FDH — Final Data to Host.**  For every batch of ``k`` loop iterations the
  host walks through all ``N`` temporal partitions (reconfiguring for each)
  and only the final results go back to the host.  Reconfiguration overhead:
  ``N * CT * I_sw``.
* **IDH — Intermediate Data to Host.**  Each temporal partition is configured
  exactly once and run over *all* iterations (in batches of ``k``); the
  intermediate data of each batch is saved to the host and restored for the
  next partition.  Reconfiguration overhead: ``N * CT``; extra transfer
  overhead: ``2 * k * I_sw * D_tr * m_temp``.

Besides the two headline overhead formulas, this module provides a complete
wall-clock decomposition (reconfiguration + datapath execution + host<->board
word transfers + per-invocation handshakes + host loop bookkeeping) for the
static design and for both RTR strategies.  The event-based simulator in
:mod:`repro.simulate` implements the same semantics independently; tests check
the two against each other.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List

from ..arch.board import RtrSystem
from ..errors import FissionError
from ..units import ceil_div


class SequencingStrategy(str, Enum):
    """The two host-sequencing strategies of Section 2.2."""

    FDH = "fdh"
    IDH = "idh"


@dataclass(frozen=True)
class StaticTimingSpec:
    """Timing-relevant description of the static (non-reconfigured) design."""

    block_delay: float              # seconds of datapath time per loop iteration
    env_input_words: int            # words written to the board per iteration
    env_output_words: int           # words read back per iteration
    blocks_per_invocation: int = 1  # loop iterations per start/finish handshake
    configurations: int = 1         # initial configuration loads

    def __post_init__(self) -> None:
        if self.block_delay < 0:
            raise FissionError("block_delay must be non-negative")
        if self.blocks_per_invocation < 1:
            raise FissionError("blocks_per_invocation must be at least 1")


@dataclass(frozen=True)
class RtrTimingSpec:
    """Timing-relevant description of a loop-fissioned RTR design.

    ``partition_delays[i]`` is the datapath time one loop iteration spends in
    partition ``i``.  The four word lists give each partition's per-iteration
    memory traffic, split into environment data (which crosses the host link
    under every strategy) and inter-partition ("cross") data (which stays in
    board memory under FDH but is saved/restored through the host under IDH).
    """

    partition_delays: List[float]
    partition_env_input_words: List[int]
    partition_env_output_words: List[int]
    partition_cross_input_words: List[int]
    partition_cross_output_words: List[int]
    computations_per_run: int  # the paper's k

    def __post_init__(self) -> None:
        n = len(self.partition_delays)
        if n == 0:
            raise FissionError("an RTR design needs at least one partition")
        for name, values in (
            ("partition_env_input_words", self.partition_env_input_words),
            ("partition_env_output_words", self.partition_env_output_words),
            ("partition_cross_input_words", self.partition_cross_input_words),
            ("partition_cross_output_words", self.partition_cross_output_words),
        ):
            if len(values) != n:
                raise FissionError(f"{name} must have one entry per partition")
            if any(v < 0 for v in values):
                raise FissionError(f"{name} must be non-negative")
        if self.computations_per_run < 1:
            raise FissionError("computations_per_run (k) must be at least 1")
        if any(d < 0 for d in self.partition_delays):
            raise FissionError("partition delays must be non-negative")

    @property
    def partition_count(self) -> int:
        """Number of temporal partitions ``N``."""
        return len(self.partition_delays)

    @property
    def block_delay(self) -> float:
        """Total datapath time per loop iteration, ``sum_p d_p``."""
        return sum(self.partition_delays)

    @property
    def env_words_per_iteration(self) -> int:
        """Environment words exchanged with the host per loop iteration."""
        return sum(self.partition_env_input_words) + sum(self.partition_env_output_words)

    @property
    def cross_words_per_iteration(self) -> int:
        """Inter-partition words written+read per loop iteration."""
        return sum(self.partition_cross_input_words) + sum(self.partition_cross_output_words)

    @property
    def words_per_iteration(self) -> int:
        """All board-memory words moved per loop iteration across all partitions."""
        return self.env_words_per_iteration + self.cross_words_per_iteration

    def block_words(self, index: int) -> int:
        """``m_i_temp`` for 0-based partition *index*."""
        return (
            self.partition_env_input_words[index]
            + self.partition_env_output_words[index]
            + self.partition_cross_input_words[index]
            + self.partition_cross_output_words[index]
        )

    @property
    def max_block_words(self) -> int:
        """``max_i m_i_temp`` — used in the paper's IDH overhead formula."""
        return max(self.block_words(i) for i in range(self.partition_count))


@dataclass
class TimingBreakdown:
    """Wall-clock decomposition of one execution-time estimate."""

    label: str
    reconfiguration: float = 0.0
    computation: float = 0.0
    data_transfer: float = 0.0
    handshake: float = 0.0
    host_loop: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total execution time in seconds."""
        return (
            self.reconfiguration
            + self.computation
            + self.data_transfer
            + self.handshake
            + self.host_loop
            + sum(self.extra.values())
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat dictionary (for table rows)."""
        result = {
            "reconfiguration": self.reconfiguration,
            "computation": self.computation,
            "data_transfer": self.data_transfer,
            "handshake": self.handshake,
            "host_loop": self.host_loop,
            "total": self.total,
        }
        result.update(self.extra)
        return result


# ---------------------------------------------------------------------------
# The paper's two headline overhead formulas
# ---------------------------------------------------------------------------

def fdh_reconfiguration_overhead(
    partition_count: int, reconfiguration_time: float, software_loop_count: int
) -> float:
    """``N * CT * I_sw`` — reconfiguration overhead of the FDH strategy."""
    return partition_count * reconfiguration_time * software_loop_count


def idh_overhead(
    partition_count: int,
    reconfiguration_time: float,
    computations_per_run: int,
    software_loop_count: int,
    word_transfer_time: float,
    max_block_words: int,
) -> float:
    """``N*CT + 2*k*I_sw*D_tr*m_temp`` — the paper's IDH overhead expression."""
    return (
        partition_count * reconfiguration_time
        + 2.0
        * computations_per_run
        * software_loop_count
        * word_transfer_time
        * max_block_words
    )


# ---------------------------------------------------------------------------
# Full wall-clock models
# ---------------------------------------------------------------------------

def static_execution_time(
    spec: StaticTimingSpec,
    total_computations: int,
    system: RtrSystem,
    include_transfers: bool = True,
) -> TimingBreakdown:
    """Execution time of the static design on *total_computations* iterations."""
    if total_computations < 0:
        raise FissionError("total_computations must be non-negative")
    breakdown = TimingBreakdown(label="static")
    breakdown.reconfiguration = spec.configurations * system.reconfiguration_time
    breakdown.computation = total_computations * spec.block_delay
    invocations = ceil_div(total_computations, spec.blocks_per_invocation) if total_computations else 0
    breakdown.handshake = invocations * system.handshake_time
    if include_transfers:
        words = total_computations * (spec.env_input_words + spec.env_output_words)
        breakdown.data_transfer = words * system.word_transfer_time
    breakdown.host_loop = system.host.sequencing_overhead(invocations)
    return breakdown


def fdh_execution_time(
    spec: RtrTimingSpec,
    total_computations: int,
    system: RtrSystem,
    include_transfers: bool = True,
) -> TimingBreakdown:
    """Execution time of the RTR design under the FDH strategy.

    Per batch of ``k`` iterations the host reconfigures through all ``N``
    partitions; intermediate data stays in board memory, so only the first
    partition's environment inputs and the final environment outputs cross the
    host link (we charge each partition's own environment I/O, which for a
    pipeline degenerates to exactly that).
    """
    if total_computations < 0:
        raise FissionError("total_computations must be non-negative")
    breakdown = TimingBreakdown(label="rtr-fdh")
    if total_computations == 0:
        return breakdown
    k = spec.computations_per_run
    runs = ceil_div(total_computations, k)
    n = spec.partition_count
    breakdown.reconfiguration = fdh_reconfiguration_overhead(
        n, system.reconfiguration_time, runs
    )
    breakdown.computation = total_computations * spec.block_delay
    breakdown.handshake = runs * n * system.handshake_time
    if include_transfers:
        # Only environment data moves across the host link under FDH; the
        # inter-partition flows stay in the board memory for the whole batch.
        breakdown.data_transfer = (
            total_computations
            * spec.env_words_per_iteration
            * system.word_transfer_time
        )
    breakdown.host_loop = system.host.sequencing_overhead(runs * n)
    return breakdown


def idh_execution_time(
    spec: RtrTimingSpec,
    total_computations: int,
    system: RtrSystem,
    include_transfers: bool = True,
) -> TimingBreakdown:
    """Execution time of the RTR design under the IDH strategy.

    Each partition is configured once and processes all iterations in batches
    of ``k``; every partition's per-iteration inputs and outputs cross the
    host link (that is the "intermediate data to host" cost).
    """
    if total_computations < 0:
        raise FissionError("total_computations must be non-negative")
    breakdown = TimingBreakdown(label="rtr-idh")
    if total_computations == 0:
        return breakdown
    k = spec.computations_per_run
    runs = ceil_div(total_computations, k)
    n = spec.partition_count
    breakdown.reconfiguration = n * system.reconfiguration_time
    breakdown.computation = total_computations * spec.block_delay
    breakdown.handshake = runs * n * system.handshake_time
    if include_transfers:
        breakdown.data_transfer = (
            total_computations * spec.words_per_iteration * system.word_transfer_time
        )
    breakdown.host_loop = system.host.sequencing_overhead(runs * n)
    return breakdown


def execution_time(
    strategy: SequencingStrategy,
    spec: RtrTimingSpec,
    total_computations: int,
    system: RtrSystem,
    include_transfers: bool = True,
) -> TimingBreakdown:
    """Dispatch to :func:`fdh_execution_time` or :func:`idh_execution_time`."""
    if strategy is SequencingStrategy.FDH:
        return fdh_execution_time(spec, total_computations, system, include_transfers)
    if strategy is SequencingStrategy.IDH:
        return idh_execution_time(spec, total_computations, system, include_transfers)
    raise FissionError(f"unknown sequencing strategy {strategy!r}")
