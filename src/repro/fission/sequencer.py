"""Host sequencing-code generation (the software loops of Section 2.2).

The loop-fission step ends by emitting the host-side software that loads
configurations and data blocks and waits for the finish signal.  We generate
the same two loop nests the paper sketches (C-flavoured text, with the loop
bound ``I_sw`` left as a runtime variable exactly as the paper describes), and
additionally a runnable Python callback-based sequencer used by the execution
simulator and the examples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List

from ..errors import FissionError
from .strategies import SequencingStrategy


@dataclass(frozen=True)
class SequencerPlan:
    """Everything the host sequencer needs to know."""

    strategy: SequencingStrategy
    partition_count: int
    computations_per_run: int  # k
    design_name: str = "design"

    def __post_init__(self) -> None:
        if self.partition_count < 1:
            raise FissionError("partition_count must be at least 1")
        if self.computations_per_run < 1:
            raise FissionError("computations_per_run must be at least 1")


# ---------------------------------------------------------------------------
# C-flavoured code generation (documentation artefact, mirrors the paper)
# ---------------------------------------------------------------------------

def generate_host_code(plan: SequencerPlan) -> str:
    """Generate the C-flavoured host sequencing loop for *plan*.

    The generated text matches the structure printed in Section 2.2: the FDH
    variant nests the configuration loop inside the data-block loop, the IDH
    variant nests the data-block loop inside the configuration loop.  ``I_sw``
    is computed at run time from the actual input size, as the paper notes.
    """
    n = plan.partition_count
    k = plan.computations_per_run
    header = [
        f"/* host sequencing code for {plan.design_name} */",
        f"/* strategy: {plan.strategy.value.upper()}, N = {n} configurations, "
        f"k = {k} computations per run */",
        "int I_sw = (total_inputs + K - 1) / K;  /* filled in at run time */",
        "",
    ]
    if plan.strategy is SequencingStrategy.FDH:
        body = [
            "for (j = 0; j <= I_sw - 1; j++) {",
            "    load_input_block(j, /* into memory of */ CONFIGURATION_1);",
            f"    for (i = 0; i <= {n} - 1; i++) {{",
            "        load_configuration(i);",
            "        send_start_signal();",
            "        wait_for_finish_signal();",
            "    }",
            f"    read_output_block(j, /* from memory of */ CONFIGURATION_{n});",
            "}",
        ]
    else:
        body = [
            f"for (i = 0; i <= {n} - 1; i++) {{",
            "    load_configuration(i);",
            "    for (j = 0; j <= I_sw - 1; j++) {",
            "        load_intermediate_input_block(i, j);",
            "        send_start_signal();",
            "        wait_for_finish_signal();",
            "        read_intermediate_output_block(i, j);",
            "    }",
            "}",
        ]
    return "\n".join(header + body) + "\n"


# ---------------------------------------------------------------------------
# Runnable sequencer (drives callbacks; used by the simulator and examples)
# ---------------------------------------------------------------------------

@dataclass
class SequencerCallbacks:
    """Callbacks the runnable sequencer invokes.

    Each callback receives enough indices to know what to do; the execution
    simulator uses them to accumulate time, the functional co-design example
    uses them to actually move numpy data around.
    """

    load_configuration: Callable[[int], None]
    load_input_block: Callable[[int, int], None]      # (partition, run)
    start_and_wait: Callable[[int, int, int], None]   # (partition, run, computations)
    read_output_block: Callable[[int, int], None]     # (partition, run)


def run_sequencer(
    plan: SequencerPlan,
    total_computations: int,
    callbacks: SequencerCallbacks,
) -> List[str]:
    """Execute the host sequencing loop, driving *callbacks*.

    Returns the trace of actions (strings) in execution order, which the tests
    compare against the expected FDH/IDH orderings.
    """
    if total_computations < 0:
        raise FissionError("total_computations must be non-negative")
    trace: List[str] = []
    if total_computations == 0:
        return trace
    k = plan.computations_per_run
    runs = -(-total_computations // k)

    def computations_in(run: int) -> int:
        if run < runs - 1:
            return k
        return total_computations - k * (runs - 1)

    if plan.strategy is SequencingStrategy.FDH:
        for run in range(runs):
            callbacks.load_input_block(0, run)
            trace.append(f"load_input run={run}")
            for partition in range(plan.partition_count):
                callbacks.load_configuration(partition)
                trace.append(f"configure partition={partition}")
                callbacks.start_and_wait(partition, run, computations_in(run))
                trace.append(
                    f"execute partition={partition} run={run} "
                    f"computations={computations_in(run)}"
                )
            callbacks.read_output_block(plan.partition_count - 1, run)
            trace.append(f"read_output run={run}")
    else:
        for partition in range(plan.partition_count):
            callbacks.load_configuration(partition)
            trace.append(f"configure partition={partition}")
            for run in range(runs):
                callbacks.load_input_block(partition, run)
                trace.append(f"load_input partition={partition} run={run}")
                callbacks.start_and_wait(partition, run, computations_in(run))
                trace.append(
                    f"execute partition={partition} run={run} "
                    f"computations={computations_in(run)}"
                )
                callbacks.read_output_block(partition, run)
                trace.append(f"read_output partition={partition} run={run}")
    return trace


def count_configuration_loads(plan: SequencerPlan, total_computations: int) -> int:
    """Number of configuration loads the sequencer performs.

    FDH: ``N * I_sw``; IDH: ``N``.  This is the headline difference between
    the two strategies and is verified against :func:`run_sequencer` traces in
    the tests.
    """
    if total_computations <= 0:
        return 0
    runs = -(-total_computations // plan.computations_per_run)
    if plan.strategy is SequencingStrategy.FDH:
        return plan.partition_count * runs
    return plan.partition_count
