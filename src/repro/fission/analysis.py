"""Loop-fission memory analysis (Section 2.2, Eq. 9).

For DSP applications the task graph sits inside an implicit outer loop over
the input blocks.  After temporal partitioning, the analysis determines how
many loop iterations ``k`` can be processed per board invocation given the
on-board memory: each partition ``i`` needs ``m_i_temp`` words per iteration
(its per-iteration memory block), so::

    k = floor( M_max / max_i m_i_temp )        (Eq. 9)

and the host sequencing loop runs ``I_sw = ceil(I / k)`` times for ``I`` total
iterations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..errors import FissionError
from ..memmap.mapper import MemoryMap, build_memory_map
from ..partition.result import TemporalPartitioning
from ..units import ceil_div


@dataclass
class FissionAnalysis:
    """Result of the loop-fission memory analysis."""

    memory_words: int
    per_partition_words: Dict[int, int] = field(default_factory=dict)
    computations_per_run: int = 0  # the paper's k
    rounded_blocks: bool = False

    @property
    def limiting_partition(self) -> int:
        """Partition index whose memory block limits ``k``."""
        if not self.per_partition_words:
            raise FissionError("analysis has no per-partition data")
        return max(self.per_partition_words, key=lambda p: self.per_partition_words[p])

    @property
    def max_per_iteration_words(self) -> int:
        """``max_i m_i_temp``."""
        return max(self.per_partition_words.values(), default=0)

    def software_loop_count(self, total_computations: int) -> int:
        """``I_sw = ceil(I / k)`` — host sequencing loop iterations."""
        if total_computations < 0:
            raise FissionError("total_computations must be non-negative")
        if total_computations == 0:
            return 0
        if self.computations_per_run == 0:
            raise FissionError(
                "no computations fit in the on-board memory; the design cannot run"
            )
        return ceil_div(total_computations, self.computations_per_run)

    def computations_in_run(self, run_index: int, total_computations: int) -> int:
        """Number of computations performed in host-loop iteration *run_index*.

        Every run processes ``k`` computations except possibly the last, which
        processes the remainder (the paper notes that when ``I < k`` only the
        first ``I`` results are picked up).
        """
        runs = self.software_loop_count(total_computations)
        if not 0 <= run_index < runs:
            raise FissionError(f"run index {run_index} outside 0..{runs - 1}")
        if run_index < runs - 1:
            return self.computations_per_run
        return total_computations - self.computations_per_run * (runs - 1)

    def describe(self) -> str:
        """One-line human readable summary."""
        per_partition = ", ".join(
            f"P{index}={words}w" for index, words in sorted(self.per_partition_words.items())
        )
        return (
            f"loop fission: k={self.computations_per_run} computations/run "
            f"(memory {self.memory_words} words; per-iteration blocks: {per_partition})"
        )


def analyse_fission(
    partitioning: TemporalPartitioning,
    memory_words: int,
    memory_map: Optional[MemoryMap] = None,
    round_blocks_to_power_of_two: bool = False,
) -> FissionAnalysis:
    """Run the Eq. 9 analysis for *partitioning* and a memory of *memory_words*.

    When *round_blocks_to_power_of_two* is set the per-iteration blocks are
    first rounded (concatenation addressing), which reduces ``k`` — the
    "memory wastage" side of the Section 3 trade-off.  A pre-built
    *memory_map* can be supplied to avoid recomputing it.
    """
    if memory_words <= 0:
        raise FissionError("memory_words must be positive")
    if memory_map is None:
        memory_map = build_memory_map(
            partitioning, round_to_power_of_two=round_blocks_to_power_of_two
        )
    per_partition = {
        index: memory_map.per_iteration_words(index)
        for index in memory_map.partition_indices
    }
    worst = max(per_partition.values(), default=0)
    if worst == 0:
        # No data ever touches the board memory: k is limited only by the
        # iteration counter width, which the caller models; report a sentinel.
        k = memory_words
    else:
        k = memory_words // worst
    if k == 0:
        raise FissionError(
            f"a single loop iteration needs {worst} words but the board memory "
            f"only has {memory_words}; the design cannot execute"
        )
    return FissionAnalysis(
        memory_words=memory_words,
        per_partition_words=per_partition,
        computations_per_run=k,
        rounded_blocks=round_blocks_to_power_of_two,
    )
