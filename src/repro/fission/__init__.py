"""Loop fission: throughput maximisation for loop-enclosed task graphs.

Implements Section 2.2: the memory-limited computations-per-run analysis
(Eq. 9), the FDH and IDH host-sequencing strategies with their overhead
models, breakeven/sweep analyses, and host sequencing-code generation.
"""

from .analysis import FissionAnalysis, analyse_fission
from .sequencer import (
    SequencerCallbacks,
    SequencerPlan,
    count_configuration_loads,
    generate_host_code,
    run_sequencer,
)
from .strategies import (
    RtrTimingSpec,
    SequencingStrategy,
    StaticTimingSpec,
    TimingBreakdown,
    execution_time,
    fdh_execution_time,
    fdh_reconfiguration_overhead,
    idh_execution_time,
    idh_overhead,
    static_execution_time,
)
from .throughput import (
    StrategyComparison,
    breakeven_computations,
    compare_static_vs_rtr,
    full_analysis,
    reconfiguration_absorption_point,
    reconfiguration_time_sweep,
    rtr_timing_spec,
    static_timing_spec,
    sweep_workload_sizes,
)

__all__ = [
    "FissionAnalysis",
    "RtrTimingSpec",
    "SequencerCallbacks",
    "SequencerPlan",
    "SequencingStrategy",
    "StaticTimingSpec",
    "StrategyComparison",
    "TimingBreakdown",
    "analyse_fission",
    "breakeven_computations",
    "compare_static_vs_rtr",
    "count_configuration_loads",
    "execution_time",
    "fdh_execution_time",
    "fdh_reconfiguration_overhead",
    "full_analysis",
    "generate_host_code",
    "idh_execution_time",
    "idh_overhead",
    "reconfiguration_absorption_point",
    "reconfiguration_time_sweep",
    "rtr_timing_spec",
    "run_sequencer",
    "static_execution_time",
    "static_timing_spec",
    "sweep_workload_sizes",
]
