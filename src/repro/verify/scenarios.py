"""Seeded, reproducible scenario generation for differential verification.

A :class:`Scenario` is one randomized-but-reproducible verification input:
a task graph drawn from one of five DAG families plus the target system it
should be synthesised on.  Everything is a pure function of the scenario's
``(family, seed, task_count)`` triple — the same scenario always builds the
same graph (bit-identical canonical hash) and the same system, which is what
lets the verification harness reproduce and *shrink* failures.

The five families stress different structures of the flow:

* ``layered``      — random layered DAGs with DSP-like statistics (the
  estimator/partitioner's bread and butter);
* ``fanout``       — one source fanning out to many parallel branches joined
  by a sink (wide ready lists, fat boundaries);
* ``chain``        — a linear pipeline (the longest possible critical path
  for its size; partitionings are contiguous chunks);
* ``diamond``      — chained reconvergent diamond motifs (the k-longest-path
  structures the delay estimator walks);
* ``degenerate``   — single-node, fully disconnected, and independent-task
  graphs (the boundary cases every traversal must survive).

A sixth, *opt-in* family exists for scale testing: ``huge`` draws layered
DAGs of hundreds of tasks — far past every flat partitioner's comfort zone
but well inside the multilevel pre-partitioner's — and always with *loose*
budgets (an infeasible 600-task instance would grind the differential
baseline through its whole relax loop for nothing).  It is deliberately not
part of :data:`FAMILIES`, so default verification runs — and their stored
verdict bytes — are unchanged; ask for it explicitly with
``families=("huge",)`` (CLI: ``--families huge``).  Huge scenarios are
verified under the ``multilevel`` primary partitioner instead of the exact
ILP (see :meth:`Scenario.implementations`).

Delay and area values are drawn from per-scenario *skew profiles* (uniform,
low-skewed, high-skewed) and the target system is drawn with *tight* or
*loose* resource and memory budgets, so the population includes both easily
feasible and genuinely infeasible instances — the oracles treat structured
infeasibility as data, not as an error.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..arch.board import RtrSystem
from ..arch.catalog import generic_system
from ..errors import SpecificationError, WorkloadError
from ..runtime.canonical import canonical_fingerprint
from ..synth.flow import FlowOptions
from ..taskgraph.builders import random_dsp_task_graph
from ..taskgraph.graph import TaskGraph
from ..taskgraph.task import Task, clb_cost
from ..units import ns

#: The scenario families, in the deterministic round-robin order the
#: generator cycles through (so any run of >= 5 scenarios covers them all).
FAMILIES: Tuple[str, ...] = ("layered", "fanout", "chain", "diamond", "degenerate")

#: The opt-in scale-testing family: hundreds-of-tasks layered DAGs verified
#: under the multilevel primary partitioner with loose budgets only.
HUGE_FAMILY = "huge"

#: Every known family, including the opt-in ``huge`` one.  Validation
#: accepts these; the default round-robin stays :data:`FAMILIES` so default
#: runs (and their byte-identical verdict stores) are unchanged.
ALL_FAMILIES: Tuple[str, ...] = FAMILIES + (HUGE_FAMILY,)

#: Per-family (min, max) task counts the generator draws from.  Sizes are
#: kept small enough that the ILP stays fast even on infeasible instances
#: (where the relax-N loop tries every bound).  The ``huge`` family is the
#: deliberate exception: big enough that every scenario actually coarsens
#: (task count far above the multilevel partitioner's ``max_coarse_tasks``).
_TASK_COUNT_RANGES: Dict[str, Tuple[int, int]] = {
    "layered": (4, 13),
    "fanout": (4, 12),
    "chain": (2, 16),
    "diamond": (4, 13),
    "degenerate": (1, 6),
    HUGE_FAMILY: (300, 800),
}

#: Skew profiles for drawing delays/areas: ``uniform`` spreads evenly,
#: ``low`` crowds values toward the minimum, ``high`` toward the maximum.
_SKEWS: Tuple[str, ...] = ("uniform", "low", "high")

#: Reconfiguration times (seconds) scenarios sample from.
_CT_CHOICES: Tuple[float, ...] = (0.0005, 0.001, 0.002, 0.005, 0.01, 0.05)


def _skewed(rng: random.Random, low: float, high: float, skew: str) -> float:
    """One draw from ``[low, high]`` under *skew*."""
    u = rng.random()
    if skew == "low":
        u = u ** 3
    elif skew == "high":
        u = u ** (1.0 / 3.0)
    return low + (high - low) * u


def _draw_cost(rng: random.Random, area_skew: str, delay_skew: str):
    """A task cost with CLBs in [20, 300] and delay in [50 ns, 2000 ns]."""
    clbs = int(round(_skewed(rng, 20, 300, area_skew)))
    delay = ns(round(_skewed(rng, 50, 2000, delay_skew)))
    return clb_cost(clbs, delay)


def _family_rng(family: str, seed: int, task_count: int) -> random.Random:
    """The deterministic RNG one family builder draws from.

    Seeded with a string, not a platform hash: ``random.Random`` hashes
    string seeds with SHA-512, so the stream is identical across runs,
    platforms and interpreter hash randomisation.
    """
    return random.Random(f"verify:{family}:{seed}:{task_count}")


# ---------------------------------------------------------------------------
# Family builders (pure functions of family, seed and task_count)
# ---------------------------------------------------------------------------

def _build_layered(rng: random.Random, seed: int, task_count: int) -> TaskGraph:
    area_skew = rng.choice(_SKEWS)
    lo_clb = 20 if area_skew != "high" else 60
    hi_clb = 300 if area_skew != "low" else 160
    lo_d = 50 if rng.random() < 0.5 else 200
    return random_dsp_task_graph(
        task_count=task_count,
        seed=rng.randrange(2 ** 31),
        max_level_width=rng.randint(2, 5),
        clb_range=(lo_clb, hi_clb),
        delay_range_ns=(lo_d, 2000),
        words_range=(1, rng.choice((8, 24, 48))),
        edge_probability=rng.uniform(0.2, 0.8),
        env_io_words=rng.randint(0, 16),
        name=f"verify-layered-s{seed}-n{task_count}",
    )


def _build_fanout(rng: random.Random, seed: int, task_count: int) -> TaskGraph:
    area_skew = rng.choice(_SKEWS)
    delay_skew = rng.choice(_SKEWS)
    graph = TaskGraph(f"verify-fanout-s{seed}-n{task_count}")
    branch_count = max(1, task_count - 2)
    words = rng.randint(1, 32)
    graph.add_task(
        Task("source", cost=_draw_cost(rng, area_skew, delay_skew), task_type="source"),
        env_input_words=rng.randint(1, 16),
    )
    if task_count == 1:
        return graph
    sink = "sink" if task_count >= 3 else None
    if sink:
        graph.add_task(
            Task(sink, cost=_draw_cost(rng, area_skew, delay_skew), task_type="sink"),
            env_output_words=rng.randint(1, 16),
        )
    for index in range(branch_count):
        name = f"branch{index}"
        graph.add_task(
            Task(name, cost=_draw_cost(rng, area_skew, delay_skew), task_type="branch")
        )
        graph.add_edge("source", name, words=rng.randint(1, words))
        if sink:
            graph.add_edge(name, sink, words=rng.randint(1, words))
    return graph


def _build_chain(rng: random.Random, seed: int, task_count: int) -> TaskGraph:
    area_skew = rng.choice(_SKEWS)
    delay_skew = rng.choice(_SKEWS)
    graph = TaskGraph(f"verify-chain-s{seed}-n{task_count}")
    previous: Optional[str] = None
    for index in range(task_count):
        name = f"stage{index}"
        graph.add_task(
            Task(name, cost=_draw_cost(rng, area_skew, delay_skew), task_type="stage"),
            env_input_words=rng.randint(1, 16) if index == 0 else 0,
            env_output_words=rng.randint(1, 16) if index == task_count - 1 else 0,
        )
        if previous is not None:
            graph.add_edge(previous, name, words=rng.randint(1, 48))
        previous = name
    return graph


def _build_diamond(rng: random.Random, seed: int, task_count: int) -> TaskGraph:
    """Chained reconvergent diamonds: ``a -> {b, c} -> a'`` repeated."""
    area_skew = rng.choice(_SKEWS)
    delay_skew = rng.choice(_SKEWS)
    graph = TaskGraph(f"verify-diamond-s{seed}-n{task_count}")
    if task_count < 4:
        # Too few nodes for a full motif: a collapsed diamond is a short
        # chain, which keeps the family shrinkable to any task count.
        previous: Optional[str] = None
        for index in range(task_count):
            name = f"j{index}"
            graph.add_task(
                Task(name, cost=_draw_cost(rng, area_skew, delay_skew),
                     task_type="join"),
                env_input_words=rng.randint(1, 16) if index == 0 else 0,
                env_output_words=(
                    rng.randint(1, 16) if index == task_count - 1 else 0
                ),
            )
            if previous is not None:
                graph.add_edge(previous, name, words=rng.randint(1, 32))
            previous = name
        return graph
    motifs = (task_count - 1) // 3
    graph.add_task(
        Task("j0", cost=_draw_cost(rng, area_skew, delay_skew), task_type="join"),
        env_input_words=rng.randint(1, 16),
    )
    for m in range(motifs):
        entry = f"j{m}"
        left, right, join = f"l{m}", f"r{m}", f"j{m + 1}"
        for name in (left, right):
            graph.add_task(
                Task(name, cost=_draw_cost(rng, area_skew, delay_skew),
                     task_type="arm")
            )
        graph.add_task(
            Task(join, cost=_draw_cost(rng, area_skew, delay_skew), task_type="join"),
            env_output_words=rng.randint(1, 16) if m == motifs - 1 else 0,
        )
        words = rng.randint(1, 32)
        graph.add_edge(entry, left, words=words)
        graph.add_edge(entry, right, words=rng.randint(1, 32))
        graph.add_edge(left, join, words=rng.randint(1, 32))
        graph.add_edge(right, join, words=words)
    # Pad to the exact task count with extra arms on the last motif, so
    # shrinking by task count is meaningful for this family too.
    for extra in range(task_count - (1 + 3 * motifs)):
        name = f"x{extra}"
        graph.add_task(
            Task(name, cost=_draw_cost(rng, area_skew, delay_skew), task_type="arm")
        )
        graph.add_edge(f"j{motifs - 1}", name, words=rng.randint(1, 32))
        graph.add_edge(name, f"j{motifs}", words=rng.randint(1, 32))
    return graph


def _build_degenerate(rng: random.Random, seed: int, task_count: int) -> TaskGraph:
    """Single-node, disconnected-components, and no-edge graphs."""
    area_skew = rng.choice(_SKEWS)
    delay_skew = rng.choice(_SKEWS)
    variant = "single" if task_count == 1 else rng.choice(("disconnected", "independent"))
    graph = TaskGraph(f"verify-degenerate-s{seed}-n{task_count}")
    if variant == "single":
        graph.add_task(
            Task("only", cost=_draw_cost(rng, area_skew, delay_skew)),
            env_input_words=rng.randint(0, 8),
            env_output_words=rng.randint(0, 8),
        )
        return graph
    if variant == "independent":
        for index in range(task_count):
            graph.add_task(
                Task(f"iso{index}", cost=_draw_cost(rng, area_skew, delay_skew)),
                env_input_words=rng.randint(0, 8),
                env_output_words=rng.randint(0, 8),
            )
        return graph
    # Two disjoint chains with no edge between them (a disconnected DAG).
    first_len = max(1, task_count // 2)
    for component, length in (("a", first_len), ("b", task_count - first_len)):
        previous = None
        for index in range(length):
            name = f"{component}{index}"
            graph.add_task(
                Task(name, cost=_draw_cost(rng, area_skew, delay_skew)),
                env_input_words=rng.randint(1, 8) if index == 0 else 0,
                env_output_words=rng.randint(1, 8) if index == length - 1 else 0,
            )
            if previous is not None:
                graph.add_edge(previous, name, words=rng.randint(1, 24))
            previous = name
    return graph


def _build_huge(rng: random.Random, seed: int, task_count: int) -> TaskGraph:
    """Hundreds-of-tasks layered DAGs (the multilevel scale family).

    Structurally the ``layered`` family at 20-100x the size, with the wide
    levels and sparse wiring of the ``random_layered_10k/50k/100k`` workload
    tiers — the shape the multilevel coarsener is built for.  Kept a pure
    function of ``(seed, task_count)`` like every family, so huge failures
    shrink down the same ladder as small ones.
    """
    return random_dsp_task_graph(
        task_count=task_count,
        seed=rng.randrange(2 ** 31),
        max_level_width=rng.randint(8, 24),
        words_range=(1, rng.choice((8, 24, 48))),
        edge_probability=0.08,
        env_io_words=rng.randint(0, 16),
        name=f"verify-huge-s{seed}-n{task_count}",
    )


_BUILDERS = {
    "layered": _build_layered,
    "fanout": _build_fanout,
    "chain": _build_chain,
    "diamond": _build_diamond,
    "degenerate": _build_degenerate,
    HUGE_FAMILY: _build_huge,
}


def build_family_graph(family: str, seed: int, task_count: int) -> TaskGraph:
    """Build the deterministic graph of ``(family, seed, task_count)``."""
    if family not in _BUILDERS:
        raise WorkloadError(
            f"unknown scenario family {family!r}; known: {', '.join(ALL_FAMILIES)}"
        )
    if task_count < 1:
        raise SpecificationError("task_count must be >= 1")
    graph = _BUILDERS[family](_family_rng(family, seed, task_count), seed, task_count)
    graph.validate()
    return graph


# ---------------------------------------------------------------------------
# The scenario descriptor
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class Scenario:
    """One reproducible verification input: a graph family plus its system.

    Everything downstream — the graph, the target system, the flow options —
    is a pure function of these fields, so a stored scenario JSON line is a
    complete counterexample recipe.
    """

    family: str
    seed: int
    task_count: int
    clb_capacity: int
    memory_words: int
    reconfiguration_time: float
    memory_profile: str = "loose"  # "tight" | "loose" (provenance only)

    @property
    def name(self) -> str:
        """Canonical display name."""
        return f"{self.family}-s{self.seed}-n{self.task_count}"

    def build_graph(self) -> TaskGraph:
        """The scenario's task graph (same scenario, same graph, always)."""
        return build_family_graph(self.family, self.seed, self.task_count)

    def build_system(self) -> RtrSystem:
        """The scenario's target system."""
        return generic_system(
            clb_capacity=self.clb_capacity,
            memory_words=self.memory_words,
            reconfiguration_time=self.reconfiguration_time,
        )

    @property
    def primary_partitioner(self) -> str:
        """The primary implementation this scenario is verified under.

        The exact ILP for every small family; the multilevel pre-partitioner
        for the ``huge`` family, where a flat exact solve is intractable.
        The oracles read this to know which optimality claims apply (a
        heuristic primary makes no "never beaten" promise).
        """
        return "multilevel" if self.family == HUGE_FAMILY else "ilp"

    def implementations(self) -> Tuple[str, str]:
        """The ``(primary, baseline)`` partitioner pair the harness runs."""
        return (self.primary_partitioner, "list")

    def flow_options(self, partitioner: str = "ilp") -> FlowOptions:
        """Flow options for one implementation under test."""
        return FlowOptions(partitioner=partitioner)

    def with_task_count(self, task_count: int) -> "Scenario":
        """The shrunk scenario: same family/seed/system, fewer tasks."""
        return replace(self, task_count=task_count)

    def fingerprint(self) -> str:
        """Content hash of the scenario (keys verdict-store records)."""
        return canonical_fingerprint(self.to_json_dict())

    def to_json_dict(self) -> Dict[str, object]:
        """Plain-JSON form (floats hex-encoded for byte-stable stores)."""
        return {
            "family": self.family,
            "seed": self.seed,
            "task_count": self.task_count,
            "clb_capacity": self.clb_capacity,
            "memory_words": self.memory_words,
            "reconfiguration_time": float(self.reconfiguration_time).hex(),
            "memory_profile": self.memory_profile,
        }

    @classmethod
    def from_json_dict(cls, data: Mapping[str, object]) -> "Scenario":
        """Rebuild a scenario from its stored form."""
        ct = data["reconfiguration_time"]
        return cls(
            family=str(data["family"]),
            seed=int(data["seed"]),  # type: ignore[arg-type]
            task_count=int(data["task_count"]),  # type: ignore[arg-type]
            clb_capacity=int(data["clb_capacity"]),  # type: ignore[arg-type]
            memory_words=int(data["memory_words"]),  # type: ignore[arg-type]
            reconfiguration_time=(
                float.fromhex(ct) if isinstance(ct, str) else float(ct)  # type: ignore[arg-type]
            ),
            memory_profile=str(data.get("memory_profile", "loose")),
        )

    def describe(self) -> str:
        """One-line human readable summary."""
        return (
            f"scenario {self.name}: {self.task_count} tasks, "
            f"R_max={self.clb_capacity} CLBs, M_max={self.memory_words} words "
            f"({self.memory_profile}), CT={self.reconfiguration_time * 1e3:g} ms"
        )


# ---------------------------------------------------------------------------
# The seeded generator
# ---------------------------------------------------------------------------

def scenario_seed(base_seed: int, index: int) -> int:
    """The derived per-scenario seed (stable, collision-avoiding)."""
    return (base_seed * 1_000_003 + index * 7_919 + 12_289) & 0x7FFFFFFF


def generate_scenario(
    index: int,
    base_seed: int = 0,
    family: Optional[str] = None,
    families: Sequence[str] = FAMILIES,
) -> Scenario:
    """Generate scenario *index* of the stream seeded by *base_seed*.

    Families rotate round-robin over *families* (so every run of at least
    ``len(families)`` scenarios covers them all); the system budgets are
    drawn *after* the graph so tight budgets can be tight relative to the
    graph's actual demand rather than blindly infeasible.
    """
    if not families:
        raise SpecificationError("families must not be empty")
    for name in families:
        if name not in ALL_FAMILIES:
            raise WorkloadError(
                f"unknown scenario family {name!r}; known: {', '.join(ALL_FAMILIES)}"
            )
    chosen = family or families[index % len(families)]
    if chosen not in ALL_FAMILIES:
        raise WorkloadError(
            f"unknown scenario family {chosen!r}; known: {', '.join(ALL_FAMILIES)}"
        )
    seed = scenario_seed(base_seed, index)
    rng = random.Random(f"verify:scenario:{seed}:{chosen}")
    lo, hi = _TASK_COUNT_RANGES[chosen]
    task_count = rng.randint(lo, hi)
    graph = build_family_graph(chosen, seed, task_count)

    max_task_clbs = max(task.clbs for task in graph.tasks())
    total_clbs = sum(task.clbs for task in graph.tasks())

    if chosen == HUGE_FAMILY:
        # Loose budgets only: the huge family verifies the multilevel flow
        # at scale, not infeasibility handling — an infeasible 600-task
        # instance would grind the differential baseline through its whole
        # relax loop for nothing.  The area budget still forces several
        # partitions, so the coarse solve stays non-trivial.
        capacity = max(
            max_task_clbs * 4, int(total_clbs * rng.uniform(0.12, 0.35))
        )
        edge_words = [graph.edge_words(p, c) for p, c in graph.edges()]
        env_words = graph.total_env_input_words() + graph.total_env_output_words()
        demand = sum(edge_words) + env_words
        floor = max(max(edge_words, default=0) * 2, 32)
        memory_words = max(floor, int(demand * rng.uniform(1.2, 2.0)) + 64)
        return Scenario(
            family=chosen,
            seed=seed,
            task_count=task_count,
            clb_capacity=capacity,
            memory_words=memory_words,
            reconfiguration_time=rng.choice(_CT_CHOICES),
            memory_profile="loose",
        )

    tight_area = rng.random() < 0.4
    if tight_area:
        capacity = max(max_task_clbs, int(total_clbs * rng.uniform(0.3, 0.7)))
    else:
        capacity = max(max_task_clbs, int(total_clbs * rng.uniform(0.8, 1.3)))

    edge_words = [graph.edge_words(p, c) for p, c in graph.edges()]
    env_words = graph.total_env_input_words() + graph.total_env_output_words()
    demand = sum(edge_words) + env_words
    floor = max(max(edge_words, default=0) * 2, 32)
    tight_memory = rng.random() < 0.35
    if tight_memory:
        memory_words = max(floor, int(demand * rng.uniform(0.4, 0.9)))
    else:
        memory_words = max(floor, int(demand * rng.uniform(1.0, 2.0)) + 64)

    return Scenario(
        family=chosen,
        seed=seed,
        task_count=task_count,
        clb_capacity=capacity,
        memory_words=memory_words,
        reconfiguration_time=rng.choice(_CT_CHOICES),
        memory_profile="tight" if tight_memory else "loose",
    )


def generate_scenarios(
    count: int,
    base_seed: int = 0,
    families: Sequence[str] = FAMILIES,
) -> List[Scenario]:
    """The first *count* scenarios of the stream seeded by *base_seed*."""
    if count < 0:
        raise SpecificationError("scenario count must be non-negative")
    return [
        generate_scenario(index, base_seed=base_seed, families=families)
        for index in range(count)
    ]
