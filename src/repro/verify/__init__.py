"""Differential verification: seeded scenario fuzzing + cross-implementation oracles.

The paper's claims rest on independent implementations agreeing with each
other — the ILP partitioner never beaten by the list scheduler, the analytic
timing models matching the event simulator, warm cache-served flows
bit-identical to cold ones.  This package turns those invariants into a
generative test harness:

* :mod:`repro.verify.scenarios` — seeded, reproducible scenario generation
  (five small DAG families plus the opt-in ``huge`` scale family, skewed
  cost distributions, tight/loose budgets);
* :mod:`repro.verify.oracles` — the cross-implementation oracle library;
* :mod:`repro.verify.harness` — the :class:`Verifier` fanning scenarios
  through the flow engine, shrinking failures, and producing a report;
* :mod:`repro.verify.store` — the JSONL verdict store (byte-deterministic
  for a given seed);
* :mod:`repro.verify.catalog` — ``verify_<family>`` workload registrations.

Quickstart::

    from repro.verify import Verifier, VerifyConfig

    report = Verifier(VerifyConfig(scenarios=50, seed=0)).run()
    assert report.ok, report.describe()
"""

from .harness import ScenarioVerdict, Verifier, VerifyConfig, VerifyReport
from .oracles import (
    FeasibilityOracle,
    IlpNotWorseOracle,
    KPathsOracle,
    MemoryLegalityOracle,
    Oracle,
    OracleVerdict,
    PartitionValidityOracle,
    ScenarioArtifacts,
    TimingModelOracle,
    WarmColdOracle,
    default_oracles,
    design_fingerprint,
    run_oracles,
)
from .scenarios import (
    ALL_FAMILIES,
    FAMILIES,
    HUGE_FAMILY,
    Scenario,
    build_family_graph,
    generate_scenario,
    generate_scenarios,
)
from .store import VerdictStore, read_verdicts

__all__ = [
    "ALL_FAMILIES",
    "FAMILIES",
    "FeasibilityOracle",
    "HUGE_FAMILY",
    "IlpNotWorseOracle",
    "KPathsOracle",
    "MemoryLegalityOracle",
    "Oracle",
    "OracleVerdict",
    "PartitionValidityOracle",
    "Scenario",
    "ScenarioArtifacts",
    "ScenarioVerdict",
    "TimingModelOracle",
    "VerdictStore",
    "Verifier",
    "VerifyConfig",
    "VerifyReport",
    "WarmColdOracle",
    "build_family_graph",
    "default_oracles",
    "design_fingerprint",
    "generate_scenario",
    "generate_scenarios",
    "read_verdicts",
    "run_oracles",
]
